"""Composable rate shapes for inhomogeneous arrival processes.

A :class:`RateShape` is a deterministic description of a time-varying
arrival intensity ``λ(t)`` (sessions per second): callable at any
``t >= 0``, with a known finite upper bound (:meth:`RateShape.bound`,
the thinning ceiling) and a closed-form cumulative intensity
``Λ(t) = ∫₀ᵗ λ(s) ds`` (:meth:`RateShape.cumulative`, what the
conditional-density simulation inverts and what the property tests
compare empirical counts against).

Shapes are plain values — no RNG state — so an
:class:`~repro.workloads.arrivals.InhomogeneousPoissonProcess` built
from one stays a pure function of its seed. They compose: ``a + b``
superposes two shapes (the superposition of independent Poisson
processes is Poisson at the summed rate) and ``1.5 * a`` scales one,
both with exact bounds and cumulatives.

Four primitive shapes:

* :class:`ConstantRate` — flat ``λ``; mainly a composition building
  block (a homogeneous baseline under a spike).
* :class:`DiurnalRate` — a raised-cosine day/night cycle between
  ``base_rate`` (trough) and ``peak_rate`` (crest), the canonical
  diurnal traffic model. ``period`` is usually compressed far below
  86400 s so a simulated horizon spans whole "days".
* :class:`FlashCrowdRate` — baseline plus a flash crowd: linear ramp
  to ``peak_rate`` over ``rise`` seconds starting at ``onset``, then
  exponential decay with time constant ``decay`` (the empirical
  flash-crowd signature: sudden onset, slow dissipation).
* :class:`PiecewiseConstantRate` — an explicit step function; build
  one from recorded arrival timestamps with
  :meth:`PiecewiseConstantRate.from_trace` to replay a trace's *shape*
  (as opposed to replaying its exact timestamps with
  :class:`~repro.workloads.arrivals.TraceReplayProcess`).
"""

from __future__ import annotations

import abc
import math
from typing import Sequence


class RateShape(abc.ABC):
    """A deterministic instantaneous-rate function ``t -> λ(t)``."""

    @abc.abstractmethod
    def __call__(self, t: float) -> float:
        """The instantaneous rate at ``t`` (1/s), always ``>= 0``."""

    @abc.abstractmethod
    def bound(self) -> float:
        """A tight upper bound on ``λ`` over ``t >= 0`` (the thinning
        ceiling). May be ``0`` for an everywhere-zero shape."""

    @abc.abstractmethod
    def cumulative(self, t: float) -> float:
        """The cumulative intensity ``Λ(t) = ∫₀ᵗ λ(s) ds``.

        Non-decreasing with ``Λ(0) = 0``; exact (closed form), so it
        can anchor property tests and inverse-CDF simulation.
        """

    def mean_rate(self, horizon: float) -> float:
        """``Λ(horizon) / horizon`` — the rate-matched homogeneous
        baseline (what an "equal offered load" Poisson control uses)."""
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        return self.cumulative(horizon) / horizon

    def __add__(self, other: "RateShape") -> "RateShape":
        if not isinstance(other, RateShape):
            return NotImplemented
        return SumRate(self, other)

    def __mul__(self, factor: float) -> "RateShape":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return ScaledRate(self, float(factor))

    __rmul__ = __mul__


class ConstantRate(RateShape):
    """A flat rate ``λ(t) = rate``."""

    def __init__(self, rate: float) -> None:
        if rate < 0:
            raise ValueError(f"rate must be >= 0, got {rate}")
        self.rate = float(rate)

    def __call__(self, t: float) -> float:
        return self.rate

    def bound(self) -> float:
        return self.rate

    def cumulative(self, t: float) -> float:
        return self.rate * t

    def __repr__(self) -> str:
        return f"ConstantRate({self.rate:g})"


class DiurnalRate(RateShape):
    """A raised-cosine day/night cycle.

    ``λ(t) = base + (peak - base) · (1 - cos(2π (t - phase)/period))/2``
    — the trough (``base_rate``) sits at ``t = phase`` (+ whole
    periods), the crest (``peak_rate``) half a period later. The mean
    over whole periods is ``(base + peak) / 2``.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        period: float,
        phase: float = 0.0,
    ) -> None:
        if base_rate < 0:
            raise ValueError(f"base_rate must be >= 0, got {base_rate}")
        if peak_rate < base_rate:
            raise ValueError(
                f"peak_rate must be >= base_rate, got {peak_rate} < {base_rate}"
            )
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.period = float(period)
        self.phase = float(phase)

    def _swing(self) -> float:
        return self.peak_rate - self.base_rate

    def __call__(self, t: float) -> float:
        x = 2.0 * math.pi * (t - self.phase) / self.period
        return self.base_rate + self._swing() * (1.0 - math.cos(x)) / 2.0

    def bound(self) -> float:
        return self.peak_rate

    def cumulative(self, t: float) -> float:
        # ∫ (1 - cos(ωs))/2 ds = s/2 - sin(ωs)/(2ω), evaluated on the
        # phase-shifted axis so Λ(0) = 0 for any phase.
        omega = 2.0 * math.pi / self.period

        def antiderivative(s: float) -> float:
            return s / 2.0 - math.sin(omega * s) / (2.0 * omega)

        swing_part = antiderivative(t - self.phase) - antiderivative(-self.phase)
        return self.base_rate * t + self._swing() * swing_part

    def __repr__(self) -> str:
        return (
            f"DiurnalRate(base={self.base_rate:g}, peak={self.peak_rate:g}, "
            f"period={self.period:g}, phase={self.phase:g})"
        )


class FlashCrowdRate(RateShape):
    """Baseline plus one flash crowd: linear onset, exponential decay.

    * ``t < onset`` — baseline ``base_rate``;
    * ``onset <= t < onset + rise`` — linear ramp from ``base_rate``
      to ``peak_rate``;
    * ``t >= onset + rise`` — exponential relaxation back toward the
      baseline with time constant ``decay``.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        onset: float,
        rise: float = 10.0,
        decay: float = 30.0,
    ) -> None:
        if base_rate < 0:
            raise ValueError(f"base_rate must be >= 0, got {base_rate}")
        if peak_rate < base_rate:
            raise ValueError(
                f"peak_rate must be >= base_rate, got {peak_rate} < {base_rate}"
            )
        if onset < 0:
            raise ValueError(f"onset must be >= 0, got {onset}")
        if rise <= 0 or decay <= 0:
            raise ValueError("rise and decay must be positive")
        self.base_rate = float(base_rate)
        self.peak_rate = float(peak_rate)
        self.onset = float(onset)
        self.rise = float(rise)
        self.decay = float(decay)

    def _swing(self) -> float:
        return self.peak_rate - self.base_rate

    def __call__(self, t: float) -> float:
        crest = self.onset + self.rise
        if t < self.onset:
            return self.base_rate
        if t < crest:
            return self.base_rate + self._swing() * (t - self.onset) / self.rise
        return self.base_rate + self._swing() * math.exp(-(t - crest) / self.decay)

    def bound(self) -> float:
        return self.peak_rate

    def cumulative(self, t: float) -> float:
        crest = self.onset + self.rise
        total = self.base_rate * t
        if t > self.onset:
            ramp_end = min(t, crest)
            # Triangle under the linear ramp.
            total += self._swing() * (ramp_end - self.onset) ** 2 / (2.0 * self.rise)
        if t > crest:
            # ∫ e^{-(s-crest)/decay} ds from crest to t.
            total += self._swing() * self.decay * (
                1.0 - math.exp(-(t - crest) / self.decay)
            )
        return total

    def __repr__(self) -> str:
        return (
            f"FlashCrowdRate(base={self.base_rate:g}, peak={self.peak_rate:g}, "
            f"onset={self.onset:g}, rise={self.rise:g}, decay={self.decay:g})"
        )


class PiecewiseConstantRate(RateShape):
    """A step function over ``[0, edges[-1])``; zero outside.

    Args:
        edges: Strictly increasing bin boundaries starting at ``0``
            (``len(rates) + 1`` entries).
        rates: Rate inside each ``[edges[i], edges[i+1])`` bin.
    """

    def __init__(self, edges: Sequence[float], rates: Sequence[float]) -> None:
        edges = tuple(float(e) for e in edges)
        rates = tuple(float(r) for r in rates)
        if len(edges) != len(rates) + 1:
            raise ValueError(
                f"need len(rates)+1 edges, got {len(edges)} edges "
                f"for {len(rates)} rates"
            )
        if not rates:
            raise ValueError("need at least one bin")
        if edges[0] != 0.0:
            raise ValueError(f"edges must start at 0, got {edges[0]}")
        if any(b <= a for a, b in zip(edges, edges[1:])):
            raise ValueError(f"edges must be strictly increasing, got {edges}")
        if any(r < 0 for r in rates):
            raise ValueError(f"rates must be >= 0, got {rates}")
        self.edges = edges
        self.rates = rates

    @classmethod
    def from_trace(
        cls,
        times: Sequence[float],
        bin_width: float,
        horizon: float,
    ) -> "PiecewiseConstantRate":
        """The empirical rate histogram of recorded arrival timestamps.

        Bins ``[0, horizon)`` at ``bin_width`` (the last bin may be
        shorter) and sets each bin's rate to ``count / width`` — the
        maximum-likelihood piecewise-constant intensity of the trace.
        Timestamps outside ``[0, horizon)`` are ignored.
        """
        if bin_width <= 0:
            raise ValueError(f"bin_width must be positive, got {bin_width}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        n_bins = max(1, math.ceil(horizon / bin_width))
        edges = [min(i * bin_width, horizon) for i in range(n_bins + 1)]
        edges[-1] = horizon
        counts = [0] * n_bins
        for t in times:
            if 0.0 <= t < horizon:
                counts[min(int(t / bin_width), n_bins - 1)] += 1
        rates = [
            counts[i] / (edges[i + 1] - edges[i]) for i in range(n_bins)
        ]
        return cls(edges, rates)

    def __call__(self, t: float) -> float:
        if t < 0.0 or t >= self.edges[-1]:
            return 0.0
        # Linear scan: shapes have few bins and are evaluated once per
        # thinning candidate; bisect would be noise here.
        for i, edge in enumerate(self.edges[1:]):
            if t < edge:
                return self.rates[i]
        return 0.0  # pragma: no cover - unreachable, t < edges[-1]

    def bound(self) -> float:
        return max(self.rates)

    def cumulative(self, t: float) -> float:
        total = 0.0
        for i, rate in enumerate(self.rates):
            lo, hi = self.edges[i], self.edges[i + 1]
            if t <= lo:
                break
            total += rate * (min(t, hi) - lo)
        return total

    def __repr__(self) -> str:
        return f"PiecewiseConstantRate({len(self.rates)} bins, bound={self.bound():g})"


class SumRate(RateShape):
    """Superposition ``a(t) + b(t)`` (built by ``a + b``)."""

    def __init__(self, a: RateShape, b: RateShape) -> None:
        self.a = a
        self.b = b

    def __call__(self, t: float) -> float:
        return self.a(t) + self.b(t)

    def bound(self) -> float:
        # Sum of bounds: a valid (if not always tight) ceiling.
        return self.a.bound() + self.b.bound()

    def cumulative(self, t: float) -> float:
        return self.a.cumulative(t) + self.b.cumulative(t)

    def __repr__(self) -> str:
        return f"({self.a!r} + {self.b!r})"


class ScaledRate(RateShape):
    """``factor · λ(t)`` (built by ``factor * shape``)."""

    def __init__(self, shape: RateShape, factor: float) -> None:
        if factor < 0:
            raise ValueError(f"factor must be >= 0, got {factor}")
        self.shape = shape
        self.factor = float(factor)

    def __call__(self, t: float) -> float:
        return self.factor * self.shape(t)

    def bound(self) -> float:
        return self.factor * self.shape.bound()

    def cumulative(self, t: float) -> float:
        return self.factor * self.shape.cumulative(t)

    def __repr__(self) -> str:
        return f"{self.factor:g}*{self.shape!r}"


def invert_cumulative(
    shape: RateShape, target: float, horizon: float, tol: float = 1e-12
) -> float:
    """``Λ⁻¹(target)`` on ``[0, horizon]`` by bisection.

    ``Λ`` is non-decreasing; over zero-rate plateaus the inverse is
    set-valued and bisection converges to *a* point of the preimage,
    which is measure-preserving for the conditional-density sampler
    (plateaus have zero arrival probability). ``target`` must lie in
    ``[0, Λ(horizon)]``.
    """
    total = shape.cumulative(horizon)
    if not 0.0 <= target <= total:
        raise ValueError(
            f"target {target} outside [0, Λ(horizon)={total}]"
        )
    lo, hi = 0.0, float(horizon)
    # 60 halvings take the bracket below any practical tol; the tol
    # check just exits early for easy targets.
    for _ in range(60):
        if hi - lo <= tol * horizon:
            break
        mid = (lo + hi) / 2.0
        if shape.cumulative(mid) < target:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2.0

"""New calibrated service families beyond the paper's three.

The paper's motivating services (movie playback, surveillance,
conferencing — :mod:`repro.services.workload`) all sit in the media
decode/encode corner of the design space. The three families here open
different corners while keeping the same calibration discipline against
:data:`~repro.resources.node.NODE_CLASS_PROFILES`:

* **speech recognition** — a large acoustic/language model is the cost
  driver (tabular, like the conferencing codec): the *large* model with
  a wide beam needs a laptop-class node, while the *small* model with a
  narrow beam fits a PDA;
* **sensor-fusion telemetry** — cost scales with the product-free sum
  of fusion rate and fused sensor count (linear), bandwidth with the
  report rate: full-rate fusion of 12 sensors overwhelms handhelds,
  a 2-sensor trickle does not;
* **map/navigation rendering** — tile style is tabular (3-D rendering
  vs flat tiles), refresh rate and layer count linear; full 3-D maps at
  a high refresh rate are laptop work, degraded 2-D navigation is not.

Calibration targets (mirroring ``repro.services.workload``): every
family's *preferred* quality demands roughly 450–700 CPU — beyond a PDA
(200) and far beyond a phone (50), so cooperation is necessary for weak
requesters — while the *worst acceptable* quality stays near or below
the PDA profile, so degraded solo execution remains possible and the
coalition's utility gain is measurable (experiment E17).

:data:`SERVICE_FAMILIES` maps family names to builders across both the
paper's original three and the new three; contention scenarios
(:mod:`repro.workloads.contention`) and the scenario registry address
families exclusively by these names.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.qos.attribute import Attribute
from repro.qos.catalog import SAMPLING_RATE
from repro.qos.dimension import QoSDimension
from repro.qos.domain import ContinuousDomain, DiscreteDomain
from repro.qos.request import (
    AttributePreference,
    DimensionPreference,
    ServiceRequest,
    ValueInterval,
)
from repro.qos.spec import QoSSpec
from repro.qos.types import ValueType
from repro.resources.capacity import Capacity
from repro.resources.mapping import (
    CompositeDemandModel,
    DemandModel,
    LinearDemandModel,
    TabularDemandModel,
)
from repro.services import workload
from repro.services.service import Service
from repro.services.task import Task

# Canonical attribute names of the new families.
MODEL_SIZE = "model size"
BEAM_WIDTH = "beam width"
FUSION_RATE = "fusion rate"
SENSOR_COUNT = "sensor count"
REPORT_RATE = "report rate"
TILE_STYLE = "tile style"
LAYER_COUNT = "layer count"
REFRESH_RATE = "refresh rate"

RECOGNITION_QUALITY = "Recognition Quality"
AUDIO_CAPTURE = "Audio Capture"
FUSION_QUALITY = "Fusion Quality"
REPORTING = "Reporting"
MAP_DETAIL = "Map Detail"
RESPONSIVENESS = "Responsiveness"


# --------------------------------------------------------------------------
# Speech recognition
# --------------------------------------------------------------------------


def speech_recognition_spec() -> QoSSpec:
    """Continuous dictation over the ad-hoc cluster.

    *Recognition Quality* dominates: the acoustic/language model size
    (large … tiny, best first) and the decoder beam width. *Audio
    Capture* reuses the paper's sampling-rate attribute.
    """
    return QoSSpec(
        name="speech-recognition",
        dimensions=(
            QoSDimension(RECOGNITION_QUALITY, (MODEL_SIZE, BEAM_WIDTH)),
            QoSDimension(AUDIO_CAPTURE, (SAMPLING_RATE,)),
        ),
        attributes=(
            Attribute(
                MODEL_SIZE,
                DiscreteDomain(ValueType.STRING, ("large", "medium", "small", "tiny")),
            ),
            Attribute(BEAM_WIDTH, ContinuousDomain(ValueType.INTEGER, 1, 12)),
            Attribute(
                SAMPLING_RATE, DiscreteDomain(ValueType.INTEGER, (44, 24, 16, 8)),
                unit="kHz",
            ),
        ),
    )


def speech_recognition_request(spec: QoSSpec | None = None) -> ServiceRequest:
    """Dictation request: accuracy over capture fidelity.

    Accepts model sizes down to *small* and beams down to 3 — the user
    tolerates a worse transcript, not a dead one.
    """
    spec = spec if spec is not None else speech_recognition_spec()
    return ServiceRequest(
        spec=spec,
        name="dictation",
        dimensions=(
            DimensionPreference(
                RECOGNITION_QUALITY,
                (
                    AttributePreference(MODEL_SIZE, ("large", "medium", "small")),
                    AttributePreference(
                        BEAM_WIDTH, (ValueInterval(12, 8), ValueInterval(7, 3))
                    ),
                ),
            ),
            DimensionPreference(
                AUDIO_CAPTURE,
                (AttributePreference(SAMPLING_RATE, (16, 8)),),
            ),
        ),
    )


def speech_recognition_demand() -> DemandModel:
    """Demand profile of a streaming-recognition task.

    The model table dominates (weights resident in memory, inference on
    CPU); beam width adds linear search cost; the sampling rate only
    moves capture bandwidth. Preferred quality (large, beam 12, 16 kHz)
    ≈ 660 CPU / 344 MB — laptop work; worst acceptable (small, beam 3,
    8 kHz) ≈ 140 CPU / 56 MB — a PDA copes.
    """
    model = TabularDemandModel(
        base=Capacity.zero(),
        tables={
            MODEL_SIZE: {
                "large": Capacity.of(cpu=420.0, memory=320.0, energy=120.0),
                "medium": Capacity.of(cpu=180.0, memory=128.0, energy=55.0),
                "small": Capacity.of(cpu=65.0, memory=32.0, energy=22.0),
                "tiny": Capacity.of(cpu=25.0, memory=16.0, energy=8.0),
            }
        },
    )
    search = LinearDemandModel(
        base=Capacity.of(cpu=12.0, memory=24.0, energy=25.0),
        per_unit={
            BEAM_WIDTH: Capacity.of(cpu=18.0, energy=1.5),
            SAMPLING_RATE: Capacity.of(cpu=0.8, net_bandwidth=14.0, energy=0.6),
        },
    )
    return CompositeDemandModel(model, search)


def speech_recognition_service(requester: str, name: str = "speech") -> Service:
    """A single continuous-recognition task (30 s dictation session)."""
    request = speech_recognition_request()
    task = Task(
        task_id=Task.fresh_id(f"{name}-asr"),
        request=request,
        demand_model=speech_recognition_demand(),
        input_kb=90.0,
        output_kb=15.0,
        duration=30.0,
    )
    return Service(name=name, tasks=(task,), requester=requester)


# --------------------------------------------------------------------------
# Sensor-fusion telemetry
# --------------------------------------------------------------------------


def sensor_fusion_spec() -> QoSSpec:
    """Fusing the cluster's sensors into one telemetry stream.

    *Fusion Quality* (fusion rate in Hz, fused sensor count) dominates
    *Reporting* (uplink report rate in Hz).
    """
    return QoSSpec(
        name="sensor-fusion",
        dimensions=(
            QoSDimension(FUSION_QUALITY, (FUSION_RATE, SENSOR_COUNT)),
            QoSDimension(REPORTING, (REPORT_RATE,)),
        ),
        attributes=(
            Attribute(FUSION_RATE, ContinuousDomain(ValueType.INTEGER, 1, 50), unit="Hz"),
            Attribute(
                SENSOR_COUNT, DiscreteDomain(ValueType.INTEGER, (12, 8, 4, 2))
            ),
            Attribute(
                REPORT_RATE, DiscreteDomain(ValueType.INTEGER, (10, 5, 1)), unit="Hz"
            ),
        ),
    )


def sensor_fusion_request(spec: QoSSpec | None = None) -> ServiceRequest:
    """Telemetry request: dense fusion preferred, a trickle acceptable."""
    spec = spec if spec is not None else sensor_fusion_spec()
    return ServiceRequest(
        spec=spec,
        name="telemetry",
        dimensions=(
            DimensionPreference(
                FUSION_QUALITY,
                (
                    AttributePreference(
                        FUSION_RATE, (ValueInterval(40, 25), ValueInterval(24, 10))
                    ),
                    AttributePreference(SENSOR_COUNT, (12, 8, 4, 2)),
                ),
            ),
            DimensionPreference(
                REPORTING,
                (AttributePreference(REPORT_RATE, (10, 5, 1)),),
            ),
        ),
    )


def sensor_fusion_demand() -> DemandModel:
    """Demand profile of a fusion task.

    CPU scales with the fusion rate (filter updates per second) and the
    sensor count (association work and per-sensor ingest); the report
    rate only costs uplink bandwidth. Preferred (40 Hz, 12 sensors,
    10 Hz) ≈ 475 CPU; worst acceptable (10 Hz, 2 sensors, 1 Hz)
    ≈ 110 CPU.
    """
    return LinearDemandModel(
        base=Capacity.of(cpu=8.0, memory=16.0, energy=15.0),
        per_unit={
            FUSION_RATE: Capacity.of(cpu=7.0, bus_bandwidth=0.5, energy=0.8),
            SENSOR_COUNT: Capacity.of(cpu=15.5, memory=6.0, net_bandwidth=40.0, energy=1.2),
            REPORT_RATE: Capacity.of(net_bandwidth=60.0, energy=0.5),
        },
    )


def sensor_fusion_service(requester: str, name: str = "sensor-fusion") -> Service:
    """One fusion task plus a cheap archival task (two-task service)."""
    request = sensor_fusion_request()
    fuse = Task(
        task_id=Task.fresh_id(f"{name}-fuse"),
        request=request,
        demand_model=sensor_fusion_demand(),
        input_kb=150.0,
        output_kb=60.0,
        duration=25.0,
    )
    archive = Task(
        task_id=Task.fresh_id(f"{name}-archive"),
        request=request,
        demand_model=LinearDemandModel(
            base=Capacity.of(cpu=6.0, memory=24.0, energy=10.0),
            per_unit={REPORT_RATE: Capacity.of(cpu=2.0, bus_bandwidth=4.0, energy=0.8)},
        ),
        input_kb=60.0,
        output_kb=5.0,
        duration=25.0,
    )
    return Service(name=name, tasks=(fuse, archive), requester=requester)


# --------------------------------------------------------------------------
# Map/navigation rendering
# --------------------------------------------------------------------------


def navigation_spec() -> QoSSpec:
    """Live map rendering for turn-by-turn navigation.

    *Map Detail* (tile style, overlay layer count) dominates
    *Responsiveness* (view refresh rate).
    """
    return QoSSpec(
        name="navigation",
        dimensions=(
            QoSDimension(MAP_DETAIL, (TILE_STYLE, LAYER_COUNT)),
            QoSDimension(RESPONSIVENESS, (REFRESH_RATE,)),
        ),
        attributes=(
            Attribute(
                TILE_STYLE,
                DiscreteDomain(ValueType.STRING, ("3d", "hybrid", "2d-hi", "2d-lo")),
            ),
            Attribute(LAYER_COUNT, DiscreteDomain(ValueType.INTEGER, (5, 4, 3, 2))),
            Attribute(REFRESH_RATE, ContinuousDomain(ValueType.INTEGER, 1, 15), unit="fps"),
        ),
    )


def navigation_request(spec: QoSSpec | None = None) -> ServiceRequest:
    """Navigation request: photorealistic preferred, flat tiles accepted."""
    spec = spec if spec is not None else navigation_spec()
    return ServiceRequest(
        spec=spec,
        name="turn-by-turn",
        dimensions=(
            DimensionPreference(
                MAP_DETAIL,
                (
                    AttributePreference(TILE_STYLE, ("3d", "hybrid", "2d-hi")),
                    AttributePreference(LAYER_COUNT, (5, 4, 3, 2)),
                ),
            ),
            DimensionPreference(
                RESPONSIVENESS,
                (
                    AttributePreference(
                        REFRESH_RATE, (ValueInterval(15, 8), ValueInterval(7, 2))
                    ),
                ),
            ),
        ),
    )


def navigation_demand() -> DemandModel:
    """Demand profile of a map-render task.

    Tile style is tabular (3-D scene rendering vs blitting flat tiles,
    with tile-stream bandwidth to match); layers and refresh rate add
    linear compositing cost. Preferred (3d, 5 layers, 15 fps) ≈ 590
    CPU / 242 MB; worst acceptable (2d-hi, 2 layers, 2 fps) ≈ 140 CPU /
    60 MB — PDA territory.
    """
    style = TabularDemandModel(
        base=Capacity.zero(),
        tables={
            TILE_STYLE: {
                "3d": Capacity.of(cpu=260.0, memory=200.0, net_bandwidth=400.0, energy=70.0),
                "hybrid": Capacity.of(cpu=140.0, memory=120.0, net_bandwidth=250.0, energy=40.0),
                "2d-hi": Capacity.of(cpu=60.0, memory=36.0, net_bandwidth=120.0, energy=18.0),
                "2d-lo": Capacity.of(cpu=22.0, memory=32.0, net_bandwidth=60.0, energy=8.0),
            }
        },
    )
    compositing = LinearDemandModel(
        base=Capacity.of(cpu=10.0, memory=12.0, energy=25.0),
        per_unit={
            LAYER_COUNT: Capacity.of(cpu=22.0, memory=6.0, energy=2.0),
            REFRESH_RATE: Capacity.of(cpu=14.0, net_bandwidth=25.0, energy=2.0),
        },
    )
    return CompositeDemandModel(style, compositing)


def navigation_service(requester: str, name: str = "navigation") -> Service:
    """Map rendering plus a light route-tracking task."""
    request = navigation_request()
    render = Task(
        task_id=Task.fresh_id(f"{name}-render"),
        request=request,
        demand_model=navigation_demand(),
        input_kb=220.0,
        output_kb=120.0,
        duration=20.0,
    )
    route = Task(
        task_id=Task.fresh_id(f"{name}-route"),
        request=request,
        demand_model=LinearDemandModel(
            base=Capacity.of(cpu=12.0, memory=16.0, energy=12.0),
            per_unit={REFRESH_RATE: Capacity.of(cpu=1.5, energy=0.4)},
        ),
        input_kb=25.0,
        output_kb=10.0,
        duration=20.0,
    )
    return Service(name=name, tasks=(render, route), requester=requester)


# --------------------------------------------------------------------------
# Family registry
# --------------------------------------------------------------------------

#: Builder signature shared by every family: ``(requester, name) -> Service``.
ServiceBuilder = Callable[..., Service]

#: The three new families introduced by this module.
NEW_SERVICE_FAMILIES: Dict[str, ServiceBuilder] = {
    "speech": speech_recognition_service,
    "sensor-fusion": sensor_fusion_service,
    "navigation": navigation_service,
}

#: Every named family: the paper's motivating three plus the new three.
SERVICE_FAMILIES: Dict[str, ServiceBuilder] = {
    "movie": workload.movie_playback_service,
    "surveillance": workload.surveillance_service,
    "conference": workload.conference_service,
    **NEW_SERVICE_FAMILIES,
}


def build_service(family: str, requester: str, name: str | None = None) -> Service:
    """Instantiate a named service family for ``requester``.

    Args:
        family: A key of :data:`SERVICE_FAMILIES`.
        requester: Node id of the requesting device.
        name: Service name override (defaults to the family's own).

    Raises:
        KeyError: For an unknown family name (listing the valid ones).
    """
    try:
        builder = SERVICE_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown service family {family!r}; "
            f"available: {', '.join(SERVICE_FAMILIES)}"
        ) from None
    return builder(requester, name=name) if name is not None else builder(requester)


def family_demand_bounds(family: str) -> Dict[str, Mapping[str, float]]:
    """Preferred-level and worst-acceptable total demand of a family.

    Sums each task's demand at its ladder's top and bottom — the numbers
    the calibration targets in this module's docstrings talk about.
    Returned as ``{"top": {...}, "bottom": {...}}`` keyed by resource
    kind value (tests and docs assert against these).
    """
    service = build_service(family, requester="calibration")
    top = Capacity.zero()
    bottom = Capacity.zero()
    for task in service.tasks:
        ladder = task.ladder()
        top = top + task.demand_at(ladder.top().values())
        bottom = bottom + task.demand_at(ladder.bottom().values())
    return {
        "top": {kind.value: top.get(kind) for kind in top.kinds()},
        "bottom": {kind.value: bottom.get(kind) for kind in bottom.kinds()},
    }

"""Multi-requester contention: K self-interested requesters, one cluster.

The paper studies one requester negotiating with its neighborhood. Here
K requester devices share a single cluster's providers: each requester
has its own service family and its own session arrival stream, sessions
hold real reservations (``negotiate(commit=True)``) for their duration,
and later arrivals see whatever capacity the earlier coalitions left —
exactly the self-interested-agents regime of the related
equilibrium-computation work on integer programming games.

A run is configured by one :class:`ContentionConfig` (which embeds a
:class:`~repro.sessions.SessionPolicy`) and executes in one of two
modes:

* **admission-only** (``sessions.operate=False``, the default and the
  historical semantics): an event loop over the merged arrival
  sequence — sessions negotiate, hold their reservations for their
  nominal duration, and are released; nothing happens *during* a
  session.
* **streaming** (``sessions.operate=True``): the same arrivals are
  submitted to a :class:`~repro.sessions.SessionDriver` on a discrete-
  event engine, so each admitted coalition's *operation phase* — crash
  and battery churn, degradation, in-place renegotiation against the
  currently contended cluster — interleaves with later admissions.

Both modes consume the ``fleet``, ``placement`` and
``arrivals:req<k>`` RNG streams identically; the streaming mode's extra
draws come from its own ``failures`` and ``mobility`` streams, which
are independently derived — so flipping the mode never perturbs the
cluster or the arrival sequence. Everything derives from the
replication seed, so a scenario is a pure function of its seed — the
precondition for riding the shared work-queue scheduler with the
bit-identical parallel==serial guarantee.

The helpers borrowed from :mod:`repro.experiments.scenario` are
imported lazily inside :func:`build_contention_cluster` (and the
experiment-layer fleet tables inside
:class:`ContentionConfig.__post_init__`) so this package never imports
the experiment layer at module scope (the suites import us; see the
:mod:`repro.workloads` docstring on layering).
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.negotiation import negotiate, release_coalition
from repro.metrics.utility import outcome_utility
from repro.network.mobility import RandomWaypoint
from repro.network.topology import Topology
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.sessions.driver import SessionDriver
from repro.sessions.policy import SessionPolicy
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import ArrivalProcess, PoissonProcess
from repro.workloads.services import SERVICE_FAMILIES, build_service

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.experiments.config import ClusterConfig
    from repro.faults.plan import FaultPlan
    from repro.faults.report import ResilienceReport

#: Feature switch (see :mod:`repro.features`): when ``False``, configs
#: with ``sessions.operate=True`` fall back to the admission-only loop.
#: Snapshotted once per :func:`run_contention` call.
USE_SESSION_DRIVER = True


def requester_id(k: int) -> str:
    """Node id of the ``k``-th requester (``req0``, ``req1``, ...)."""
    return f"req{k}"


@dataclass(frozen=True)
class ContentionConfig:
    """Declarative configuration of one contention run.

    Collapses what used to be :func:`run_contention`'s keyword sprawl
    into one frozen, ``replace``-sweepable value shared by
    :class:`~repro.workloads.registry.ScenarioSpec`, the experiment
    suites and the CLI.

    Attributes:
        n_requesters: K, the number of competing requester devices.
        families: Service family per requester
            (:data:`~repro.workloads.services.SERVICE_FAMILIES` keys),
            cycled when shorter than ``n_requesters``.
        arrival: Arrival process shared by every requester — each draws
            from its *own* RNG stream, so streams are independent.
            ``None`` (the default) normalizes to Poisson at one session
            per 40 s.
        horizon: Observation window (simulated seconds); arrivals stop
            here, but streaming sessions admitted before the horizon
            run out their span.
        n_nodes: Total cluster size, requesters included.
        area: Square deployment area side (m).
        radio_range: Disc-radio range (m).
        requester_class: Device class of every requester (weak by
            default, the paper's motivating client).
        mix: Named helper-class mix
            (:data:`repro.experiments.config.FLEET_MIXES` key).
        sessions: The streaming-session lifecycle policy; its
            ``operate`` flag selects admission-only vs streaming mode.
        faults: Optional declarative
            :class:`~repro.faults.plan.FaultPlan` injected into
            streaming runs (burst loss, partitions, crash hazards,
            agent faults — see :mod:`repro.faults`). ``None`` or an
            empty plan is the exact fault-free path, draw for draw;
            the ``faults`` feature switch can disable a non-empty plan
            globally. Ignored in admission-only mode.
    """

    n_requesters: int = 2
    families: Tuple[str, ...] = ("movie", "speech")
    arrival: Optional[ArrivalProcess] = None
    horizon: float = 240.0
    n_nodes: int = 16
    area: float = 120.0
    radio_range: float = 100.0
    requester_class: NodeClass = NodeClass.PHONE
    mix: str = "default"
    sessions: SessionPolicy = SessionPolicy()
    faults: Optional["FaultPlan"] = None

    def __post_init__(self) -> None:
        # Lazy: keep repro.workloads importable without the experiment layer.
        from repro.experiments.config import FLEET_MIXES

        if self.n_requesters < 1:
            raise ValueError(
                f"need at least one requester, got {self.n_requesters}"
            )
        if self.n_nodes < self.n_requesters:
            raise ValueError(
                f"cluster of {self.n_nodes} cannot host "
                f"{self.n_requesters} requesters"
            )
        object.__setattr__(self, "families", tuple(self.families))
        unknown = [f for f in self.families if f not in SERVICE_FAMILIES]
        if unknown:
            raise KeyError(
                f"unknown service family {unknown[0]!r}; "
                f"available: {', '.join(SERVICE_FAMILIES)}"
            )
        if self.mix not in FLEET_MIXES:
            raise KeyError(
                f"unknown fleet mix {self.mix!r}; "
                f"available: {', '.join(FLEET_MIXES)}"
            )
        if self.arrival is None:
            object.__setattr__(self, "arrival", PoissonProcess(rate=1.0 / 40.0))

    def replace(self, **changes) -> "ContentionConfig":
        """A copy with fields changed (sweep helper)."""
        return dataclasses.replace(self, **changes)


@dataclass(frozen=True)
class SessionOutcome:
    """One session request and what the run made of it.

    ``final_state`` is ``"rejected"`` when admission failed,
    ``"closed"`` for a session that streamed its full span, and
    ``"dropped"`` for one torn down mid-stream (streaming mode only —
    admission-only runs never drop what they admit). ``utility`` is the
    admission-time utility; ``sustained_utility`` is the time-integrated
    utility actually delivered over the planned span (equal to
    ``utility`` when nothing churned, 0 for rejected sessions).
    """

    requester: int
    arrival: float
    family: str
    success: bool
    utility: float
    coalition_size: int
    concurrent: int
    """Sessions already holding reservations when this one negotiated."""
    final_state: str = "closed"
    sustained_utility: float = 0.0
    renegotiations: int = 0
    """In-place renegotiation attempts, successful or failed."""


@dataclass
class ContentionResult:
    """Everything one contention run produced.

    ``sessions`` is in processing order (arrival time, requester,
    ordinal), which is also deterministic given the seed.
    """

    n_requesters: int
    horizon: float
    sessions: List[SessionOutcome] = field(default_factory=list)
    resilience: Optional["ResilienceReport"] = None
    """Robustness accounting (streaming mode only; ``None`` in
    admission-only runs). Surfaced separately from :meth:`metrics` so
    the fixed metric row — and every committed benchmark built on it —
    is untouched by fault injection."""

    def offered(self, requester: Optional[int] = None) -> int:
        """Session count, overall or for one requester."""
        return len(list(self._of(requester)))

    def successes(self, requester: Optional[int] = None) -> int:
        return sum(1 for s in self._of(requester) if s.success)

    def _of(self, requester: Optional[int]):
        if requester is None:
            return iter(self.sessions)
        return (s for s in self.sessions if s.requester == requester)

    def per_requester_success_rates(self) -> Tuple[float, ...]:
        """Success rate per requester; requesters with no arrivals get 1.0
        (they were never denied anything)."""
        rates = []
        for k in range(self.n_requesters):
            offered = self.offered(k)
            rates.append(self.successes(k) / offered if offered else 1.0)
        return tuple(rates)

    def fairness(self) -> float:
        """Jain's fairness index over per-requester success rates.

        1.0 = every requester is served equally well; ``1/K`` = one
        requester captures the cluster while the rest starve.
        """
        rates = self.per_requester_success_rates()
        total = sum(rates)
        if total == 0.0:
            return 1.0  # everyone equally starved
        return total ** 2 / (len(rates) * sum(r * r for r in rates))

    def metrics(self) -> Dict[str, float]:
        """The flat metric row experiment replications return.

        Keys are fixed regardless of outcomes, as
        :func:`~repro.experiments.runner.summarize_replications`
        requires. The streaming-lifecycle keys are present in every
        mode (admission-only runs report ``sustained_utility`` equal to
        admission utility, zero renegotiations and zero drops), so
        sweeps can mix modes without ragged rows.
        """
        n = len(self.sessions)
        admitted = [s for s in self.sessions if s.success]
        return {
            "offered": float(n),
            "success_rate": (self.successes() / n) if n else 1.0,
            "utility": (
                float(np.mean([s.utility for s in self.sessions])) if n else 0.0
            ),
            "fairness": self.fairness(),
            "mean_concurrent": (
                float(np.mean([s.concurrent for s in self.sessions])) if n else 0.0
            ),
            "peak_concurrent": (
                float(max(s.concurrent for s in self.sessions)) if n else 0.0
            ),
            "mean_coalition_size": (
                float(np.mean([s.coalition_size for s in self.sessions])) if n else 0.0
            ),
            "sustained_utility": (
                float(np.mean([s.sustained_utility for s in self.sessions]))
                if n else 0.0
            ),
            "renegotiation_rate": (
                sum(s.renegotiations for s in admitted) / len(admitted)
                if admitted else 0.0
            ),
            "drop_rate": (
                sum(1 for s in admitted if s.final_state == "dropped")
                / len(admitted)
                if admitted else 0.0
            ),
        }


def build_contention_cluster(
    config: "ClusterConfig",
    n_requesters: int,
    registry: RngRegistry,
) -> Tuple[Topology, Dict[str, QoSProvider], List[Node]]:
    """A static cluster with ``n_requesters`` requester nodes.

    The multi-requester analogue of
    :func:`repro.experiments.scenario.build_cluster`: requesters come
    first (``req0`` ... ``req{K-1}``, all of the config's requester
    class), the remaining nodes are drawn from the config's class mix,
    and everything is placed by the registry's ``placement`` stream.
    """
    from repro.experiments.scenario import assemble_cluster, multi_requester_fleet

    nodes = multi_requester_fleet(config, registry.stream("fleet"), n_requesters)
    topology, providers = assemble_cluster(nodes, config, registry)
    return topology, providers, nodes


_LEGACY_KWARGS = (
    "n_requesters", "families", "arrival", "horizon", "n_nodes",
    "area", "radio_range", "requester_class", "mix",
)


def run_contention(
    seed: int,
    config: Optional[ContentionConfig] = None,
    *,
    n_requesters: Optional[int] = None,
    families: Optional[Sequence[str]] = None,
    arrival: Optional[ArrivalProcess] = None,
    horizon: Optional[float] = None,
    n_nodes: Optional[int] = None,
    area: Optional[float] = None,
    radio_range: Optional[float] = None,
    requester_class: Optional[NodeClass] = None,
    mix: Optional[str] = None,
) -> ContentionResult:
    """Run one contention scenario.

    Args:
        seed: Master seed; the run is a pure function of it.
        config: The :class:`ContentionConfig` describing the run
            (``ContentionConfig()`` if omitted). The embedded
            :class:`~repro.sessions.SessionPolicy` selects
            admission-only vs streaming mode.
        **legacy keywords**: The pre-config keyword surface
            (``n_requesters=...``, ``families=...``, …) is still
            accepted — it builds the equivalent config and emits a
            :class:`DeprecationWarning`. Mixing ``config`` with legacy
            keywords raises ``TypeError``.

    Returns:
        The :class:`ContentionResult` with per-session outcomes.
    """
    legacy = {
        name: value
        for name, value in (
            ("n_requesters", n_requesters),
            ("families", families),
            ("arrival", arrival),
            ("horizon", horizon),
            ("n_nodes", n_nodes),
            ("area", area),
            ("radio_range", radio_range),
            ("requester_class", requester_class),
            ("mix", mix),
        )
        if value is not None
    }
    if config is not None and legacy:
        raise TypeError(
            "pass either a ContentionConfig or legacy keyword arguments, "
            f"not both (got config and {sorted(legacy)})"
        )
    if config is None:
        if legacy:
            warnings.warn(
                "run_contention(seed, n_requesters=..., ...) is deprecated; "
                "pass run_contention(seed, ContentionConfig(...)) instead",
                DeprecationWarning,
                stacklevel=2,
            )
        config = ContentionConfig(**legacy)

    # Lazy: keep repro.workloads importable without the experiment layer.
    from repro.experiments.config import FLEET_MIXES, ClusterConfig

    registry = RngRegistry(seed)
    cluster = ClusterConfig(
        n_nodes=config.n_nodes,
        requester_class=config.requester_class,
        mix=dict(FLEET_MIXES[config.mix]),
        area=config.area,
        radio_range=config.radio_range,
    )
    topology, providers, nodes = build_contention_cluster(
        cluster, config.n_requesters, registry
    )

    events, family_of = merge_arrival_events(config, registry)

    # Snapshot the feature switch once: a run is all-driver or
    # all-legacy, never mixed.
    if config.sessions.operate and USE_SESSION_DRIVER:
        return _run_streaming(
            config, registry, topology, providers, nodes, events, family_of
        )
    return _run_admission_only(config, topology, providers, events, family_of)


def merge_arrival_events(
    config: ContentionConfig, registry: RngRegistry
) -> Tuple[List[Tuple[float, int, int]], Dict[int, str]]:
    """Draw every requester's arrival stream and merge the events.

    Returns the time-sorted ``(t, requester, ordinal)`` events plus the
    requester → service-family map. The one home of the per-requester
    ``arrivals:req<k>`` stream consumption, shared by
    :func:`run_contention` and the sharded runner
    (:func:`repro.shard.driver.run_sharded_contention`) — both paths
    must consume the streams identically for the shard-vs-unsharded
    bit-identity pin to hold.
    """
    family_of = {
        k: config.families[k % len(config.families)]
        for k in range(config.n_requesters)
    }
    events: List[Tuple[float, int, int]] = []
    assert config.arrival is not None  # normalized by __post_init__
    for k in range(config.n_requesters):
        times = config.arrival.arrivals(
            registry.stream(f"arrivals:{requester_id(k)}"), config.horizon
        )
        events.extend((t, k, i) for i, t in enumerate(times))
    events.sort()
    return events, family_of


def _session_service(family: str, k: int, ordinal: int):
    return build_service(
        family,
        requester=requester_id(k),
        name=f"{family}-{requester_id(k)}-{ordinal}",
    )


def _run_admission_only(
    config: ContentionConfig,
    topology: Topology,
    providers: Dict[str, QoSProvider],
    events: List[Tuple[float, int, int]],
    family_of: Dict[int, str],
) -> ContentionResult:
    """The historical admission-only loop: sessions hold reservations
    for their nominal duration; nothing happens while they do."""
    result = ContentionResult(
        n_requesters=config.n_requesters, horizon=config.horizon
    )
    active: List[Tuple[float, object]] = []  # (end time, coalition)
    for t, k, ordinal in events:
        # Dissolve sessions whose duration has elapsed by now.
        still = []
        for end, coalition in active:
            if end <= t:
                release_coalition(coalition, providers, now=t)
            else:
                still.append((end, coalition))
        active = still

        family = family_of[k]
        service = _session_service(family, k, ordinal)
        outcome = negotiate(service, topology, providers, commit=True, now=t)
        utility = outcome_utility(outcome)
        result.sessions.append(
            SessionOutcome(
                requester=k,
                arrival=t,
                family=family,
                success=outcome.success,
                utility=utility,
                coalition_size=outcome.coalition.size,
                concurrent=len(active),
                final_state="closed" if outcome.success else "rejected",
                sustained_utility=utility if outcome.success else 0.0,
            )
        )
        if outcome.success:
            duration = max(task.duration for task in service.tasks)
            active.append((t + duration, outcome.coalition))
        else:
            # A failed negotiation must not strand partial reservations.
            release_coalition(outcome.coalition, providers, now=t)

    for _end, coalition in active:
        release_coalition(coalition, providers, now=config.horizon)
    return result


def _run_streaming(
    config: ContentionConfig,
    registry: RngRegistry,
    topology: Topology,
    providers: Dict[str, QoSProvider],
    nodes: List[Node],
    events: List[Tuple[float, int, int]],
    family_of: Dict[int, str],
    driver_cls: type = SessionDriver,
) -> ContentionResult:
    """The streaming mode: every admitted coalition's operation phase
    runs on a shared engine, interleaved with later admissions.

    ``driver_cls`` is the seam the sharded runner uses to substitute
    :class:`repro.shard.driver.ShardedDriver` (same lifecycle, delta
    topology maintenance) without duplicating this orchestration; the
    RNG stream consumption below is identical for every driver class.
    """
    policy = config.sessions
    driver = driver_cls(topology, providers, policy, engine=Engine())

    # Lazy: repro.faults is only pulled in when a run might use it.
    from repro.faults.injector import make_injector
    from repro.faults.report import ResilienceReport

    # Fault injection (the one switch-snapshot gate lives inside
    # make_injector): an absent/empty plan — or the 'faults' switch
    # being off — yields None, and the run below is bit-identical to
    # the pre-fault path; an injector wires partitions, crash hazards
    # and brownouts onto the driver's engine from its own faults:*
    # streams, so the fleet/arrival/failures draws are never perturbed.
    injector = make_injector(
        config.faults,
        registry,
        config.horizon,
        protected=tuple(requester_id(k) for k in range(config.n_requesters)),
    )
    if injector is not None:
        injector.install(driver)

    # Crash churn: one exponential time-to-crash per helper node, in
    # fleet order, from the run's own "failures" stream (independent of
    # the fleet/placement/arrival streams, so enabling churn never
    # perturbs the cluster or the arrivals).
    if policy.failure_rate > 0.0:
        requesters = {requester_id(k) for k in range(config.n_requesters)}
        crash_stream = registry.stream("failures")
        for node in nodes:
            if node.node_id in requesters:
                continue
            crash_at = float(crash_stream.exponential(1.0 / policy.failure_rate))
            if crash_at < config.horizon:
                driver.schedule_failure(crash_at, node.node_id)

    if policy.mobility == "waypoint":
        mobility = RandomWaypoint(
            width=config.area,
            height=config.area,
            speed_min=0.0,
            speed_max=policy.mobility_speed,
            pause=1.0,
            rng=registry.stream("mobility"),
        )
        driver.attach_mobility(mobility, nodes)

    submitted: List[Tuple[int, float, str]] = []
    for t, k, ordinal in events:
        family = family_of[k]
        driver.submit(_session_service(family, k, ordinal), t)
        submitted.append((k, t, family))
    driver.run()

    result = ContentionResult(
        n_requesters=config.n_requesters,
        horizon=config.horizon,
        resilience=ResilienceReport.from_sessions(driver.sessions),
    )
    for (k, t, family), session in zip(submitted, driver.sessions):
        admission = session.admission
        result.sessions.append(
            SessionOutcome(
                requester=k,
                arrival=t,
                family=family,
                success=session.admitted,
                utility=outcome_utility(admission) if admission is not None else 0.0,
                coalition_size=(
                    admission.coalition.size if admission is not None else 0
                ),
                concurrent=session.concurrent,
                final_state=(
                    session.state.value if session.admitted else "rejected"
                ),
                sustained_utility=session.sustained_utility,
                renegotiations=session.renegotiation_attempts,
            )
        )
    return result

"""Multi-requester contention: K self-interested requesters, one cluster.

The paper studies one requester negotiating with its neighborhood. Here
K requester devices share a single cluster's providers: each requester
has its own service family and its own session arrival stream, sessions
hold real reservations (``negotiate(commit=True)``) for their duration,
and later arrivals see whatever capacity the earlier coalitions left —
exactly the self-interested-agents regime of the related
equilibrium-computation work on integer programming games.

The simulation is an event loop over the merged arrival sequence:

1. generate per-requester arrival times (independent named RNG streams
   ``arrivals:req<k>`` of the replication's registry);
2. process arrivals in ``(time, requester, ordinal)`` order — the
   tuple tie-break makes simultaneous arrivals deterministic;
3. before each arrival, release the coalitions of sessions whose
   duration has elapsed; then negotiate the new session against the
   *live* resource state;
4. record per-session success/utility and per-step concurrency.

Everything derives from the replication seed (fleet, placement,
arrivals), so a scenario is a pure function of its seed — the
precondition for riding the shared work-queue scheduler with the
bit-identical parallel==serial guarantee.

The helpers borrowed from :mod:`repro.experiments.scenario` are
imported lazily inside :func:`build_contention_cluster` so this package
never imports the experiment layer at module scope (the suites import
us; see the :mod:`repro.workloads` docstring on layering).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.negotiation import negotiate, release_coalition
from repro.metrics.utility import outcome_utility
from repro.network.topology import Topology
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import ArrivalProcess, PoissonProcess
from repro.workloads.services import SERVICE_FAMILIES, build_service

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.experiments.config import ClusterConfig


def requester_id(k: int) -> str:
    """Node id of the ``k``-th requester (``req0``, ``req1``, ...)."""
    return f"req{k}"


@dataclass(frozen=True)
class SessionOutcome:
    """One session request and what the negotiation made of it."""

    requester: int
    arrival: float
    family: str
    success: bool
    utility: float
    coalition_size: int
    concurrent: int
    """Sessions already holding reservations when this one negotiated."""


@dataclass
class ContentionResult:
    """Everything one contention run produced.

    ``sessions`` is in processing order (arrival time, requester,
    ordinal), which is also deterministic given the seed.
    """

    n_requesters: int
    horizon: float
    sessions: List[SessionOutcome] = field(default_factory=list)

    def offered(self, requester: Optional[int] = None) -> int:
        """Session count, overall or for one requester."""
        return len(list(self._of(requester)))

    def successes(self, requester: Optional[int] = None) -> int:
        return sum(1 for s in self._of(requester) if s.success)

    def _of(self, requester: Optional[int]):
        if requester is None:
            return iter(self.sessions)
        return (s for s in self.sessions if s.requester == requester)

    def per_requester_success_rates(self) -> Tuple[float, ...]:
        """Success rate per requester; requesters with no arrivals get 1.0
        (they were never denied anything)."""
        rates = []
        for k in range(self.n_requesters):
            offered = self.offered(k)
            rates.append(self.successes(k) / offered if offered else 1.0)
        return tuple(rates)

    def fairness(self) -> float:
        """Jain's fairness index over per-requester success rates.

        1.0 = every requester is served equally well; ``1/K`` = one
        requester captures the cluster while the rest starve.
        """
        rates = self.per_requester_success_rates()
        total = sum(rates)
        if total == 0.0:
            return 1.0  # everyone equally starved
        return total ** 2 / (len(rates) * sum(r * r for r in rates))

    def metrics(self) -> Dict[str, float]:
        """The flat metric row experiment replications return.

        Keys are fixed regardless of outcomes, as
        :func:`~repro.experiments.runner.summarize_replications`
        requires.
        """
        n = len(self.sessions)
        return {
            "offered": float(n),
            "success_rate": (self.successes() / n) if n else 1.0,
            "utility": (
                float(np.mean([s.utility for s in self.sessions])) if n else 0.0
            ),
            "fairness": self.fairness(),
            "mean_concurrent": (
                float(np.mean([s.concurrent for s in self.sessions])) if n else 0.0
            ),
            "peak_concurrent": (
                float(max(s.concurrent for s in self.sessions)) if n else 0.0
            ),
            "mean_coalition_size": (
                float(np.mean([s.coalition_size for s in self.sessions])) if n else 0.0
            ),
        }


def build_contention_cluster(
    config: "ClusterConfig",
    n_requesters: int,
    registry: RngRegistry,
) -> Tuple[Topology, Dict[str, QoSProvider], List[Node]]:
    """A static cluster with ``n_requesters`` requester nodes.

    The multi-requester analogue of
    :func:`repro.experiments.scenario.build_cluster`: requesters come
    first (``req0`` ... ``req{K-1}``, all of the config's requester
    class), the remaining nodes are drawn from the config's class mix,
    and everything is placed by the registry's ``placement`` stream.
    """
    from repro.experiments.scenario import assemble_cluster, multi_requester_fleet

    nodes = multi_requester_fleet(config, registry.stream("fleet"), n_requesters)
    topology, providers = assemble_cluster(nodes, config, registry)
    return topology, providers, nodes


def run_contention(
    seed: int,
    n_requesters: int = 2,
    families: Sequence[str] = ("movie", "speech"),
    arrival: Optional[ArrivalProcess] = None,
    horizon: float = 240.0,
    n_nodes: int = 16,
    area: float = 120.0,
    radio_range: float = 100.0,
    requester_class: NodeClass = NodeClass.PHONE,
    mix: str = "default",
) -> ContentionResult:
    """Run one multi-requester contention scenario.

    Args:
        seed: Master seed; the run is a pure function of it.
        n_requesters: K, the number of competing requester devices.
        families: Service family per requester
            (:data:`~repro.workloads.services.SERVICE_FAMILIES` keys),
            cycled when shorter than ``n_requesters``.
        arrival: Arrival process shared by every requester — each draws
            from its *own* RNG stream, so streams are independent.
            Defaults to Poisson at one session per 40 s.
        horizon: Observation window (simulated seconds).
        n_nodes: Total cluster size, requesters included.
        area: Square deployment area side (m).
        radio_range: Disc-radio range (m).
        requester_class: Device class of every requester (weak by
            default, the paper's motivating client).
        mix: Named helper-class mix
            (:data:`repro.experiments.config.FLEET_MIXES` key).

    Returns:
        The :class:`ContentionResult` with per-session outcomes.
    """
    # Lazy: keep repro.workloads importable without the experiment layer.
    from repro.experiments.config import FLEET_MIXES, ClusterConfig

    if n_requesters < 1:
        raise ValueError(f"need at least one requester, got {n_requesters}")
    if n_nodes < n_requesters:
        raise ValueError(
            f"cluster of {n_nodes} cannot host {n_requesters} requesters"
        )
    unknown = [f for f in families if f not in SERVICE_FAMILIES]
    if unknown:
        raise KeyError(
            f"unknown service family {unknown[0]!r}; "
            f"available: {', '.join(SERVICE_FAMILIES)}"
        )
    if arrival is None:
        arrival = PoissonProcess(rate=1.0 / 40.0)
    if mix not in FLEET_MIXES:
        raise KeyError(
            f"unknown fleet mix {mix!r}; available: {', '.join(FLEET_MIXES)}"
        )

    registry = RngRegistry(seed)
    config = ClusterConfig(
        n_nodes=n_nodes,
        requester_class=requester_class,
        mix=dict(FLEET_MIXES[mix]),
        area=area,
        radio_range=radio_range,
    )
    topology, providers, _nodes = build_contention_cluster(
        config, n_requesters, registry
    )

    family_of = {k: families[k % len(families)] for k in range(n_requesters)}
    events: List[Tuple[float, int, int]] = []
    for k in range(n_requesters):
        times = arrival.arrivals(registry.stream(f"arrivals:{requester_id(k)}"), horizon)
        events.extend((t, k, i) for i, t in enumerate(times))
    events.sort()

    result = ContentionResult(n_requesters=n_requesters, horizon=horizon)
    active: List[Tuple[float, object]] = []  # (end time, coalition)
    for t, k, ordinal in events:
        # Dissolve sessions whose duration has elapsed by now.
        still = []
        for end, coalition in active:
            if end <= t:
                release_coalition(coalition, providers, now=t)
            else:
                still.append((end, coalition))
        active = still

        family = family_of[k]
        service = build_service(
            family, requester=requester_id(k), name=f"{family}-{requester_id(k)}-{ordinal}"
        )
        outcome = negotiate(service, topology, providers, commit=True, now=t)
        result.sessions.append(
            SessionOutcome(
                requester=k,
                arrival=t,
                family=family,
                success=outcome.success,
                utility=outcome_utility(outcome),
                coalition_size=outcome.coalition.size,
                concurrent=len(active),
            )
        )
        if outcome.success:
            duration = max(task.duration for task in service.tasks)
            active.append((t + duration, outcome.coalition))
        else:
            # A failed negotiation must not strand partial reservations.
            release_coalition(outcome.coalition, providers, now=t)

    for _end, coalition in active:
        release_coalition(coalition, providers, now=horizon)
    return result

"""Session arrival processes, deterministic given their RNG stream.

Every process maps ``(rng, horizon)`` to a sorted tuple of arrival
times in ``[0, horizon)``. Processes hold no mutable state: the caller
passes a named :class:`numpy.random.Generator` (from the replication's
:class:`~repro.sim.rng.RngRegistry`), so the same seed always produces
the same arrival times — the property the bit-identical parallel==serial
guarantee of the experiment stack rests on. Every draw is consumed in a
fixed order for the same reason.

Three families:

* :class:`FixedIntervalProcess` — deterministic, evenly spaced sessions
  (a cron-like workload; consumes no randomness);
* :class:`PoissonProcess` — homogeneous Poisson arrivals via
  exponential inter-arrival gaps (memoryless users);
* :class:`InhomogeneousPoissonProcess` — time-varying rate via
  Lewis–Shedler thinning (candidate times from a homogeneous process at
  the rate ceiling, each kept with probability ``rate(t) / rate_max``),
  the standard construction for inhomogeneous Poisson point processes;
  :class:`BurstyProcess` specializes it to a square-wave rate (quiet
  baseline with periodic bursts).

:data:`ARRIVAL_FAMILIES` maps short names to constructors so the
declarative :class:`~repro.workloads.registry.ScenarioSpec` can select a
process without importing classes.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Tuple

import numpy as np


class ArrivalProcess(abc.ABC):
    """Generates session arrival times over a finite horizon."""

    @abc.abstractmethod
    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        """Sorted arrival times in ``[0, horizon)``.

        Args:
            rng: The stream supplying every random draw; equal states
                yield equal times.
            horizon: End of the observation window (seconds).
        """

    @staticmethod
    def _check_horizon(horizon: float) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")


class FixedIntervalProcess(ArrivalProcess):
    """One session every ``interval`` seconds, starting at ``offset``.

    Deterministic — the ``rng`` argument is accepted for interface
    uniformity and never drawn from.
    """

    def __init__(self, interval: float, offset: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.interval = float(interval)
        self.offset = float(offset)

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        times = []
        t = self.offset
        while t < horizon:
            times.append(t)
            t += self.interval
        return tuple(times)


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` sessions per second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        times = []
        t = float(rng.exponential(1.0 / self.rate))
        while t < horizon:
            times.append(t)
            t += float(rng.exponential(1.0 / self.rate))
        return tuple(times)


class InhomogeneousPoissonProcess(ArrivalProcess):
    """Time-varying Poisson arrivals via Lewis–Shedler thinning.

    Candidate times are drawn from a homogeneous process at the ceiling
    ``rate_max``; a candidate at ``t`` survives with probability
    ``rate(t) / rate_max``. The acceptance draw is consumed for *every*
    candidate (accepted or not), keeping the draw order — and therefore
    the determinism guarantee — independent of the rate function.

    Args:
        rate: Instantaneous rate function ``t -> λ(t)`` with
            ``0 <= λ(t) <= rate_max`` over the horizon.
        rate_max: A (tight, for efficiency) upper bound on ``rate``.
    """

    def __init__(self, rate: Callable[[float], float], rate_max: float) -> None:
        if rate_max <= 0:
            raise ValueError(f"rate_max must be positive, got {rate_max}")
        self.rate = rate
        self.rate_max = float(rate_max)

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        times = []
        t = float(rng.exponential(1.0 / self.rate_max))
        while t < horizon:
            lam = self.rate(t)
            if lam < 0 or lam > self.rate_max + 1e-12:
                raise ValueError(
                    f"rate({t:.3f}) = {lam} outside [0, rate_max={self.rate_max}]"
                )
            if float(rng.random()) < lam / self.rate_max:
                times.append(t)
            t += float(rng.exponential(1.0 / self.rate_max))
        return tuple(times)


class BurstyProcess(InhomogeneousPoissonProcess):
    """Square-wave rate: a quiet baseline with periodic bursts.

    Each period of ``period`` seconds opens with a burst window of
    ``burst_fraction * period`` seconds at ``burst_rate``; the rest of
    the period runs at ``base_rate``. Models synchronized demand spikes
    (everyone requests as the meeting starts), the regime where
    contention between requesters is harshest.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        period: float = 60.0,
        burst_fraction: float = 0.25,
    ) -> None:
        if base_rate < 0 or burst_rate <= 0:
            raise ValueError("rates must be positive (base_rate may be 0)")
        if burst_rate < base_rate:
            raise ValueError("burst_rate must be >= base_rate")
        if period <= 0 or not (0.0 < burst_fraction <= 1.0):
            raise ValueError("need period > 0 and burst_fraction in (0, 1]")
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.period = float(period)
        self.burst_fraction = float(burst_fraction)

        def rate(t: float) -> float:
            phase = (t % self.period) / self.period
            return self.burst_rate if phase < self.burst_fraction else self.base_rate

        super().__init__(rate, rate_max=self.burst_rate)


#: name → constructor, for declarative scenario specs. Parameters are
#: the constructor keywords (``interval``, ``rate``, ``base_rate`` ...).
ARRIVAL_FAMILIES: Dict[str, Callable[..., ArrivalProcess]] = {
    "fixed": FixedIntervalProcess,
    "poisson": PoissonProcess,
    "bursty": BurstyProcess,
}


def make_arrival_process(family: str, **params: float) -> ArrivalProcess:
    """Instantiate an arrival process by family name.

    Raises:
        KeyError: For an unknown family name (listing the valid ones).
    """
    try:
        factory = ARRIVAL_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown arrival family {family!r}; "
            f"available: {', '.join(ARRIVAL_FAMILIES)}"
        ) from None
    return factory(**params)

"""Session arrival processes, deterministic given their RNG stream.

Every process maps ``(rng, horizon)`` to a sorted tuple of arrival
times in ``[0, horizon)``. Processes hold no mutable state: the caller
passes a named :class:`numpy.random.Generator` (from the replication's
:class:`~repro.sim.rng.RngRegistry`), so the same seed always produces
the same arrival times — the property the bit-identical parallel==serial
guarantee of the experiment stack rests on. Every draw is consumed in a
fixed order for the same reason, and no process ever emits an event at
exactly ``t == horizon`` (the window is half-open).

The families:

* :class:`FixedIntervalProcess` — deterministic, evenly spaced sessions
  (a cron-like workload; consumes no randomness);
* :class:`PoissonProcess` — homogeneous Poisson arrivals via
  exponential inter-arrival gaps (memoryless users);
* :class:`InhomogeneousPoissonProcess` — arbitrary time-varying rate,
  described either by a plain callable with an explicit ceiling or by a
  :class:`~repro.workloads.rates.RateShape`. Two exact simulation
  methods: Lewis–Shedler **thinning** (candidates from a homogeneous
  process at the ceiling, kept with probability ``rate(t)/rate_max``)
  and the **conditional-density** construction (draw
  ``N ~ Poisson(Λ(horizon))``, then place the N points by inverting the
  cumulative intensity — the IPPP method, no ceiling required);
* :class:`BurstyProcess` / :class:`DiurnalProcess` /
  :class:`FlashCrowdProcess` — named specializations over the square
  wave, raised-cosine diurnal cycle, and flash-crowd rate shapes;
* :class:`TraceReplayProcess` — replays recorded arrival timestamps
  (optionally shifted, rescaled, and looped); consumes no randomness.

:data:`ARRIVAL_FAMILIES` maps short names to constructors so the
declarative :class:`~repro.workloads.registry.ScenarioSpec` can select a
process without importing classes.
"""

from __future__ import annotations

import abc
from typing import Callable, Dict, Optional, Sequence, Tuple, Union

import numpy as np

from repro.workloads.rates import (
    DiurnalRate,
    FlashCrowdRate,
    RateShape,
    invert_cumulative,
)


class ArrivalProcess(abc.ABC):
    """Generates session arrival times over a finite horizon."""

    @abc.abstractmethod
    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        """Sorted arrival times in ``[0, horizon)``.

        Args:
            rng: The stream supplying every random draw; equal states
                yield equal times.
            horizon: End of the observation window (seconds). The
                window is half-open: no event is ever emitted at
                exactly ``t == horizon``.
        """

    @staticmethod
    def _check_horizon(horizon: float) -> None:
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")


class FixedIntervalProcess(ArrivalProcess):
    """One session every ``interval`` seconds, starting at ``offset``.

    Deterministic — the ``rng`` argument is accepted for interface
    uniformity and never drawn from.
    """

    def __init__(self, interval: float, offset: float = 0.0) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        self.interval = float(interval)
        self.offset = float(offset)

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        times = []
        t = self.offset
        while t < horizon:
            times.append(t)
            t += self.interval
        return tuple(times)


class PoissonProcess(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` sessions per second."""

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError(f"rate must be positive, got {rate}")
        self.rate = float(rate)

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        times = []
        t = float(rng.exponential(1.0 / self.rate))
        while t < horizon:
            times.append(t)
            t += float(rng.exponential(1.0 / self.rate))
        return tuple(times)


class InhomogeneousPoissonProcess(ArrivalProcess):
    """Time-varying Poisson arrivals from an arbitrary rate function.

    The rate is either a plain callable ``t -> λ(t)`` with an explicit
    ceiling ``rate_max``, or a :class:`~repro.workloads.rates.RateShape`
    (ceiling inferred from :meth:`~repro.workloads.rates.RateShape.bound`,
    cumulative intensity available for the conditional-density method).

    Both methods are exact simulations of the inhomogeneous Poisson
    point process and both are seed-deterministic — draws are consumed
    in a fixed order that depends only on the drawn values, never on
    wall-clock or call history:

    * ``"thinning"`` (Lewis–Shedler, the default): candidate times from
      a homogeneous process at ``rate_max``; a candidate at ``t``
      survives with probability ``rate(t) / rate_max``. The acceptance
      draw is consumed for *every* candidate (accepted or not), keeping
      the draw order independent of the rate function.
    * ``"inversion"`` (conditional-density, :class:`RateShape` only):
      ``N ~ Poisson(Λ(horizon))``, then ``N`` uniforms mapped through
      ``Λ⁻¹`` and sorted — one draw per *emitted* event regardless of
      how loose any ceiling would be, the IPPP construction for rates
      with a known cumulative.

    A ceiling of exactly ``0`` (a shape that is zero everywhere, e.g.
    an empty trace histogram) is a valid degenerate process: it emits
    nothing and consumes no draws.

    Args:
        rate: Instantaneous rate function with ``0 <= λ(t) <= rate_max``
            over the horizon, or a :class:`RateShape`.
        rate_max: A (tight, for efficiency) upper bound on ``rate``.
            Required for plain callables; defaults to the shape's own
            bound and may not be below it.
        method: ``"thinning"`` or ``"inversion"``.
    """

    def __init__(
        self,
        rate: Union[RateShape, Callable[[float], float]],
        rate_max: Optional[float] = None,
        method: str = "thinning",
    ) -> None:
        if method not in ("thinning", "inversion"):
            raise ValueError(
                f"unknown method {method!r}; use 'thinning' or 'inversion'"
            )
        self.shape: Optional[RateShape] = rate if isinstance(rate, RateShape) else None
        if rate_max is None:
            if self.shape is None:
                raise ValueError("rate_max is required for a plain-callable rate")
            rate_max = self.shape.bound()
        if rate_max < 0:
            raise ValueError(f"rate_max must be >= 0, got {rate_max}")
        if self.shape is not None and rate_max < self.shape.bound():
            raise ValueError(
                f"rate_max {rate_max} is below the shape's bound "
                f"{self.shape.bound()}"
            )
        if method == "inversion" and self.shape is None:
            raise ValueError(
                "method='inversion' needs a RateShape (cumulative intensity)"
            )
        self.rate = rate
        self.rate_max = float(rate_max)
        self.method = method

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        if self.method == "inversion":
            return self._arrivals_inversion(rng, horizon)
        return self._arrivals_thinning(rng, horizon)

    def _arrivals_thinning(
        self, rng: np.random.Generator, horizon: float
    ) -> Tuple[float, ...]:
        if self.rate_max == 0.0:
            return ()
        times = []
        t = float(rng.exponential(1.0 / self.rate_max))
        while t < horizon:
            lam = self.rate(t)
            if lam < 0 or lam > self.rate_max + 1e-12:
                raise ValueError(
                    f"rate({t:.3f}) = {lam} outside [0, rate_max={self.rate_max}]"
                )
            if float(rng.random()) < lam / self.rate_max:
                times.append(t)
            t += float(rng.exponential(1.0 / self.rate_max))
        return tuple(times)

    def _arrivals_inversion(
        self, rng: np.random.Generator, horizon: float
    ) -> Tuple[float, ...]:
        assert self.shape is not None  # guaranteed by __init__
        total = self.shape.cumulative(horizon)
        if total <= 0.0:
            return ()
        n = int(rng.poisson(total))
        if n == 0:
            return ()
        targets = np.sort(rng.random(n)) * total
        times: list = []
        for target in targets:
            t = invert_cumulative(self.shape, float(target), horizon)
            # Bisection works to ~60-bit precision; two guards keep the
            # output contract exact anyway: strictly increasing (nudge a
            # tie up one ulp) and strictly inside the half-open window.
            if times and t <= times[-1]:
                t = float(np.nextafter(times[-1], np.inf))
            if t >= horizon:
                break
            times.append(t)
        return tuple(times)


class BurstyProcess(InhomogeneousPoissonProcess):
    """Square-wave rate: a quiet baseline with periodic bursts.

    Each period of ``period`` seconds opens with a burst window of
    ``burst_fraction * period`` seconds at ``burst_rate``; the rest of
    the period runs at ``base_rate``. Models synchronized demand spikes
    (everyone requests as the meeting starts), the regime where
    contention between requesters is harshest.
    """

    def __init__(
        self,
        base_rate: float,
        burst_rate: float,
        period: float = 60.0,
        burst_fraction: float = 0.25,
    ) -> None:
        if base_rate < 0 or burst_rate <= 0:
            raise ValueError("rates must be positive (base_rate may be 0)")
        if burst_rate < base_rate:
            raise ValueError("burst_rate must be >= base_rate")
        if period <= 0 or not (0.0 < burst_fraction <= 1.0):
            raise ValueError("need period > 0 and burst_fraction in (0, 1]")
        self.base_rate = float(base_rate)
        self.burst_rate = float(burst_rate)
        self.period = float(period)
        self.burst_fraction = float(burst_fraction)

        def rate(t: float) -> float:
            phase = (t % self.period) / self.period
            return self.burst_rate if phase < self.burst_fraction else self.base_rate

        super().__init__(rate, rate_max=self.burst_rate)


class DiurnalProcess(InhomogeneousPoissonProcess):
    """Raised-cosine day/night arrival cycle (diurnal traffic).

    A named :class:`InhomogeneousPoissonProcess` over
    :class:`~repro.workloads.rates.DiurnalRate`: the rate swings between
    ``base_rate`` at the trough (``t = phase``) and ``peak_rate`` at the
    crest half a period later, averaging ``(base + peak) / 2`` over
    whole periods. Simulated horizons usually compress the "day" far
    below 86400 s so one run spans whole cycles.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        period: float,
        phase: float = 0.0,
        method: str = "thinning",
    ) -> None:
        super().__init__(
            DiurnalRate(base_rate, peak_rate, period, phase), method=method
        )


class FlashCrowdProcess(InhomogeneousPoissonProcess):
    """Baseline traffic hit by one flash crowd.

    A named :class:`InhomogeneousPoissonProcess` over
    :class:`~repro.workloads.rates.FlashCrowdRate`: baseline
    ``base_rate`` until ``onset``, a linear ramp to ``peak_rate`` over
    ``rise`` seconds, then exponential relaxation with time constant
    ``decay`` — sudden onset, slow dissipation, the empirical flash-
    crowd signature.
    """

    def __init__(
        self,
        base_rate: float,
        peak_rate: float,
        onset: float,
        rise: float = 10.0,
        decay: float = 30.0,
        method: str = "thinning",
    ) -> None:
        super().__init__(
            FlashCrowdRate(base_rate, peak_rate, onset, rise, decay), method=method
        )


class TraceReplayProcess(ArrivalProcess):
    """Replays recorded arrival timestamps.

    The trace is normalized once at construction: timestamps are
    scaled by ``time_scale``, shifted by ``offset``, sorted, and exact
    duplicates collapsed (the output contract is strictly increasing
    times). Replay is fully deterministic — the ``rng`` argument is
    never drawn from — and clipped to ``[0, horizon)`` like every other
    process, so a trace recorded over a longer window simply truncates.

    Args:
        times: Recorded arrival timestamps (seconds, ``>= 0``).
        offset: Added to every (scaled) timestamp.
        time_scale: Multiplier applied to the raw timestamps —
            ``0.5`` replays the trace twice as fast.
        loop_period: If given, the (post-scale) trace repeats every
            ``loop_period`` seconds until the horizon; must exceed the
            last scaled timestamp so copies never interleave.
    """

    def __init__(
        self,
        times: Sequence[float],
        offset: float = 0.0,
        time_scale: float = 1.0,
        loop_period: Optional[float] = None,
    ) -> None:
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        if offset < 0:
            raise ValueError(f"offset must be non-negative, got {offset}")
        scaled = sorted(float(t) * time_scale for t in times)
        if scaled and scaled[0] < 0:
            raise ValueError(f"trace timestamps must be >= 0, got {scaled[0]}")
        deduped = []
        for t in scaled:
            if not deduped or t > deduped[-1]:
                deduped.append(t)
        if loop_period is not None:
            if not deduped:
                raise ValueError("cannot loop an empty trace")
            if loop_period <= deduped[-1]:
                raise ValueError(
                    f"loop_period {loop_period} must exceed the last scaled "
                    f"timestamp {deduped[-1]}"
                )
        self.times = tuple(deduped)
        self.offset = float(offset)
        self.time_scale = float(time_scale)
        self.loop_period = None if loop_period is None else float(loop_period)

    def arrivals(self, rng: np.random.Generator, horizon: float) -> Tuple[float, ...]:
        self._check_horizon(horizon)
        out: list = []
        base = self.offset
        while True:
            emitted = False
            for t in self.times:
                at = base + t
                if at >= horizon:
                    break
                # Adding offsets can round two distinct trace times onto
                # the same float; collapse those like construction-time
                # duplicates to keep the output strictly increasing.
                if not out or at > out[-1]:
                    out.append(at)
                emitted = True
            if self.loop_period is None or not emitted:
                break
            base += self.loop_period
        return tuple(out)


#: name → constructor, for declarative scenario specs. Parameters are
#: the constructor keywords (``interval``, ``rate``, ``base_rate``,
#: ``peak_rate``, ``times`` ...).
ARRIVAL_FAMILIES: Dict[str, Callable[..., ArrivalProcess]] = {
    "fixed": FixedIntervalProcess,
    "poisson": PoissonProcess,
    "bursty": BurstyProcess,
    "diurnal": DiurnalProcess,
    "flash-crowd": FlashCrowdProcess,
    "trace": TraceReplayProcess,
}


def make_arrival_process(family: str, **params) -> ArrivalProcess:
    """Instantiate an arrival process by family name.

    Raises:
        KeyError: For an unknown family name (listing the valid ones).
    """
    try:
        factory = ARRIVAL_FAMILIES[family]
    except KeyError:
        raise KeyError(
            f"unknown arrival family {family!r}; "
            f"available: {', '.join(ARRIVAL_FAMILIES)}"
        ) from None
    return factory(**params)

"""Declarative scenario registry: name a scenario instead of coding it.

A :class:`ScenarioSpec` is a frozen, purely-declarative description of
one contention scenario — service families, requester count, arrival
process, cluster geometry, horizon — holding only primitive values, so
specs print cleanly, round-trip through ``dataclasses.replace`` for
sweeps (E15 sweeps ``n_requesters``, E16 the arrival rate), and never
pull the experiment layer in at import time.

:data:`SCENARIOS` is the named registry the suites and the CLI
(``python -m repro.experiments --list-scenarios``) read; new scenarios
register with :func:`register` instead of growing hand-built suite
functions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from repro.resources.node import NodeClass
from repro.sessions.policy import SessionPolicy
from repro.workloads.arrivals import ARRIVAL_FAMILIES, ArrivalProcess, make_arrival_process
from repro.workloads.contention import ContentionConfig, ContentionResult, run_contention
from repro.workloads.services import SERVICE_FAMILIES


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, seedable contention scenario.

    Attributes:
        name: Registry key (kebab-case).
        description: One line for ``--list-scenarios``.
        families: Service family per requester
            (:data:`~repro.workloads.services.SERVICE_FAMILIES` keys),
            cycled when there are more requesters than entries.
        n_requesters: K, the number of competing requesters.
        arrival: Arrival-process family
            (:data:`~repro.workloads.arrivals.ARRIVAL_FAMILIES` key).
        arrival_params: Constructor keywords of the arrival process, as
            a tuple of ``(name, value)`` pairs (kept hashable so specs
            stay frozen and ``replace``-able; values are floats except
            the ``trace`` family's ``times``, a tuple of floats).
        horizon: Observation window (simulated seconds).
        n_nodes: Total cluster size, requesters included.
        area: Square deployment area side (m).
        radio_range: Disc-radio range (m).
        requester_class: Device class of every requester.
        mix: Named helper-class mix
            (:data:`repro.experiments.config.FLEET_MIXES` key).
        sessions: Streaming-session lifecycle policy (see
            :class:`~repro.sessions.SessionPolicy`); the default keeps
            the scenario admission-only.
    """

    name: str
    description: str
    families: Tuple[str, ...]
    n_requesters: int = 2
    arrival: str = "poisson"
    arrival_params: Tuple[Tuple[str, Any], ...] = (("rate", 1.0 / 40.0),)
    horizon: float = 240.0
    n_nodes: int = 16
    area: float = 120.0
    radio_range: float = 100.0
    requester_class: NodeClass = NodeClass.PHONE
    mix: str = "default"
    sessions: SessionPolicy = SessionPolicy()

    def __post_init__(self) -> None:
        if not self.families:
            raise ValueError(f"scenario {self.name!r} names no service families")
        unknown = [f for f in self.families if f not in SERVICE_FAMILIES]
        if unknown:
            raise ValueError(
                f"scenario {self.name!r}: unknown service family {unknown[0]!r}"
            )
        if self.arrival not in ARRIVAL_FAMILIES:
            raise ValueError(
                f"scenario {self.name!r}: unknown arrival family {self.arrival!r}"
            )
        if self.n_requesters < 1 or self.n_nodes < self.n_requesters:
            raise ValueError(
                f"scenario {self.name!r}: {self.n_requesters} requesters do not "
                f"fit a {self.n_nodes}-node cluster"
            )
        # Lazy, like run_contention's config import: keeps the layering
        # acyclic while still failing at construction, not mid-suite.
        from repro.experiments.config import FLEET_MIXES

        if self.mix not in FLEET_MIXES:
            raise ValueError(
                f"scenario {self.name!r}: unknown fleet mix {self.mix!r}"
            )

    def arrival_process(self) -> ArrivalProcess:
        """Instantiate the spec's arrival process."""
        return make_arrival_process(self.arrival, **dict(self.arrival_params))

    def replace(self, **changes) -> "ScenarioSpec":
        """A copy with fields changed (sweep helper)."""
        return dataclasses.replace(self, **changes)

    def contention_config(self) -> ContentionConfig:
        """The :class:`~repro.workloads.contention.ContentionConfig`
        this spec denotes (arrival process instantiated)."""
        return ContentionConfig(
            n_requesters=self.n_requesters,
            families=self.families,
            arrival=self.arrival_process(),
            horizon=self.horizon,
            n_nodes=self.n_nodes,
            area=self.area,
            radio_range=self.radio_range,
            requester_class=self.requester_class,
            mix=self.mix,
            sessions=self.sessions,
        )

    def run(self, seed: int) -> ContentionResult:
        """Run the scenario; a pure function of ``seed``."""
        return run_contention(seed, self.contention_config())

    def metrics_run(self, seed: int) -> Dict[str, float]:
        """``run(seed).metrics()`` — the suites' replication callable."""
        return self.run(seed).metrics()


#: The named scenario registry, in registration order.
SCENARIOS: Dict[str, ScenarioSpec] = {}


def register(spec: ScenarioSpec) -> ScenarioSpec:
    """Add a spec to :data:`SCENARIOS` (duplicate names are a bug)."""
    if spec.name in SCENARIOS:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    SCENARIOS[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look up a registered spec by name.

    Raises:
        KeyError: For an unknown name (listing the valid ones).
    """
    try:
        return SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(SCENARIOS)}"
        ) from None


def list_scenarios() -> List[ScenarioSpec]:
    """Registered specs, in registration order."""
    return list(SCENARIOS.values())


# --------------------------------------------------------------------------
# Built-in scenarios
# --------------------------------------------------------------------------

register(ScenarioSpec(
    name="solo-movie",
    description="1 movie requester, Poisson arrivals — the no-contention baseline",
    families=("movie",),
    n_requesters=1,
    n_nodes=12,
))

register(ScenarioSpec(
    name="duet-av",
    description="movie + conference requesters sharing a 16-node cluster",
    families=("movie", "conference"),
    n_requesters=2,
))

register(ScenarioSpec(
    name="contention-mix",
    description="movie/speech/sensor-fusion/navigation requesters on 20 nodes "
                "(E15 sweeps its requester count)",
    families=("movie", "speech", "sensor-fusion", "navigation"),
    n_requesters=4,
    n_nodes=20,
    area=130.0,
    radio_range=110.0,
    mix="contention",
))

register(ScenarioSpec(
    name="saturation-trio",
    description="3 mixed requesters on 14 nodes (E16 sweeps its arrival rate)",
    families=("speech", "movie", "navigation"),
    n_requesters=3,
    n_nodes=14,
))

register(ScenarioSpec(
    name="burst-octet",
    description="8 mixed requesters with bursty synchronized arrivals on 24 nodes",
    families=("movie", "speech", "sensor-fusion", "navigation"),
    n_requesters=8,
    n_nodes=24,
    area=140.0,
    radio_range=120.0,
    mix="contention",
    arrival="bursty",
    arrival_params=(
        ("base_rate", 1.0 / 120.0),
        ("burst_rate", 1.0 / 12.0),
        ("period", 80.0),
        ("burst_fraction", 0.25),
    ),
))

register(ScenarioSpec(
    name="new-services-trio",
    description="the three new families (speech, sensor-fusion, navigation) "
                "contending on 16 nodes",
    families=("speech", "sensor-fusion", "navigation"),
    n_requesters=3,
))

#: The streaming churn policy the realistic-arrival scenarios share
#: with ``streaming-mix`` (crash hazard 1/200 s, 30 J/s upkeep drain),
#: so E21's arrival-shape comparison changes nothing but the arrivals.
_STREAMING_POLICY = SessionPolicy(
    operate=True,
    keepalive=5.0,
    max_renegotiations=2,
    failure_rate=1.0 / 200.0,
    drain=30.0,
)

register(ScenarioSpec(
    name="streaming-mix",
    description="4 mixed requesters streaming under crash + battery churn "
                "(E20 sweeps its mobility, arrival rate and session length)",
    families=("movie", "speech", "sensor-fusion", "navigation"),
    n_requesters=4,
    n_nodes=20,
    area=130.0,
    radio_range=110.0,
    mix="contention",
    sessions=_STREAMING_POLICY,
))

register(ScenarioSpec(
    name="diurnal-mix",
    description="4 mixed requesters on a compressed diurnal arrival cycle, "
                "streaming under churn (E21 sweeps shape × requester count)",
    families=("movie", "speech", "sensor-fusion", "navigation"),
    n_requesters=4,
    n_nodes=20,
    area=130.0,
    radio_range=110.0,
    mix="contention",
    arrival="diurnal",
    arrival_params=(
        ("base_rate", 1.0 / 240.0),
        ("peak_rate", 1.0 / 30.0),
        ("period", 240.0),
        ("phase", 0.0),
    ),
    sessions=_STREAMING_POLICY,
))

register(ScenarioSpec(
    name="flash-crowd",
    description="4 mixed requesters hit by a flash crowd (linear onset at "
                "t=80 s, exponential decay), streaming under churn",
    families=("movie", "speech", "sensor-fusion", "navigation"),
    n_requesters=4,
    n_nodes=20,
    area=130.0,
    radio_range=110.0,
    mix="contention",
    arrival="flash-crowd",
    arrival_params=(
        ("base_rate", 1.0 / 240.0),
        ("peak_rate", 1.0 / 8.0),
        ("onset", 80.0),
        ("rise", 10.0),
        ("decay", 30.0),
    ),
    sessions=_STREAMING_POLICY,
))

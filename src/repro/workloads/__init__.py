"""Scenario generation: service families, arrivals, contention suites.

The paper motivates cooperation with three concrete services (movie
playback, surveillance, conferencing), each requested by a *single*
weak device. This package opens the workload axis the ROADMAP asks
for — "new workloads beyond the paper's three services; multi-requester
contention scenarios" — as a subsystem of its own:

* :mod:`repro.workloads.services` — three **new** calibrated service
  families (speech recognition, sensor-fusion telemetry, map/navigation
  rendering) plus a name → builder registry spanning the paper's
  original three;
* :mod:`repro.workloads.arrivals` — deterministic-given-seed session
  arrival processes (fixed interval, homogeneous Poisson, inhomogeneous
  Poisson over arbitrary rate functions via thinning or the
  conditional-density construction — bursty, diurnal, flash-crowd — and
  trace replay);
* :mod:`repro.workloads.rates` — composable deterministic rate shapes
  (diurnal cycle, flash crowd, piecewise/trace-derived histograms) with
  exact bounds and cumulative intensities;
* :mod:`repro.workloads.contention` — K self-interested requesters with
  independent arrival streams competing for one cluster's providers;
  with a :class:`~repro.sessions.SessionPolicy` that sets
  ``operate=True`` the admitted coalitions' operation phases run
  *inside* the contention window (crashes, battery drain, in-place
  renegotiation — see :mod:`repro.sessions`);
* :mod:`repro.workloads.registry` — the declarative
  :class:`~repro.workloads.registry.ScenarioSpec` registry that suites
  and the CLI (``--list-scenarios``) name scenarios through instead of
  re-coding them.

The experiment suites E15–E17 (:mod:`repro.experiments.workload_suites`)
are built entirely on this package; ``docs/workloads.md`` documents the
calibration targets and the contention model.

Layering: this package sits beside :mod:`repro.services` and *below*
:mod:`repro.experiments` — the few helpers it borrows from
:mod:`repro.experiments.scenario` are imported lazily inside functions,
so importing :mod:`repro.workloads` never drags the experiment layer in
(and the reverse import from the suites stays acyclic).
"""

from repro.workloads import arrivals, contention, rates, registry, services
from repro.workloads.arrivals import (
    ARRIVAL_FAMILIES,
    ArrivalProcess,
    BurstyProcess,
    DiurnalProcess,
    FixedIntervalProcess,
    FlashCrowdProcess,
    InhomogeneousPoissonProcess,
    PoissonProcess,
    TraceReplayProcess,
)
from repro.workloads.rates import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    PiecewiseConstantRate,
    RateShape,
)
from repro.workloads.contention import (
    ContentionConfig,
    ContentionResult,
    SessionOutcome,
    run_contention,
)
from repro.workloads.registry import (
    SCENARIOS,
    ScenarioSpec,
    get_scenario,
    list_scenarios,
    register,
)
from repro.workloads.services import (
    NEW_SERVICE_FAMILIES,
    SERVICE_FAMILIES,
    build_service,
    navigation_service,
    sensor_fusion_service,
    speech_recognition_service,
)

__all__ = [
    "arrivals",
    "contention",
    "rates",
    "registry",
    "services",
    "ARRIVAL_FAMILIES",
    "ArrivalProcess",
    "BurstyProcess",
    "DiurnalProcess",
    "FixedIntervalProcess",
    "FlashCrowdProcess",
    "InhomogeneousPoissonProcess",
    "PoissonProcess",
    "TraceReplayProcess",
    "ConstantRate",
    "DiurnalRate",
    "FlashCrowdRate",
    "PiecewiseConstantRate",
    "RateShape",
    "ContentionConfig",
    "ContentionResult",
    "SessionOutcome",
    "run_contention",
    "SCENARIOS",
    "ScenarioSpec",
    "get_scenario",
    "list_scenarios",
    "register",
    "NEW_SERVICE_FAMILIES",
    "SERVICE_FAMILIES",
    "build_service",
    "navigation_service",
    "sensor_fusion_service",
    "speech_recognition_service",
]

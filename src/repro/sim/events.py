"""Event records for the discrete-event engine.

An :class:`Event` couples a firing time with a callback. Events carry a
:class:`Priority` so that logically-ordered activities happening at the same
simulated instant fire in a defined order (e.g. message deliveries before
timers), and a monotonically increasing sequence number breaks any remaining
ties, making runs fully deterministic.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Optional


class Priority(enum.IntEnum):
    """Firing order among events scheduled at the same simulated time.

    Lower numeric value fires first. The defaults are chosen so that
    network deliveries are visible to processes woken at the same instant.
    """

    DELIVERY = 0
    """Message deliveries / external stimuli."""

    NORMAL = 1
    """Ordinary callbacks and process wakeups."""

    TIMER = 2
    """Timeouts and watchdogs: fire after same-time deliveries."""

    MONITOR = 3
    """Probes and statistics sampling: observe the settled state."""


@dataclass(order=True)
class Event:
    """A scheduled callback, ordered by ``(time, priority, seq)``.

    Attributes:
        time: Simulated time at which the callback fires.
        priority: Tie-break class for same-time events.
        seq: Engine-assigned sequence number; final tie-break (FIFO).
        callback: Called as ``callback(time)`` when the event fires.
        cancelled: When ``True`` the engine silently discards the event.
    """

    time: float
    priority: int
    seq: int
    callback: Callable[[float], Any] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    fired: bool = field(default=False, compare=False)


class EventHandle:
    """Cancellation token returned by :meth:`repro.sim.Engine.schedule`.

    Cancelling is O(1): the underlying event is flagged and skipped when it
    reaches the head of the queue (lazy deletion). The engine passes an
    ``on_cancel`` callback so its live pending-event counter stays exact
    without scanning the heap.
    """

    __slots__ = ("_event", "_on_cancel")

    def __init__(
        self, event: Event, on_cancel: Optional[Callable[[], None]] = None
    ) -> None:
        self._event = event
        self._on_cancel = on_cancel

    @property
    def time(self) -> float:
        """Scheduled firing time."""
        return self._event.time

    @property
    def cancelled(self) -> bool:
        """Whether :meth:`cancel` has been called."""
        return self._event.cancelled

    def cancel(self) -> bool:
        """Cancel the event. Returns ``True`` if it had not already fired
        or been cancelled."""
        if self._event.cancelled or self._event.fired:
            return False
        self._event.cancelled = True
        if self._on_cancel is not None:
            self._on_cancel()
        return True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<EventHandle t={self.time} {state}>"

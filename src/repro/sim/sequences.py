"""Resettable process-wide id sequences.

Protocol objects — tasks, messages, negotiation sessions, reservations —
draw human-readable unique ids from process-wide counters. Left alone,
those counters make results depend on process *history*: the same seeded
replication can return different ids (and, through id-based ordering,
occasionally different outcomes) depending on what ran before it in the
same process.

The replication driver therefore calls :func:`reset_all_sequences`
before every replication, making each run a pure function of its seed.
That invariant is what the parallel runner's bit-identical guarantee
builds on: a forked worker and the serial loop both start every
replication from freshly rewound sequences, so it cannot matter where —
or after what — a replication executes.
"""

from __future__ import annotations

import itertools
from typing import List


class Sequence:
    """A process-wide id counter that :func:`reset_all_sequences` rewinds."""

    _registry: List["Sequence"] = []

    def __init__(self, start: int = 1) -> None:
        self._start = start
        self._counter = itertools.count(start)
        Sequence._registry.append(self)

    def next(self) -> int:
        """The next id in the sequence."""
        return next(self._counter)

    def reset(self) -> None:
        """Rewind to the start value."""
        self._counter = itertools.count(self._start)


def reset_all_sequences() -> None:
    """Rewind every id sequence, isolating the next run from history."""
    for sequence in Sequence._registry:
        sequence.reset()

"""Discrete-event simulation kernel.

This subpackage is the substrate everything else runs on: a deterministic,
seedable discrete-event engine with coroutine-style processes, named RNG
streams, structured tracing, and time-series monitors.

The kernel is deliberately small and dependency-free. Determinism is a hard
requirement for a reproduction: two runs with the same seed must produce
identical traces, so simultaneous events are totally ordered by
``(time, priority, sequence number)``.

Quick example::

    from repro.sim import Engine

    eng = Engine(seed=42)

    def hello(now):
        print(f"hello at t={now}")

    eng.schedule(5.0, hello)
    eng.run(until=10.0)
"""

from repro.sim.engine import Engine
from repro.sim.events import Event, EventHandle, Priority
from repro.sim.process import Process, Timeout, Waiter, sleep
from repro.sim.rng import RngRegistry
from repro.sim.trace import TraceRecord, Tracer
from repro.sim.monitor import Monitor, TimeSeries

__all__ = [
    "Engine",
    "Event",
    "EventHandle",
    "Priority",
    "Process",
    "Timeout",
    "Waiter",
    "sleep",
    "RngRegistry",
    "TraceRecord",
    "Tracer",
    "Monitor",
    "TimeSeries",
]

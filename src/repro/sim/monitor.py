"""Time-series probes for simulation state.

:class:`TimeSeries` is an append-only ``(time, value)`` sequence with
step-function semantics (the value holds until the next sample), plus the
time-weighted statistics experiments need. :class:`Monitor` periodically
samples a callable on the engine clock.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.sim.engine import Engine
from repro.sim.events import Priority


class TimeSeries:
    """Append-only time series with step-function semantics.

    Samples must be appended in non-decreasing time order.
    """

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._times: list[float] = []
        self._values: list[float] = []

    def append(self, time: float, value: float) -> None:
        """Add a sample; ``time`` must not precede the previous sample."""
        if self._times and time < self._times[-1]:
            raise ValueError(
                f"non-monotonic sample: t={time} after t={self._times[-1]}"
            )
        self._times.append(float(time))
        self._values.append(float(value))

    @property
    def times(self) -> Sequence[float]:
        return tuple(self._times)

    @property
    def values(self) -> Sequence[float]:
        return tuple(self._values)

    def __len__(self) -> int:
        return len(self._times)

    def last(self) -> float:
        """Most recent value."""
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return self._values[-1]

    def value_at(self, time: float) -> float:
        """Step-function evaluation: the last sample at or before ``time``."""
        if not self._times:
            raise ValueError(f"time series {self.name!r} is empty")
        idx = int(np.searchsorted(self._times, time, side="right")) - 1
        if idx < 0:
            raise ValueError(f"no sample at or before t={time}")
        return self._values[idx]

    def time_average(self, until: Optional[float] = None) -> float:
        """Time-weighted mean over [first sample, ``until``].

        With a single sample the average is that sample's value.
        """
        if not self._times:
            raise ValueError(f"time series {self.name!r} is empty")
        t = np.asarray(self._times)
        v = np.asarray(self._values)
        end = float(until) if until is not None else float(t[-1])
        if end < t[0]:
            raise ValueError("'until' precedes the first sample")
        if end == t[0] or len(t) == 1:
            return float(v[0])
        # Durations each value holds, capped at `end`.
        bounds = np.append(t, end)
        holds = np.clip(np.diff(bounds), 0.0, None)
        keep = bounds[:-1] <= end
        total = holds[keep].sum()
        if total == 0.0:
            return float(v[-1])
        return float(np.dot(holds[keep], v[keep]) / total)

    def max(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.max(self._values))

    def min(self) -> float:
        if not self._values:
            raise ValueError(f"time series {self.name!r} is empty")
        return float(np.min(self._values))


class Monitor:
    """Samples ``probe()`` every ``period`` on an engine, into a TimeSeries.

    Sampling runs at :class:`~repro.sim.events.Priority.MONITOR` so it sees
    the settled state at each instant.
    """

    def __init__(
        self,
        engine: Engine,
        probe: Callable[[], float],
        period: float,
        name: str = "",
        start: float = 0.0,
    ) -> None:
        if period <= 0:
            raise ValueError("monitor period must be positive")
        self.engine = engine
        self.probe = probe
        self.period = period
        self.series = TimeSeries(name=name)
        self._stopped = False
        engine.schedule(max(0.0, start - engine.now), self._tick, priority=Priority.MONITOR)

    def _tick(self, now: float) -> None:
        if self._stopped:
            return
        self.series.append(now, float(self.probe()))
        self.engine.schedule(self.period, self._tick, priority=Priority.MONITOR)

    def stop(self) -> None:
        """Stop future sampling (already-queued tick is discarded on fire)."""
        self._stopped = True

"""Structured event tracing.

Components emit :class:`TraceRecord` entries through a shared
:class:`Tracer`. Traces serve three purposes: debugging, test assertions
(e.g. "exactly one AWARD message per task"), and feeding the metrics layer
without coupling components to it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One trace entry.

    Attributes:
        time: Simulated time of the event.
        category: Coarse grouping, e.g. ``"net"``, ``"negotiation"``.
        event: Event name within the category, e.g. ``"broadcast"``.
        data: Free-form payload (kept small; values should be printable).
    """

    time: float
    category: str
    event: str
    data: dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        kv = " ".join(f"{k}={v}" for k, v in self.data.items())
        return f"[{self.time:12.6f}] {self.category}/{self.event} {kv}".rstrip()


class Tracer:
    """Collects :class:`TraceRecord` entries, optionally filtered.

    Args:
        enabled: When ``False`` all emissions are dropped (zero overhead
            beyond one attribute check).
        categories: When given, only these categories are recorded.
        sink: Optional callable invoked with each record as it is emitted
            (e.g. ``print`` for live debugging).
    """

    def __init__(
        self,
        enabled: bool = True,
        categories: Optional[set[str]] = None,
        sink: Optional[Callable[[TraceRecord], None]] = None,
    ) -> None:
        self.enabled = enabled
        self.categories = categories
        self.sink = sink
        self.records: list[TraceRecord] = []

    def emit(self, time: float, category: str, event: str, **data: Any) -> None:
        """Record one trace entry (subject to filters)."""
        if not self.enabled:
            return
        if self.categories is not None and category not in self.categories:
            return
        record = TraceRecord(time=time, category=category, event=event, data=data)
        self.records.append(record)
        if self.sink is not None:
            self.sink(record)

    def filter(
        self, category: Optional[str] = None, event: Optional[str] = None
    ) -> Iterator[TraceRecord]:
        """Iterate records matching the given category and/or event name."""
        for rec in self.records:
            if category is not None and rec.category != category:
                continue
            if event is not None and rec.event != event:
                continue
            yield rec

    def count(self, category: Optional[str] = None, event: Optional[str] = None) -> int:
        """Number of records matching the filter."""
        return sum(1 for _ in self.filter(category, event))

    def clear(self) -> None:
        """Drop all collected records."""
        self.records.clear()

    def __len__(self) -> int:
        return len(self.records)

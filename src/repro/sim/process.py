"""Coroutine-style simulated processes.

A :class:`Process` wraps a Python generator. The generator ``yield``\\ s
*wait requests* — :class:`Timeout` to sleep for simulated time, or
:class:`Waiter` to block until another component signals it — and the
process scheduler resumes it when the request completes. This gives agent
code a natural sequential style on top of the event-driven engine::

    def worker(proc):
        yield Timeout(1.0)            # sleep 1 simulated second
        reply = yield some_waiter     # block until triggered
        ...

    Process(engine, worker)
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Optional

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, Priority


class Timeout:
    """Wait request: resume the process after ``delay`` simulated time."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if not (delay >= 0.0):
            raise SimulationError(f"Timeout delay must be >= 0, got {delay!r}")
        self.delay = float(delay)


def sleep(delay: float) -> Timeout:
    """Alias for ``Timeout(delay)`` reading naturally in process bodies."""
    return Timeout(delay)


class Waiter:
    """One-shot synchronization point between a process and the outside.

    A process yields the waiter to block; any other code calls
    :meth:`trigger` (optionally with a value) to resume it. Triggering
    before the process waits is allowed — the value is latched and the
    process resumes immediately when it does wait.
    """

    __slots__ = ("_engine", "_process", "_value", "_triggered", "_consumed")

    def __init__(self, engine: Engine) -> None:
        self._engine = engine
        self._process: Optional["Process"] = None
        self._value: Any = None
        self._triggered = False
        self._consumed = False

    @property
    def triggered(self) -> bool:
        return self._triggered

    def trigger(self, value: Any = None) -> None:
        """Resume the waiting process (or latch the value until it waits)."""
        if self._triggered:
            raise SimulationError("Waiter already triggered (one-shot)")
        self._triggered = True
        self._value = value
        if self._process is not None:
            proc, self._process = self._process, None
            self._engine.schedule(
                0.0, lambda now: proc._resume(self._take()), priority=Priority.DELIVERY
            )

    def _attach(self, process: "Process") -> None:
        if self._process is not None:
            raise SimulationError("Waiter already awaited by another process")
        if self._triggered:
            self._engine.schedule(
                0.0,
                lambda now: process._resume(self._take()),
                priority=Priority.DELIVERY,
            )
        else:
            self._process = process

    def _take(self) -> Any:
        if self._consumed:
            raise SimulationError("Waiter value already consumed")
        self._consumed = True
        return self._value


ProcessBody = Generator[Any, Any, Any]


class Process:
    """Runs a generator as a simulated process.

    Args:
        engine: The engine providing the clock.
        body: Either a generator object, or a callable taking this process
            and returning a generator (``lambda proc: gen(...)`` style).
        name: Optional label for tracing.

    The generator may yield:
        * :class:`Timeout` — resume after simulated delay;
        * :class:`Waiter` — resume when triggered, receiving the value.

    When the generator returns, :attr:`done` becomes ``True`` and
    :attr:`result` holds its return value. Uncaught exceptions propagate
    out of the engine's ``run()`` (fail fast: a crashed agent is a bug).
    """

    def __init__(
        self,
        engine: Engine,
        body: ProcessBody | Callable[["Process"], ProcessBody],
        name: str = "",
    ) -> None:
        self.engine = engine
        self.name = name
        self.done = False
        self.result: Any = None
        if callable(body):
            self._gen: ProcessBody = body(self)
        else:
            self._gen = body
        self._pending: Optional[EventHandle] = None
        # Start on the next engine dispatch at the current time.
        engine.schedule(0.0, lambda now: self._resume(None))

    def _resume(self, value: Any) -> None:
        if self.done:
            return
        try:
            request = self._gen.send(value)
        except StopIteration as stop:
            self.done = True
            self.result = stop.value
            return
        self._dispatch(request)

    def _dispatch(self, request: Any) -> None:
        if isinstance(request, Timeout):
            self._pending = self.engine.schedule(
                request.delay, lambda now: self._resume(None), priority=Priority.TIMER
            )
        elif isinstance(request, Waiter):
            request._attach(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported request: {request!r}"
            )

    def interrupt(self, value: Any = None) -> None:
        """Cancel a pending Timeout and resume the process immediately.

        Only valid while the process is blocked on a :class:`Timeout`.
        """
        if self.done:
            raise SimulationError("cannot interrupt a finished process")
        if self._pending is None or self._pending.cancelled:
            raise SimulationError("process is not blocked on a Timeout")
        self._pending.cancel()
        self._pending = None
        self.engine.schedule(0.0, lambda now: self._resume(value))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "done" if self.done else "running"
        return f"<Process {self.name!r} {state}>"

"""Named, seeded random-number streams.

Reproducibility discipline: every stochastic component draws from its own
*named* stream derived deterministically from the master seed, so adding a
new random consumer never perturbs the draws seen by existing ones. This is
the standard trick for simulation variance reduction and regression-stable
experiments.
"""

from __future__ import annotations

import hashlib

import numpy as np


def derive_seed(master: int, name: str) -> int:
    """Derive a 63-bit child seed from a master seed and a stream name.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (unlike ``hash()``).
    """
    digest = hashlib.sha256(f"{master}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RngRegistry:
    """Factory and cache of named :class:`numpy.random.Generator` streams.

    Example::

        rng = RngRegistry(seed=42)
        mobility = rng.stream("mobility")
        workload = rng.stream("workload")
        # adding rng.stream("new-feature") later never changes the above
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return the (cached) generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def fork(self, name: str) -> "RngRegistry":
        """A child registry whose master seed is derived from ``name``.

        Useful for per-replication registries in parameter sweeps.
        """
        return RngRegistry(derive_seed(self.seed, f"fork:{name}"))

    def __contains__(self, name: str) -> bool:
        return name in self._streams

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<RngRegistry seed={self.seed} streams={sorted(self._streams)}>"

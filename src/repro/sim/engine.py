"""The discrete-event engine.

:class:`Engine` owns the simulated clock, the pending-event heap, the RNG
registry and the tracer. It is single-threaded and deterministic: given the
same seed and the same schedule of calls, two runs produce identical traces.

Typical use::

    eng = Engine(seed=7)
    eng.schedule(1.0, lambda now: print("tick", now))
    eng.run(until=10.0)
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Iterable, Optional

from repro.errors import SchedulingError
from repro.sim.events import Event, EventHandle, Priority
from repro.sim.rng import RngRegistry
from repro.sim.trace import Tracer


class Engine:
    """Deterministic discrete-event simulation engine.

    Args:
        seed: Master seed for all named RNG streams (see
            :class:`repro.sim.rng.RngRegistry`).
        trace: Optional tracer; a fresh quiet tracer is created if omitted.

    Attributes:
        now: Current simulated time. Starts at 0.0.
        rng: The engine's RNG registry.
        tracer: Structured trace sink.
    """

    def __init__(self, seed: int = 0, trace: Optional[Tracer] = None) -> None:
        self.now: float = 0.0
        self.rng = RngRegistry(seed)
        self.tracer = trace if trace is not None else Tracer()
        self._heap: list[Event] = []
        self._seq: int = 0
        self._running: bool = False
        self._stopped: bool = False
        self._fired: int = 0
        self._pending: int = 0

    # -- scheduling -------------------------------------------------------

    def schedule(
        self,
        delay: float,
        callback: Callable[[float], Any],
        *,
        priority: int = Priority.NORMAL,
    ) -> EventHandle:
        """Schedule ``callback(now)`` to fire ``delay`` time units from now.

        Args:
            delay: Non-negative offset from the current simulated time.
            callback: Invoked with the firing time as its only argument.
            priority: Same-time ordering class (see :class:`Priority`).

        Returns:
            A handle that can cancel the event before it fires.

        Raises:
            SchedulingError: If ``delay`` is negative or not finite.
        """
        if not (delay >= 0.0):  # also rejects NaN
            raise SchedulingError(f"cannot schedule in the past: delay={delay!r}")
        return self.schedule_at(self.now + delay, callback, priority=priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[[float], Any],
        *,
        priority: int = Priority.NORMAL,
    ) -> EventHandle:
        """Schedule ``callback`` at an absolute simulated time.

        Raises:
            SchedulingError: If ``time`` is before the current time.
        """
        if not (time >= self.now):
            raise SchedulingError(
                f"cannot schedule at t={time!r} (now={self.now!r})"
            )
        event = Event(time=time, priority=int(priority), seq=self._seq, callback=callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        self._pending += 1
        return EventHandle(event, on_cancel=self._on_cancel)

    def _on_cancel(self) -> None:
        """A queued event was cancelled; keep the live counter exact (the
        event itself is lazily discarded when it reaches the heap top)."""
        self._pending -= 1

    # -- execution --------------------------------------------------------

    def step(self) -> bool:
        """Fire the single next pending event.

        Returns:
            ``True`` if an event fired, ``False`` if the queue was empty.
        """
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue  # already subtracted from the pending counter
            if event.time < self.now:  # pragma: no cover - defensive
                raise SchedulingError("event heap yielded a past event")
            self.now = event.time
            self._fired += 1
            self._pending -= 1
            event.fired = True
            event.callback(self.now)
            return True
        return False

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None) -> int:
        """Run until the queue drains, ``until`` is reached, or stopped.

        Args:
            until: Inclusive time horizon. Events scheduled exactly at
                ``until`` still fire; later events stay queued and ``now``
                is advanced to ``until``.
            max_events: Optional safety valve on the number of events fired.

        Returns:
            The number of events fired during this call.
        """
        if self._running:
            raise SchedulingError("engine is already running (re-entrant run())")
        self._running = True
        self._stopped = False
        fired = 0
        try:
            while self._heap and not self._stopped:
                if max_events is not None and fired >= max_events:
                    break
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if until is not None and head.time > until:
                    break
                if self.step():
                    fired += 1
            if until is not None and not self._stopped and self.now < until:
                self.now = until
        finally:
            self._running = False
        return fired

    def stop(self) -> None:
        """Request that :meth:`run` return after the current event."""
        self._stopped = True

    # -- introspection ----------------------------------------------------

    @property
    def pending(self) -> int:
        """Number of queued, non-cancelled events.

        O(1): a live counter maintained on push, cancel and pop, so
        monitors polling this on every sample stay cheap on long runs
        (the old implementation scanned the whole heap each call).
        """
        return self._pending

    @property
    def events_fired(self) -> int:
        """Total events fired over the engine's lifetime."""
        return self._fired

    def peek(self) -> Optional[float]:
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def drain(self) -> Iterable[float]:
        """Run to exhaustion, yielding the time of each fired event.

        Mostly useful in tests that assert on event ordering.
        """
        while self.step():
            yield self.now

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Engine now={self.now} pending={self.pending}>"

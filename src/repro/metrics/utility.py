"""User-perceived utility.

The paper's objective is to "maximize user's perceived utility" by
minimizing the eq. 2 distance. We report utility as the normalized
complement of that distance::

    utility = 1 - distance / max_distance   ∈ [0, 1]

where ``max_distance`` is the evaluator's upper bound over in-domain
proposals (:meth:`~repro.core.evaluation.ProposalEvaluator.max_distance`).
Utility 1 means every attribute at the user's preferred value; 0 means
maximally distant (yet admissible) values everywhere. Unallocated tasks
contribute utility 0 — a service the user does not get has no value.
"""

from __future__ import annotations

from typing import Any, Mapping

from repro.core.evaluation import ProposalEvaluator, WeightScheme
from repro.core.negotiation import NegotiationOutcome
from repro.core.proposal import Proposal
from repro.qos.request import ServiceRequest


def proposal_utility(
    request: ServiceRequest,
    proposal: Proposal,
    weights: WeightScheme = WeightScheme.LINEAR,
) -> float:
    """Normalized utility of one proposal under a request."""
    evaluator = ProposalEvaluator(request, weights=weights)
    bound = evaluator.max_distance()
    if bound <= 0:
        return 1.0
    value = 1.0 - evaluator.distance(proposal) / bound
    return max(0.0, min(1.0, value))


def assignment_utility(
    request: ServiceRequest,
    values: Mapping[str, Any],
    weights: WeightScheme = WeightScheme.LINEAR,
) -> float:
    """Utility of a concrete attribute→value assignment."""
    proposal = Proposal(task_id="_", node_id="_", values=dict(values))
    return proposal_utility(request, proposal, weights)


def allocation_utility(
    request: ServiceRequest,
    distance: float,
    weights: WeightScheme = WeightScheme.LINEAR,
) -> float:
    """Utility from a pre-computed eq. 2 distance."""
    bound = ProposalEvaluator(request, weights=weights).max_distance()
    if bound <= 0:
        return 1.0
    return max(0.0, min(1.0, 1.0 - distance / bound))


def outcome_utility(
    outcome: NegotiationOutcome,
    weights: WeightScheme = WeightScheme.LINEAR,
) -> float:
    """Mean per-task utility of a negotiation outcome.

    Allocated tasks contribute their award's normalized utility;
    unallocated tasks contribute 0.
    """
    tasks = outcome.service.tasks
    if not tasks:
        return 0.0
    total = 0.0
    for task in tasks:
        award = outcome.coalition.awards.get(task.task_id)
        if award is None:
            continue
        total += allocation_utility(task.request, award.distance, weights)
    return total / len(tasks)

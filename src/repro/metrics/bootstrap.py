"""Nonparametric bootstrap confidence intervals for replication rows.

The suites replicate every sweep point over 8–30 seeds and report
``mean ± ci`` — historically with the normal approximation
(:func:`repro.metrics.stats.describe`), which silently assumes the
per-seed metric is Gaussian. Success rates near 1, drop rates near 0
and wall-clock timings are not, so this module provides the honest
alternative: resample the replication rows themselves.

Two interval methods over the sample **mean**:

* ``"percentile"`` — the empirical ``α/2`` and ``1 − α/2`` quantiles of
  the resampled means; simple, monotone-invariant, first-order accurate;
* ``"bca"`` — bias-corrected and accelerated (Efron): the percentile
  endpoints adjusted by the bias correction ``z₀`` (from the fraction
  of resampled means below the observed mean) and the acceleration
  ``a`` (from the jackknife skewness), second-order accurate for
  skewed metrics.

Everything is deterministic: resampling indices are a pure function of
``(len(samples), n_resamples, seed)`` via a dedicated
:class:`~numpy.random.Generator` seeded per call — never a shared
stream — so reports carrying bootstrap intervals stay bit-identical
between serial and parallel runs, and two reports diffed by
``tools/bench_diff.py`` resample with the *same* index sets.

:func:`bootstrap_diff_ci` is the perf gate's primitive: the interval of
the mean of **paired** per-seed differences between two reports (the
suites replicate both sides over identical seed lists). A metric whose
difference interval excludes zero drifted beyond its own replication
noise; one whose interval straddles zero is statistically
indistinguishable — that interval *is* the principled noise band that
replaces the hand-picked ``rtol``.
"""

from __future__ import annotations

from dataclasses import dataclass
from statistics import NormalDist
from typing import Any, Dict, Sequence

import numpy as np

#: Default resample count — ample for 95 % endpoints at suite seed counts.
DEFAULT_RESAMPLES = 2000

#: Default seed of the dedicated resampling generator. Fixed, so every
#: bootstrap interval is reproducible and independent of call order.
DEFAULT_SEED = 1905


@dataclass(frozen=True)
class BootstrapCI:
    """One two-sided bootstrap confidence interval for a sample mean."""

    lo: float
    hi: float
    mean: float
    alpha: float
    method: str
    n_resamples: int

    @property
    def half_width(self) -> float:
        """Half the interval width (for comparison with the normal CI)."""
        return (self.hi - self.lo) / 2.0

    def contains(self, value: float) -> bool:
        return self.lo <= value <= self.hi

    def __str__(self) -> str:
        return (
            f"[{self.lo:.4f}, {self.hi:.4f}] "
            f"({self.method}, {1 - self.alpha:.0%}, B={self.n_resamples})"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "lo": self.lo, "hi": self.hi, "mean": self.mean,
            "alpha": self.alpha, "method": self.method,
            "n_resamples": self.n_resamples,
        }


def resample_indices(n: int, n_resamples: int, seed: int) -> np.ndarray:
    """The ``(n_resamples, n)`` index matrix every bootstrap here uses.

    A pure function of its arguments (dedicated PCG64 generator), so
    intervals never depend on any ambient RNG state.
    """
    rng = np.random.Generator(np.random.PCG64(seed))
    return rng.integers(0, n, size=(n_resamples, n))


def _degenerate(mean: float, alpha: float, method: str, n_resamples: int) -> BootstrapCI:
    return BootstrapCI(
        lo=mean, hi=mean, mean=mean, alpha=alpha,
        method=method, n_resamples=n_resamples,
    )


def bootstrap_ci(
    samples: Sequence[float],
    alpha: float = 0.05,
    n_resamples: int = DEFAULT_RESAMPLES,
    method: str = "percentile",
    seed: int = DEFAULT_SEED,
) -> BootstrapCI:
    """A two-sided ``1 − alpha`` bootstrap CI for the mean of ``samples``.

    Degenerate inputs short-circuit exactly: a single observation, or a
    constant sample, yields the zero-width interval ``[mean, mean]``
    without consuming any randomness (resampling a constant can only
    reproduce it — the closed form the unit tests pin).

    Args:
        samples: The replication rows (one metric across seeds).
        alpha: Two-sided miss probability (``0.05`` → 95 % interval).
        n_resamples: Bootstrap resamples ``B``.
        method: ``"percentile"`` or ``"bca"``.
        seed: Seed of the dedicated resampling generator.
    """
    if method not in ("percentile", "bca"):
        raise ValueError(f"unknown method {method!r}; use 'percentile' or 'bca'")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if n_resamples < 1:
        raise ValueError(f"n_resamples must be >= 1, got {n_resamples}")
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    mean = float(arr.mean())
    if arr.size == 1 or float(arr.min()) == float(arr.max()):
        return _degenerate(mean, alpha, method, n_resamples)

    idx = resample_indices(arr.size, n_resamples, seed)
    boot_means = arr[idx].mean(axis=1)

    if method == "percentile":
        lo_q, hi_q = alpha / 2.0, 1.0 - alpha / 2.0
    else:
        lo_q, hi_q = _bca_quantiles(arr, boot_means, mean, alpha)
    lo, hi = np.quantile(boot_means, [lo_q, hi_q])
    return BootstrapCI(
        lo=float(lo), hi=float(hi), mean=mean, alpha=alpha,
        method=method, n_resamples=n_resamples,
    )


def _bca_quantiles(
    arr: np.ndarray, boot_means: np.ndarray, mean: float, alpha: float
) -> tuple:
    """The BCa-adjusted quantile pair (Efron 1987).

    ``z₀`` measures median bias (the normal quantile of the fraction of
    resampled means below the observed mean); ``a`` is the acceleration,
    the jackknife estimate of the statistic's skewness. Both zero
    reduces BCa to the plain percentile interval.
    """
    norm = NormalDist()
    B = boot_means.size
    # Clamp the below-fraction away from {0, 1}: inv_cdf is infinite
    # there, and a resample distribution entirely on one side of the
    # mean is a degenerate edge the interval should survive, not crash.
    below = float(np.count_nonzero(boot_means < mean)) / B
    below = min(max(below, 1.0 / (B + 1)), B / (B + 1.0))
    z0 = norm.inv_cdf(below)

    # Jackknife acceleration: a = Σd³ / (6 (Σd²)^{3/2}), d = mean-of-
    # leave-one-out deviations. Vectorized: leave-one-out means are
    # (Σx - xᵢ) / (n - 1).
    n = arr.size
    jack = (arr.sum() - arr) / (n - 1)
    d = jack.mean() - jack
    denom = float((d ** 2).sum()) ** 1.5
    a = float((d ** 3).sum()) / (6.0 * denom) if denom > 0 else 0.0

    def adjust(q: float) -> float:
        z = norm.inv_cdf(q)
        num = z0 + z
        adj = z0 + num / (1.0 - a * num)
        # Guard the tails: extreme z₀/a can push the adjusted quantile
        # to 0 or 1; clamp inside the resample distribution's support.
        return min(max(norm.cdf(adj), 1.0 / (B + 1)), B / (B + 1.0))

    return adjust(alpha / 2.0), adjust(1.0 - alpha / 2.0)


def bootstrap_diff_ci(
    old: Sequence[float],
    new: Sequence[float],
    alpha: float = 0.05,
    n_resamples: int = DEFAULT_RESAMPLES,
    method: str = "percentile",
    seed: int = DEFAULT_SEED,
) -> BootstrapCI:
    """The bootstrap CI of the mean **paired** difference ``new − old``.

    Both samples must align element-wise (the suites replicate both
    reports over the same seed list, so row *i* of each side is the same
    seed). The returned interval is the perf gate's noise band: zero
    outside it means the drift is distinguishable from replication
    noise at level ``alpha``; identical inputs give exactly ``[0, 0]``.
    """
    a = np.asarray(old, dtype=float)
    b = np.asarray(new, dtype=float)
    if a.shape != b.shape:
        raise ValueError(
            f"paired samples must align, got lengths {a.size} != {b.size}"
        )
    return bootstrap_ci(
        b - a, alpha=alpha, n_resamples=n_resamples, method=method, seed=seed
    )


def coverage(
    intervals: Sequence[BootstrapCI], truth: float
) -> float:
    """The fraction of intervals containing ``truth`` (test helper)."""
    if not intervals:
        raise ValueError("no intervals")
    return sum(1 for ci in intervals if ci.contains(truth)) / len(intervals)

"""Aggregation statistics for seed sweeps.

Experiments run each configuration over several seeds; these helpers turn
the per-seed samples into the mean ± CI rows the reports print. The CI
uses the normal approximation (sweeps of 10–30 replications), matching
standard simulation-study practice.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, Sequence

import numpy as np

#: 97.5 % standard-normal quantile, for 95 % two-sided intervals.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric across replications."""

    mean: float
    std: float
    ci_half_width: float
    n: int
    minimum: float
    maximum: float

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.ci_half_width:.4f} (n={self.n})"

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form; :meth:`from_dict` round-trips it."""
        return asdict(self)

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Summary":
        return cls(
            mean=float(data["mean"]),
            std=float(data["std"]),
            ci_half_width=float(data["ci_half_width"]),
            n=int(data["n"]),
            minimum=float(data["minimum"]),
            maximum=float(data["maximum"]),
        )


def describe(samples: Sequence[float]) -> Summary:
    """Mean, sample std, 95 % CI half-width, extremes."""
    if len(samples) == 0:
        raise ValueError("cannot describe an empty sample")
    arr = np.asarray(samples, dtype=float)
    n = len(arr)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    half = Z_95 * std / math.sqrt(n) if n > 1 else 0.0
    return Summary(
        mean=mean, std=std, ci_half_width=half, n=n,
        minimum=float(arr.min()), maximum=float(arr.max()),
    )


def mean_ci(samples: Sequence[float]) -> tuple[float, float]:
    """(mean, 95 % CI half-width) shortcut."""
    s = describe(samples)
    return s.mean, s.ci_half_width


def confidence_interval(samples: Sequence[float]) -> tuple[float, float]:
    """95 % confidence interval (lo, hi) for the mean."""
    s = describe(samples)
    return s.mean - s.ci_half_width, s.mean + s.ci_half_width


def summarize_rows(rows: Sequence[Dict[str, float]]) -> Dict[str, Summary]:
    """Column-wise :func:`describe` over dict rows sharing keys."""
    if not rows:
        raise ValueError("no rows to summarize")
    keys = rows[0].keys()
    return {k: describe([r[k] for r in rows]) for k in keys}

"""Aggregation statistics for seed sweeps.

Experiments run each configuration over several seeds; these helpers turn
the per-seed samples into the mean ± CI rows the reports print. Two
intervals travel with every summary:

* ``ci_half_width`` — the classical normal-approximation 95 % CI
  half-width (what the rendered ``mean±ci`` cells show, unchanged so
  archived tables stay byte-identical);
* ``boot_lo`` / ``boot_hi`` — a nonparametric 95 % percentile bootstrap
  CI (:mod:`repro.metrics.bootstrap`), assumption-free and therefore
  honest for the success/drop rates and timings that are nowhere near
  Gaussian.

Summaries also retain the raw per-seed ``samples``, which is what lets
``tools/bench_diff.py`` derive its perf-gate tolerance as a *paired*
bootstrap noise band between two reports instead of a hand-picked
``rtol``. All three additions are deterministic functions of the
samples, so the parallel==serial bit-identity guarantee is untouched.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Any, Dict, Optional, Sequence, Tuple

import numpy as np

#: 97.5 % standard-normal quantile, for 95 % two-sided intervals.
Z_95 = 1.959963984540054


@dataclass(frozen=True)
class Summary:
    """Descriptive statistics of one metric across replications.

    The trailing optional fields (``samples``, ``boot_lo``, ``boot_hi``)
    are populated by :func:`describe` but default to ``None`` so
    summaries persisted before they existed still deserialize (and
    hand-built test summaries still construct positionally).
    """

    mean: float
    std: float
    ci_half_width: float
    n: int
    minimum: float
    maximum: float
    samples: Optional[Tuple[float, ...]] = None
    boot_lo: Optional[float] = None
    boot_hi: Optional[float] = None

    def __str__(self) -> str:
        return f"{self.mean:.4f} ± {self.ci_half_width:.4f} (n={self.n})"

    def bootstrap_interval(self) -> Tuple[float, float]:
        """The 95 % percentile-bootstrap interval ``(lo, hi)``.

        Falls back to the degenerate ``(mean, mean)`` for summaries
        predating the bootstrap fields.
        """
        if self.boot_lo is None or self.boot_hi is None:
            return (self.mean, self.mean)
        return (self.boot_lo, self.boot_hi)

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form; :meth:`from_dict` round-trips it."""
        data = asdict(self)
        if data["samples"] is not None:
            data["samples"] = list(data["samples"])
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Summary":
        samples = data.get("samples")
        boot_lo = data.get("boot_lo")
        boot_hi = data.get("boot_hi")
        return cls(
            mean=float(data["mean"]),
            std=float(data["std"]),
            ci_half_width=float(data["ci_half_width"]),
            n=int(data["n"]),
            minimum=float(data["minimum"]),
            maximum=float(data["maximum"]),
            samples=None if samples is None else tuple(float(s) for s in samples),
            boot_lo=None if boot_lo is None else float(boot_lo),
            boot_hi=None if boot_hi is None else float(boot_hi),
        )


def describe(samples: Sequence[float]) -> Summary:
    """Mean, sample std, 95 % CI half-width, extremes — plus the raw
    samples and their 95 % percentile bootstrap interval."""
    # Local import: repro.metrics.bootstrap builds on numpy only, but
    # keeping stats importable first avoids any cycle temptation.
    from repro.metrics.bootstrap import bootstrap_ci

    if len(samples) == 0:
        raise ValueError("cannot describe an empty sample")
    arr = np.asarray(samples, dtype=float)
    n = len(arr)
    mean = float(arr.mean())
    std = float(arr.std(ddof=1)) if n > 1 else 0.0
    half = Z_95 * std / math.sqrt(n) if n > 1 else 0.0
    boot = bootstrap_ci(arr)
    return Summary(
        mean=mean, std=std, ci_half_width=half, n=n,
        minimum=float(arr.min()), maximum=float(arr.max()),
        samples=tuple(float(x) for x in arr),
        boot_lo=boot.lo, boot_hi=boot.hi,
    )


def mean_ci(samples: Sequence[float]) -> tuple[float, float]:
    """(mean, 95 % CI half-width) shortcut."""
    s = describe(samples)
    return s.mean, s.ci_half_width


def confidence_interval(samples: Sequence[float]) -> tuple[float, float]:
    """95 % confidence interval (lo, hi) for the mean."""
    s = describe(samples)
    return s.mean - s.ci_half_width, s.mean + s.ci_half_width


def summarize_rows(rows: Sequence[Dict[str, float]]) -> Dict[str, Summary]:
    """Column-wise :func:`describe` over dict rows sharing keys."""
    if not rows:
        raise ValueError("no rows to summarize")
    return {k: describe([r[k] for r in rows]) for k in rows[0]}

"""Run-level metric collection from negotiation outcomes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.negotiation import NegotiationOutcome
from repro.metrics.utility import outcome_utility


@dataclass
class RunMetrics:
    """Flat metric record of one negotiation run.

    All the quantities the experiment tables report, in one row.
    """

    success: bool
    allocated_tasks: int
    total_tasks: int
    utility: float
    total_distance: float
    coalition_size: int
    comm_cost: float
    message_count: int
    proposals_received: int
    candidates: int

    @property
    def allocation_rate(self) -> float:
        if self.total_tasks == 0:
            return 0.0
        return self.allocated_tasks / self.total_tasks

    def as_dict(self) -> Dict[str, float]:
        return {
            "success": float(self.success),
            "allocation_rate": self.allocation_rate,
            "utility": self.utility,
            "total_distance": self.total_distance,
            "coalition_size": float(self.coalition_size),
            "comm_cost": self.comm_cost,
            "message_count": float(self.message_count),
            "proposals_received": float(self.proposals_received),
            "candidates": float(self.candidates),
        }


def collect_outcome_metrics(outcome: NegotiationOutcome) -> RunMetrics:
    """Extract a :class:`RunMetrics` row from a negotiation outcome."""
    comm = outcome.coalition.total_comm_cost()
    return RunMetrics(
        success=outcome.success,
        allocated_tasks=len(outcome.coalition.awards),
        total_tasks=len(outcome.service.tasks),
        utility=outcome_utility(outcome),
        total_distance=outcome.total_distance(),
        coalition_size=outcome.coalition.size,
        comm_cost=comm if comm != float("inf") else -1.0,
        message_count=outcome.message_count,
        proposals_received=outcome.proposals_received,
        candidates=len(outcome.candidates),
    )

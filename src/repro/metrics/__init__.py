"""Measurement: user-perceived utility, run collection, statistics."""

from repro.metrics.utility import (
    allocation_utility,
    assignment_utility,
    outcome_utility,
    proposal_utility,
)
from repro.metrics.collector import RunMetrics, collect_outcome_metrics
from repro.metrics.stats import confidence_interval, describe, mean_ci
from repro.metrics.bootstrap import (
    BootstrapCI,
    bootstrap_ci,
    bootstrap_diff_ci,
)

__all__ = [
    "assignment_utility",
    "proposal_utility",
    "allocation_utility",
    "outcome_utility",
    "RunMetrics",
    "collect_outcome_metrics",
    "confidence_interval",
    "describe",
    "mean_ci",
    "BootstrapCI",
    "bootstrap_ci",
    "bootstrap_diff_ci",
]

"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
applications can catch a single base class. Sub-hierarchies mirror the
package layout: QoS-specification errors, resource/admission errors,
network errors, negotiation errors, and simulation-kernel errors.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


# --------------------------------------------------------------------------
# QoS specification / request errors (repro.qos)
# --------------------------------------------------------------------------


class QoSSpecError(ReproError):
    """A QoS specification is malformed or internally inconsistent."""


class UnknownDimensionError(QoSSpecError):
    """A dimension identifier is not present in the specification."""

    def __init__(self, dimension: str) -> None:
        super().__init__(f"unknown QoS dimension: {dimension!r}")
        self.dimension = dimension


class UnknownAttributeError(QoSSpecError):
    """An attribute identifier is not present in the specification."""

    def __init__(self, attribute: str) -> None:
        super().__init__(f"unknown QoS attribute: {attribute!r}")
        self.attribute = attribute


class DomainError(QoSSpecError):
    """A value is outside its attribute's domain, or a domain is invalid."""


class DependencyError(QoSSpecError):
    """An inter-attribute dependency (``Deps``) is violated or malformed."""


class RequestError(ReproError):
    """A service request's preference structure is malformed."""


# --------------------------------------------------------------------------
# Resource / admission errors (repro.resources)
# --------------------------------------------------------------------------


class ResourceError(ReproError):
    """Base class for resource-management errors."""


class CapacityExceededError(ResourceError):
    """An admission request exceeds the remaining capacity of a resource."""


class UnknownReservationError(ResourceError):
    """A reservation handle does not correspond to a live reservation."""


class UnknownResourceError(ResourceError):
    """A resource kind is not managed by this node/manager."""

    def __init__(self, kind: object) -> None:
        super().__init__(f"resource kind not managed here: {kind!r}")
        self.kind = kind


class MappingError(ResourceError):
    """No QoS-level -> resource-demand mapping exists for a task/level."""


# --------------------------------------------------------------------------
# Network errors (repro.network)
# --------------------------------------------------------------------------


class NetworkError(ReproError):
    """Base class for simulated-network errors."""


class NotConnectedError(NetworkError):
    """Two nodes are not within radio range of each other."""


class UnknownNodeError(NetworkError):
    """A node identifier is not registered with the network/topology."""

    def __init__(self, node_id: object) -> None:
        super().__init__(f"unknown node: {node_id!r}")
        self.node_id = node_id


# --------------------------------------------------------------------------
# Negotiation / coalition errors (repro.core, repro.agents)
# --------------------------------------------------------------------------


class NegotiationError(ReproError):
    """Base class for negotiation-protocol errors."""


class NoAdmissibleProposalError(NegotiationError):
    """No received proposal satisfies all requested QoS dimensions."""


class InfeasibleTaskError(NegotiationError):
    """A task cannot be served at any acceptable quality level."""


class CoalitionError(ReproError):
    """Coalition life-cycle errors (formation / operation / dissolution)."""


class CoalitionStateError(CoalitionError):
    """An operation is invalid in the coalition's current phase."""


class SessionStateError(CoalitionError):
    """An illegal streaming-session life-cycle transition was attempted
    (see :class:`repro.sessions.SessionState` for the legal machine)."""


# --------------------------------------------------------------------------
# Simulation kernel errors (repro.sim)
# --------------------------------------------------------------------------


class SimulationError(ReproError):
    """Base class for discrete-event-simulation kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled in the past or the engine is in a bad state."""

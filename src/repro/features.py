"""One registry for the library's feature switches.

The optimized fast paths each ship with a module-level boolean so A/B
tests can pin the legacy path and assert bit-identical results:

* ``batch-evaluation`` — :data:`repro.core.negotiation.USE_BATCH_EVALUATION`,
  the vectorized step-3 proposal scoring;
* ``vector-topology`` — :data:`repro.network.topology.USE_VECTOR_TOPOLOGY`,
  the numpy adjacency/routing arena;
* ``session-driver`` — :data:`repro.workloads.contention.USE_SESSION_DRIVER`,
  the event-driven streaming-session engine (configs with
  ``sessions.operate=True`` fall back to admission-only when off);
* ``shard`` — :data:`repro.shard.cluster.USE_SHARDING`, the spatially-
  partitioned cluster shards with gateway routing (clusters collapse to
  one shard when off);
* ``faults`` — :data:`repro.faults.injector.USE_FAULTS`, the
  seed-deterministic fault-injection subsystem (configs with a
  non-empty :class:`~repro.faults.plan.FaultPlan` run fault-free when
  off).

This module is the one place that knows where those booleans live.
Switches keep living in their owning modules (existing tests
monkeypatch them directly, and the modules stay importable alone);
:func:`set_enabled`/:func:`override` here delegate to the same
attributes, so both styles compose.

Snapshot semantics — every switch is read **once per constructed
object or run**, never mid-flight:

* ``vector-topology`` at :class:`~repro.network.topology.Topology`
  construction;
* ``batch-evaluation`` at :func:`~repro.core.negotiation.negotiate`
  entry (one negotiation scores all its tasks down one path);
* ``session-driver`` at :func:`~repro.workloads.run_contention` entry
  (one run is all-driver or all-legacy);
* ``shard`` at :class:`~repro.shard.ShardedCluster` construction
  (matching ``vector-topology``'s construction-time snapshot);
* ``faults`` at :func:`~repro.faults.injector.make_injector` — called
  once per streaming run, so a run is all-faulted or all-clean.

Flipping a switch therefore affects the *next* object/run, which is
what makes :func:`override` safe to wrap around a whole experiment.
"""

from __future__ import annotations

import contextlib
import importlib
from dataclasses import dataclass
from typing import Dict, Iterator


@dataclass(frozen=True)
class FeatureSwitch:
    """Where one feature switch lives and what it does.

    The module is imported lazily on first access, so this registry
    never forces the whole library in at import time.
    """

    name: str
    module: str
    attribute: str
    description: str

    @property
    def enabled(self) -> bool:
        return bool(getattr(importlib.import_module(self.module), self.attribute))

    def set(self, enabled: bool) -> None:
        setattr(importlib.import_module(self.module), self.attribute, bool(enabled))


#: The registry, keyed by kebab-case switch name.
FEATURES: Dict[str, FeatureSwitch] = {
    switch.name: switch
    for switch in (
        FeatureSwitch(
            name="batch-evaluation",
            module="repro.core.negotiation",
            attribute="USE_BATCH_EVALUATION",
            description="vectorized step-3 proposal scoring "
                        "(snapshot per negotiate() run)",
        ),
        FeatureSwitch(
            name="vector-topology",
            module="repro.network.topology",
            attribute="USE_VECTOR_TOPOLOGY",
            description="numpy adjacency/routing arena "
                        "(snapshot per Topology construction)",
        ),
        FeatureSwitch(
            name="session-driver",
            module="repro.workloads.contention",
            attribute="USE_SESSION_DRIVER",
            description="event-driven streaming-session engine "
                        "(snapshot per run_contention() run)",
        ),
        FeatureSwitch(
            name="shard",
            module="repro.shard.cluster",
            attribute="USE_SHARDING",
            description="spatially-partitioned cluster shards with "
                        "gateway routing (snapshot per ShardedCluster "
                        "construction; off = one shard)",
        ),
        FeatureSwitch(
            name="faults",
            module="repro.faults.injector",
            attribute="USE_FAULTS",
            description="seed-deterministic fault injection "
                        "(snapshot per run via make_injector; off = "
                        "plans are ignored, runs are fault-free)",
        ),
    )
}


def _get(name: str) -> FeatureSwitch:
    try:
        return FEATURES[name]
    except KeyError:
        raise KeyError(
            f"unknown feature {name!r}; available: {', '.join(FEATURES)}"
        ) from None


def is_enabled(name: str) -> bool:
    """Current value of a switch (reads the owning module's global)."""
    return _get(name).enabled


def set_enabled(name: str, enabled: bool) -> None:
    """Flip a switch (writes the owning module's global). Existing
    objects keep their construction-time snapshot; new ones see it."""
    _get(name).set(enabled)


def snapshot() -> Dict[str, bool]:
    """All switches' current values, in registry order."""
    return {name: switch.enabled for name, switch in FEATURES.items()}


@contextlib.contextmanager
def override(name: str, enabled: bool) -> Iterator[None]:
    """Temporarily pin one switch, restoring the previous value on exit
    (the A/B-test idiom, exception-safe)."""
    switch = _get(name)
    previous = switch.enabled
    switch.set(enabled)
    try:
        yield
    finally:
        switch.set(previous)


def describe() -> str:
    """A printable table of every switch (the CLI's --list-features)."""
    width = max(len(name) for name in FEATURES)
    lines: list[str] = []
    for name, switch in FEATURES.items():
        state = "on " if switch.enabled else "off"
        lines.append(f"{name:<{width}}  {state}  {switch.description}")
    return "\n".join(lines)

"""AgentSystem: one-stop wiring of a complete simulated deployment.

Builds (in order): engine → nodes → mobility placement → topology →
channel → network service → one :class:`ProviderAgent` per node, and
offers helpers to run negotiations and advance mobility. This is the
entry point examples and experiments use.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from repro.agents.organizer import OrganizerAgent
from repro.agents.provider import ProviderAgent
from repro.core.negotiation import NegotiationOutcome
from repro.core.selection import SelectionPolicy
from repro.core.evaluation import WeightScheme
from repro.errors import UnknownNodeError
from repro.network.channel import ChannelModel
from repro.network.messaging import NetworkService
from repro.network.mobility import MobilityModel, StaticPlacement
from repro.network.radio import DiscRadio, RadioModel
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.resources.provider import QoSProvider
from repro.services.service import Service
from repro.sim.engine import Engine


class AgentSystem:
    """A fully wired simulated ad-hoc deployment.

    Args:
        nodes: The participating devices.
        seed: Master seed for all RNG streams.
        radio: Radio model (default: 100 m disc).
        mobility: Mobility model (default: static uniform placement in a
            120×120 m area — mostly one hop under the default 100 m
            radio, matching the paper's one-hop broadcast neighborhood).
        reliable_channel: Disable message loss (isolates algorithmic
            behaviour from the lossy channel).
        proposal_window: Organizer CFP collection window (s).
        award_timeout: Organizer award-reply timeout (s).
        selection: Winner-selection policy for organizers.
        weights: eq. 3 weight scheme for organizers.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        seed: int = 0,
        radio: Optional[RadioModel] = None,
        mobility: Optional[MobilityModel] = None,
        reliable_channel: bool = False,
        proposal_window: float = 0.5,
        award_timeout: float = 0.25,
        selection: Optional[SelectionPolicy] = None,
        weights: WeightScheme = WeightScheme.LINEAR,
        max_hops: int = 1,
    ) -> None:
        self.engine = Engine(seed=seed)
        self.nodes: Dict[str, Node] = {n.node_id: n for n in nodes}
        if len(self.nodes) != len(nodes):
            raise ValueError("duplicate node ids")
        self.radio = radio if radio is not None else DiscRadio()
        self.mobility = (
            mobility
            if mobility is not None
            else StaticPlacement(120.0, 120.0, self.engine.rng.stream("placement"))
        )
        # Membership is fixed for the system's lifetime: reuse one node
        # list for placement and every mobility tick instead of
        # re-materializing it per tick.
        self._node_list = list(self.nodes.values())
        self.mobility.place(self._node_list)
        self.topology = Topology(self._node_list, self.radio)
        self.channel = ChannelModel(
            self.topology,
            self.engine.rng.stream("channel"),
            reliable=reliable_channel,
        )
        self.network = NetworkService(self.engine, self.topology, self.channel)
        self.proposal_window = proposal_window
        self.award_timeout = award_timeout
        self.selection = selection
        self.weights = weights
        self.max_hops = max_hops

        self.providers: Dict[str, QoSProvider] = {}
        self.provider_agents: Dict[str, ProviderAgent] = {}
        self.organizers: Dict[str, OrganizerAgent] = {}
        for node in self.nodes.values():
            agent = ProviderAgent(self.engine, node, self.network)
            self.provider_agents[node.node_id] = agent
            self.providers[node.node_id] = agent.provider

    # -- organizers -----------------------------------------------------------

    def organizer(self, node_id: str) -> OrganizerAgent:
        """Get (or lazily create) the organizer role on ``node_id``.

        The organizer replaces the plain provider agent's inbox (it
        handles PROPOSE/CONFIRM/REFUSE *and* still answers CFPs of other
        organizers through its embedded provider agent behaviour — in
        this simplified wiring, a node acting as organizer keeps its
        provider agent for foreign sessions by re-registering it after
        its own sessions complete; in practice experiments use distinct
        requester nodes).
        """
        if node_id not in self.nodes:
            raise UnknownNodeError(node_id)
        if node_id not in self.organizers:
            # Re-register inbox: organizer wraps provider behaviour.
            provider_agent = self.provider_agents[node_id]
            organizer = OrganizerAgent(
                self.engine,
                self.nodes[node_id],
                self.network,
                self.topology,
                proposal_window=self.proposal_window,
                award_timeout=self.award_timeout,
                selection=self.selection,
                weights=self.weights,
                max_hops=self.max_hops,
            )
            # Chain: organizer handles its kinds, provider handles CFP/AWARD.
            for kind in ("CFP", "AWARD"):
                organizer.on(kind, provider_agent._handlers[kind])
            self.organizers[node_id] = organizer
        return self.organizers[node_id]

    # -- running -----------------------------------------------------------

    def negotiate(
        self, service: Service, run: bool = True
    ) -> Optional[NegotiationOutcome]:
        """Run one negotiation end-to-end on the simulated network.

        Args:
            service: The service to allocate (requester must be a node).
            run: When ``True`` (default) the engine runs to quiescence
                and the outcome is returned; when ``False`` the session
                is started and ``None`` returned (caller drives the
                engine, e.g. to interleave mobility).
        """
        organizer = self.organizer(service.requester)
        result: List[NegotiationOutcome] = []
        organizer.request_service(service, on_complete=result.append)
        if not run:
            return None
        # Step (not run-to-exhaustion) so long-lived background activity
        # (mobility ticks) does not get fast-forwarded past the horizon.
        while not result and self.engine.step():
            pass
        return result[0] if result else None

    def step_mobility(self, dt: float) -> None:
        """Advance node positions by ``dt`` and rebuild the topology.

        The rebuild advances the topology's cache epoch, so any cached
        neighborhoods/routes from before the move are dropped."""
        self.mobility.advance(self._node_list, dt)
        self.topology.rebuild()

    def start_mobility_process(self, tick: float = 1.0, until: float = float("inf")) -> None:
        """Schedule periodic mobility advancement on the engine."""

        def _tick(now: float) -> None:
            self.step_mobility(tick)
            if now + tick <= until:
                self.engine.schedule(tick, _tick)

        self.engine.schedule(tick, _tick)

    def alive_count(self) -> int:
        return sum(1 for n in self.nodes.values() if n.alive)

    def __repr__(self) -> str:
        return f"<AgentSystem nodes={len(self.nodes)} t={self.engine.now:.3f}>"

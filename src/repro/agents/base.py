"""Agent plumbing: inbox registration and kind-based dispatch."""

from __future__ import annotations

from typing import Any, Callable, Dict

from repro.network.messaging import Message, NetworkService
from repro.resources.node import Node
from repro.sim.engine import Engine

Handler = Callable[[Message, float], None]


class Agent:
    """Base class binding a node to the network with message dispatch.

    Subclasses register per-kind handlers via :meth:`on`; unknown kinds
    are counted but otherwise ignored (an agent is not obliged to speak
    every protocol).
    """

    def __init__(self, engine: Engine, node: Node, network: NetworkService) -> None:
        self.engine = engine
        self.node = node
        self.network = network
        self._handlers: Dict[str, Handler] = {}
        self.unhandled_count = 0
        network.register(node.node_id, self._receive)

    @property
    def node_id(self) -> str:
        return self.node.node_id

    def on(self, kind: str, handler: Handler) -> None:
        """Register the handler for message ``kind`` (one per kind)."""
        self._handlers[kind] = handler

    def _receive(self, message: Message, now: float) -> None:
        if not self.node.alive:
            return
        handler = self._handlers.get(message.kind)
        if handler is None:
            self.unhandled_count += 1
            return
        handler(message, now)

    # -- convenience senders ------------------------------------------------

    def send(self, recipient: str, kind: str, payload: Any, size_kb: float = 1.0) -> None:
        """Unicast from this agent's node."""
        if not self.node.alive:
            return
        self.network.send(self.node_id, recipient, kind, payload, size_kb)

    def broadcast(self, kind: str, payload: Any, size_kb: float = 1.0) -> int:
        """One-hop broadcast; returns the number of copies not lost."""
        if not self.node.alive:
            return 0
        return len(self.network.broadcast(self.node_id, kind, payload, size_kb))

    def __repr__(self) -> str:
        return f"<{type(self).__name__} node={self.node_id!r}>"

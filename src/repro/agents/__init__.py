"""Agent layer: the Section 4.2 protocol as asynchronous message passing.

:mod:`repro.core.negotiation` runs the negotiation synchronously for
algorithm-level studies; this package runs the *same* logic as a
contract-net-style message protocol over the simulated lossy network:

* :class:`~repro.agents.organizer.OrganizerAgent` — the Negotiation
  Organizer role ("the QoS Provider [that] starts and guides all the
  negotiation process");
* :class:`~repro.agents.provider.ProviderAgent` — a QoS Provider
  answering calls-for-proposals from its Resource Managers' state;
* :class:`~repro.agents.system.AgentSystem` — wiring: nodes, topology,
  channel, network service, one agent per node, and mobility stepping.

Message kinds: ``CFP`` (step 1 broadcast), ``PROPOSE`` (step 2 replies),
``AWARD`` (steps 3–4), ``CONFIRM``/``REFUSE`` (award-time admission
results, needed because headroom may change between proposal and award).
"""

from repro.agents.messages import (
    AwardPayload,
    CFPPayload,
    ConfirmPayload,
    ProposePayload,
    RefusePayload,
)
from repro.agents.base import Agent
from repro.agents.provider import ProviderAgent
from repro.agents.organizer import NegotiationSession, OrganizerAgent
from repro.agents.system import AgentSystem

__all__ = [
    "Agent",
    "ProviderAgent",
    "OrganizerAgent",
    "NegotiationSession",
    "AgentSystem",
    "CFPPayload",
    "ProposePayload",
    "AwardPayload",
    "ConfirmPayload",
    "RefusePayload",
]

"""Protocol message payloads.

Python objects travel in-process (the simulator does not serialize), but
``size_kb`` on each message models the wire cost; the defaults reflect the
relative sizes (a CFP carries task descriptions + preferences, proposals
are small, awards carry the task's input data).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.core.proposal import Proposal
from repro.services.service import Service

CFP = "CFP"
PROPOSE = "PROPOSE"
AWARD = "AWARD"
CONFIRM = "CONFIRM"
REFUSE = "REFUSE"


@dataclass(frozen=True)
class CFPPayload:
    """Step 1: service description + user preferences (they live inside
    each task's :class:`~repro.qos.request.ServiceRequest`).

    Attributes:
        session_id: Negotiation session this CFP belongs to.
        service: The requested service (tasks carry the QoS requests).
        reply_by: Absolute simulated deadline for proposals; later
            arrivals are ignored by the organizer.
        organizer: Node id proposals must be routed back to (the sender
            of a relayed copy is the relay, not the organizer).
        hops_remaining: Relay budget. 1 = the paper's one-hop broadcast;
            relays decrement and re-broadcast while positive.
    """

    session_id: str
    service: Service
    reply_by: float
    organizer: str = ""
    hops_remaining: int = 1


@dataclass(frozen=True)
class ProposePayload:
    """Step 2: one node's proposals (possibly for several tasks)."""

    session_id: str
    proposals: Tuple[Proposal, ...]


@dataclass(frozen=True)
class AwardPayload:
    """Steps 3–4: the organizer awards one task to one node.

    Carries the task id and the exact proposal being accepted; the data
    transfer for execution is modeled by the message size.
    """

    session_id: str
    task_id: str
    proposal: Proposal


@dataclass(frozen=True)
class ConfirmPayload:
    """Award accepted: resources reserved on the winner."""

    session_id: str
    task_id: str
    reservation_id: int


@dataclass(frozen=True)
class RefusePayload:
    """Award declined: the node can no longer serve the proposed level."""

    session_id: str
    task_id: str
    reason: str

"""The QoS Provider agent: answers CFPs, honours awards.

Step 2 of the paper's algorithm: *"Each QoS Provider contact its Resource
Managers and reply with a multi-attribute proposal."* On a CFP the agent
runs the Section 5 formulation heuristic against its node's current
headroom and replies with one proposal per servable task. On an AWARD it
re-checks admission (headroom may have moved) and reserves, confirming or
refusing.
"""

from __future__ import annotations

from typing import Optional

from repro.agents.base import Agent
from repro.agents.messages import (
    AWARD,
    CFP,
    CONFIRM,
    PROPOSE,
    REFUSE,
    AwardPayload,
    CFPPayload,
    ConfirmPayload,
    ProposePayload,
    RefusePayload,
)
from repro.core.negotiation import formulate_node_proposals
from repro.core.reward import PenaltyPolicy
from repro.errors import CapacityExceededError
from repro.network.messaging import Message, NetworkService
from repro.resources.kinds import ResourceKind
from repro.resources.node import Node
from repro.resources.provider import QoSProvider
from repro.sim.engine import Engine


class ProviderAgent(Agent):
    """Per-node negotiation responder.

    Args:
        engine: Simulation engine.
        node: The node this agent serves.
        network: Message delivery service.
        penalty: eq. 1 penalty policy used in formulation.
        propose_delay: Simulated think-time before replying to a CFP
            (models the Resource-Manager consultation latency).
    """

    def __init__(
        self,
        engine: Engine,
        node: Node,
        network: NetworkService,
        penalty: Optional[PenaltyPolicy] = None,
        propose_delay: float = 0.005,
        award_lease: Optional[float] = 120.0,
    ) -> None:
        super().__init__(engine, node, network)
        self.provider = QoSProvider(node)
        self.penalty = penalty
        self.propose_delay = propose_delay
        self.award_lease = award_lease
        self.leases_reclaimed = 0
        self.cfps_seen = 0
        self.cfps_relayed = 0
        self.awards_confirmed = 0
        self.awards_refused = 0
        self._sessions_heard: set[str] = set()
        self.on(CFP, self._handle_cfp)
        self.on(AWARD, self._handle_award)

    # -- CFP → PROPOSE ------------------------------------------------------

    def _handle_cfp(self, message: Message, now: float) -> None:
        payload: CFPPayload = message.payload
        if payload.session_id in self._sessions_heard:
            return  # duplicate copy from another relay path
        self._sessions_heard.add(payload.session_id)
        self.cfps_seen += 1
        organizer = payload.organizer or message.sender

        # Relayed-CFP extension: flood with a hop budget and dedupe.
        if payload.hops_remaining > 1 and self.node.willing:
            relayed = CFPPayload(
                session_id=payload.session_id,
                service=payload.service,
                reply_by=payload.reply_by,
                organizer=organizer,
                hops_remaining=payload.hops_remaining - 1,
            )
            self.cfps_relayed += self.broadcast(
                CFP, relayed, size_kb=message.size_kb
            )

        if not self.node.willing:
            return

        def reply(at: float) -> None:
            if not self.node.alive:
                return
            proposals = formulate_node_proposals(
                self.provider, payload.service.tasks, penalty=self.penalty, now=at
            )
            if not proposals:
                return  # nothing servable: stay silent, as the paper implies
            self.network.send_routed(
                self.node_id,
                organizer,
                PROPOSE,
                ProposePayload(session_id=payload.session_id, proposals=tuple(proposals)),
                size_kb=0.5 * len(proposals),
            )

        self.engine.schedule(self.propose_delay, reply)

    # -- AWARD → CONFIRM / REFUSE ---------------------------------------------

    def _handle_award(self, message: Message, now: float) -> None:
        payload: AwardPayload = message.payload
        holder = f"{payload.session_id}:{payload.task_id}"
        try:
            # The proposal froze its demand at formulation time; re-check
            # against *current* headroom (earlier awards may have taken
            # it) and reserve through the Resource Manager.
            demand = payload.proposal.demand
            if not self.provider.can_serve(demand):
                raise CapacityExceededError("headroom changed since proposal")
            # Leased grant: if our CONFIRM is lost and the organizer moves
            # on, the resources come back automatically at lease expiry.
            reservation = self.node.manager.reserve(
                holder, demand, now, ttl=self.award_lease
            )
            if self.award_lease is not None:
                self._schedule_lease_sweep(self.award_lease)
        except CapacityExceededError as exc:
            self.awards_refused += 1
            self.network.send_routed(
                self.node_id,
                message.sender,
                REFUSE,
                RefusePayload(
                    session_id=payload.session_id,
                    task_id=payload.task_id,
                    reason=str(exc),
                ),
            )
            return
        # Energy commit (rate kinds are held by the manager until release).
        joules = demand.get(ResourceKind.ENERGY)
        if joules > 0:
            self.node.consume_energy(joules)
        self.awards_confirmed += 1
        self.network.send_routed(
            self.node_id,
            message.sender,
            CONFIRM,
            ConfirmPayload(
                session_id=payload.session_id,
                task_id=payload.task_id,
                reservation_id=reservation.rid,
            ),
        )

    # -- lease maintenance -----------------------------------------------

    def _schedule_lease_sweep(self, delay: float) -> None:
        def sweep(now: float) -> None:
            reclaimed = self.node.manager.release_expired(now)
            if reclaimed:
                self.leases_reclaimed += reclaimed
                self.engine.tracer.emit(
                    now, "provider", "lease_reclaimed",
                    node=self.node_id, count=reclaimed,
                )
            nxt = self.node.manager.next_expiry()
            if nxt is not None:
                self.engine.schedule(max(nxt - now, 0.0) + 1e-9, sweep)

        self.engine.schedule(delay + 1e-9, sweep)

"""The Negotiation Organizer agent.

Paper Section 4.2: *"When a user requests a service, with its specific QoS
preferences, on a particular node the QoS Provider starts and guides all
the negotiation process. It plays the role of Negotiation Organizer."*

One :class:`NegotiationSession` per requested service:

1. broadcast the CFP (service description + preferences) to the one-hop
   neighborhood, with a proposal deadline;
2. collect PROPOSE replies until the deadline (late/duplicate replies are
   dropped);
3. per task, in service order: rank admissible proposals with the paper's
   selection triple, AWARD the best, await CONFIRM/REFUSE (with a
   timeout treated as refusal — the award or its reply may have been
   lost on the lossy channel), falling through the ranking on refusal;
4. finish with a :class:`~repro.core.negotiation.NegotiationOutcome`
   delivered to the ``on_complete`` callback.

The organizer's own node also answers the CFP: the requester can be a
coalition member ("may include the node that starts the negotiation"),
and its PROPOSE travels the loopback path at zero latency/loss.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set

from repro.agents.base import Agent
from repro.agents.messages import (
    AWARD,
    CFP,
    CONFIRM,
    PROPOSE,
    REFUSE,
    AwardPayload,
    CFPPayload,
    ConfirmPayload,
    ProposePayload,
    RefusePayload,
)
from repro.core.admissibility import is_admissible
from repro.core.coalition import Coalition, TaskAward
from repro.core.evaluation import BatchProposalEvaluator, WeightScheme
from repro.core.negotiation import (
    NegotiationOutcome,
    formulate_node_proposals,
    score_admissible,
)
from repro.core.proposal import Proposal
from repro.errors import NotConnectedError
from repro.core.selection import ScoredProposal, SelectionPolicy
from repro.network.messaging import Message, NetworkService
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.resources.provider import QoSProvider
from repro.services.service import Service
from repro.sim.engine import Engine
from repro.sim.events import EventHandle, Priority
from repro.sim.sequences import Sequence

_session_seq = Sequence()

CompletionCallback = Callable[[NegotiationOutcome], None]


class NegotiationSession:
    """State of one in-flight negotiation (one service)."""

    def __init__(
        self,
        session_id: str,
        service: Service,
        deadline: float,
        on_complete: Optional[CompletionCallback],
    ) -> None:
        self.session_id = session_id
        self.service = service
        self.deadline = deadline
        self.on_complete = on_complete
        self.proposals: Dict[str, List[Proposal]] = {
            t.task_id: [] for t in service.tasks
        }
        # Batched evaluators compiled per request (keyed by identity;
        # the service keeps every request alive for the session).
        self.evaluators: Dict[int, BatchProposalEvaluator] = {}
        self.responded: Set[str] = set()
        self.coalition = Coalition(service)
        self.unallocated: List[str] = []
        self.task_index = 0
        self.ranked: List[ScoredProposal] = []
        self.rank_pos = 0
        self.award_timer: Optional[EventHandle] = None
        self.closed = False
        self.proposals_received = 0
        self.protocol_messages = 0


class OrganizerAgent(Agent):
    """Negotiation Organizer running on the requester's node.

    Args:
        engine: Simulation engine.
        node: The requester's device.
        network: Message service.
        topology: Current topology (for communication costs).
        proposal_window: Seconds the organizer waits for proposals after
            broadcasting the CFP.
        award_timeout: Seconds to wait for CONFIRM/REFUSE before treating
            an award as refused (covers lost messages).
        selection: Winner-selection policy (default: the paper's triple).
        weights: eq. 3 weight scheme.
    """

    def __init__(
        self,
        engine: Engine,
        node: Node,
        network: NetworkService,
        topology: Topology,
        proposal_window: float = 0.5,
        award_timeout: float = 0.25,
        selection: Optional[SelectionPolicy] = None,
        weights: WeightScheme = WeightScheme.LINEAR,
        max_hops: int = 1,
    ) -> None:
        super().__init__(engine, node, network)
        self.topology = topology
        self.proposal_window = proposal_window
        self.award_timeout = award_timeout
        self.selection = selection if selection is not None else SelectionPolicy()
        self.weights = weights
        self.max_hops = max(1, int(max_hops))
        self.provider = QoSProvider(node)
        self.sessions: Dict[str, NegotiationSession] = {}
        self.on(PROPOSE, self._handle_propose)
        self.on(CONFIRM, self._handle_confirm)
        self.on(REFUSE, self._handle_refuse)

    # -- public API -----------------------------------------------------------

    def request_service(
        self,
        service: Service,
        on_complete: Optional[CompletionCallback] = None,
    ) -> NegotiationSession:
        """Start a negotiation for ``service`` (step 1: broadcast CFP)."""
        session_id = f"sess-{_session_seq.next()}"
        deadline = self.engine.now + self.proposal_window
        session = NegotiationSession(
            session_id=session_id,
            service=service,
            deadline=deadline,
            on_complete=on_complete,
        )
        self.sessions[session_id] = session
        payload = CFPPayload(
            session_id=session_id, service=service, reply_by=deadline,
            organizer=self.node_id, hops_remaining=self.max_hops,
        )
        copies = self.broadcast(CFP, payload, size_kb=2.0 + 0.5 * len(service.tasks))
        session.protocol_messages += copies

        # The organizer's own node answers the CFP locally (zero latency).
        local = formulate_node_proposals(self.provider, service.tasks, now=self.engine.now)
        if local:
            self._accept_proposals(session, self.node_id, local)

        self.engine.schedule(
            self.proposal_window,
            lambda now, sid=session_id: self._deadline(sid),
            priority=Priority.TIMER,
        )
        self.engine.tracer.emit(
            self.engine.now, "negotiation", "cfp",
            session=session_id, service=service.name, copies=copies,
        )
        return session

    # -- proposal collection ------------------------------------------------

    def _handle_propose(self, message: Message, now: float) -> None:
        payload: ProposePayload = message.payload
        session = self.sessions.get(payload.session_id)
        if session is None or session.closed:
            return
        if now > session.deadline or message.sender in session.responded:
            return  # late or duplicate — dropped
        self._accept_proposals(session, message.sender, payload.proposals)

    def _accept_proposals(
        self, session: NegotiationSession, sender: str, proposals: Sequence[Proposal]
    ) -> None:
        session.responded.add(sender)
        if sender != self.node_id:
            # One PROPOSE radio message carried this node's offers; the
            # organizer's own reply is local. Counting it here keeps
            # ``message_count`` aligned with the synchronous driver's.
            session.protocol_messages += 1
        for proposal in proposals:
            if proposal.task_id in session.proposals:
                session.proposals[proposal.task_id].append(proposal)
                session.proposals_received += 1

    # -- awarding -----------------------------------------------------------

    def _deadline(self, session_id: str) -> None:
        session = self.sessions.get(session_id)
        if session is None or session.closed:
            return
        self.engine.tracer.emit(
            self.engine.now, "negotiation", "deadline",
            session=session_id, proposals=session.proposals_received,
        )
        self._next_task(session)

    def _comm_cost(self, service: Service, node_id: str) -> float:
        try:
            if self.max_hops > 1:
                return self.topology.multihop_cost(service.requester, node_id)
            return self.topology.communication_cost(service.requester, node_id)
        except NotConnectedError:
            # The node drifted out of range since it proposed: its offer
            # is unreachable. Unknown node ids and other errors are bugs
            # and propagate.
            return float("inf")

    def _next_task(self, session: NegotiationSession) -> None:
        """Advance to awarding the next task (step 3 per task)."""
        if session.task_index >= len(session.service.tasks):
            self._finish(session)
            return
        task = session.service.tasks[session.task_index]
        admissible = [
            p for p in session.proposals[task.task_id]
            if is_admissible(task.request, p)
        ]
        scored = score_admissible(
            task.request, admissible, self.weights, session.evaluators,
            lambda nid: self._comm_cost(session.service, nid),
            set(session.coalition.members),
        )
        session.ranked = list(self.selection.rank(scored))
        session.rank_pos = 0
        self._try_next_candidate(session)

    def _try_next_candidate(self, session: NegotiationSession) -> None:
        task = session.service.tasks[session.task_index]
        if session.rank_pos >= len(session.ranked):
            session.unallocated.append(task.task_id)
            session.task_index += 1
            self._next_task(session)
            return
        scored = session.ranked[session.rank_pos]
        proposal = scored.proposal
        payload = AwardPayload(
            session_id=session.session_id, task_id=task.task_id, proposal=proposal
        )
        if proposal.node_id == self.node_id:
            # Local award: reserve directly, no messages.
            self._award_local(session, task, scored)
            return
        self.network.send_routed(
            self.node_id, proposal.node_id, AWARD, payload, size_kb=task.input_kb
        )
        session.protocol_messages += 1
        # The AWARD ships the task's input data; budget the timeout for
        # its transmission time across the hop budget (conservatively at
        # a quarter of nominal link rate) on top of the base timeout.
        transfer_budget = (task.input_kb / 1250.0) * max(self.max_hops, 1)
        session.award_timer = self.engine.schedule(
            self.award_timeout + transfer_budget,
            lambda now, sid=session.session_id: self._award_timeout(sid),
            priority=Priority.TIMER,
        )

    def _award_local(self, session: NegotiationSession, task, scored: ScoredProposal) -> None:
        from repro.errors import CapacityExceededError

        try:
            reservation, demand = self.provider.reserve_for(
                f"{session.session_id}:{task.task_id}",
                task.demand_model,
                scored.proposal.values,
                self.engine.now,
            )
        except CapacityExceededError:
            session.rank_pos += 1
            self._try_next_candidate(session)
            return
        self._record_award(session, task.task_id, scored, reservation, demand)

    def _record_award(self, session, task_id, scored, reservation, demand) -> None:
        session.coalition.add_award(
            TaskAward(
                task_id=task_id,
                node_id=scored.proposal.node_id,
                proposal=scored.proposal,
                distance=scored.distance,
                comm_cost=scored.comm_cost,
                demand=demand,
                reservation=reservation,
            )
        )
        session.task_index += 1
        self._next_task(session)

    def _cancel_timer(self, session: NegotiationSession) -> None:
        if session.award_timer is not None:
            session.award_timer.cancel()
            session.award_timer = None

    def _award_timeout(self, session_id: str) -> None:
        session = self.sessions.get(session_id)
        if session is None or session.closed:
            return
        session.award_timer = None
        self.engine.tracer.emit(
            self.engine.now, "negotiation", "award_timeout",
            session=session_id,
            node=session.ranked[session.rank_pos].proposal.node_id,
        )
        session.rank_pos += 1
        self._try_next_candidate(session)

    def _handle_confirm(self, message: Message, now: float) -> None:
        payload: ConfirmPayload = message.payload
        session = self.sessions.get(payload.session_id)
        if session is None or session.closed or session.task_index >= len(session.service.tasks):
            return
        task = session.service.tasks[session.task_index]
        if payload.task_id != task.task_id:
            return  # stale confirm for an already-resolved award
        scored = session.ranked[session.rank_pos]
        if scored.proposal.node_id != message.sender:
            return
        self._cancel_timer(session)
        # The remote reservation lives on the provider's manager; the
        # organizer records the demand it was promised.
        self._record_award(session, task.task_id, scored, None, scored.proposal.demand)

    def _handle_refuse(self, message: Message, now: float) -> None:
        payload: RefusePayload = message.payload
        session = self.sessions.get(payload.session_id)
        if session is None or session.closed or session.task_index >= len(session.service.tasks):
            return
        task = session.service.tasks[session.task_index]
        if payload.task_id != task.task_id:
            return
        scored = session.ranked[session.rank_pos]
        if scored.proposal.node_id != message.sender:
            return
        self._cancel_timer(session)
        session.rank_pos += 1
        self._try_next_candidate(session)

    # -- completion -----------------------------------------------------------

    def _finish(self, session: NegotiationSession) -> None:
        session.closed = True
        outcome = NegotiationOutcome(
            service=session.service,
            coalition=session.coalition,
            unallocated=session.unallocated,
            candidates=tuple(sorted(session.responded)),
            proposals_received=session.proposals_received,
            message_count=session.protocol_messages,
        )
        self.engine.tracer.emit(
            self.engine.now, "negotiation", "complete",
            session=session.session_id, success=outcome.success,
            members=len(session.coalition.members),
        )
        if session.on_complete is not None:
            session.on_complete(outcome)

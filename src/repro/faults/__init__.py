"""Seed-deterministic fault injection (``repro.faults``).

Three pieces:

* :mod:`repro.faults.plan` — the declarative, frozen
  :class:`~repro.faults.plan.FaultPlan` (link, node and agent faults
  plus the hardened retry policy);
* :mod:`repro.faults.injector` — the
  :class:`~repro.faults.injector.FaultInjector` that executes a plan at
  the existing seams (channel wrapper, node liveness, topology
  overlays, negotiation), behind the ``faults`` feature switch;
* :mod:`repro.faults.report` — the
  :class:`~repro.faults.report.ResilienceReport` summarizing
  availability, recovery times, retries and the degraded-vs-dropped
  split from session transition traces.

See ``docs/faults.md`` for the fault model catalog and the determinism
contract.
"""

from repro.faults.injector import (
    FaultInjector,
    FaultyChannel,
    make_injector,
)
from repro.faults.plan import (
    EMPTY_PLAN,
    AgentFaults,
    Brownout,
    CrashHazard,
    DelaySpike,
    FaultPlan,
    GilbertElliott,
    Partition,
    RetryPolicy,
)
from repro.faults.report import ResilienceReport

__all__ = [
    "AgentFaults",
    "Brownout",
    "CrashHazard",
    "DelaySpike",
    "EMPTY_PLAN",
    "FaultInjector",
    "FaultPlan",
    "FaultyChannel",
    "GilbertElliott",
    "Partition",
    "ResilienceReport",
    "RetryPolicy",
    "make_injector",
]

"""Resilience accounting: what sessions lived through, summarized.

:class:`ResilienceReport` condenses the per-session transition traces
(:attr:`repro.sessions.lifecycle.Session.transitions`) into the
robustness metrics the E23 fault sweeps report:

* **availability** — the fraction of admitted-session time spent in
  ``OPERATING`` (time in ``DEGRADED``/``RENEGOTIATING`` counts against
  it; the denominator is each session's span from first ``OPERATING``
  to its terminal state);
* **recovery times** — durations of every degradation episode that
  ended back in ``OPERATING`` (whether by partition heal or successful
  renegotiation); episodes that ended in ``DROPPED``/``CLOSED`` are not
  recoveries and appear in the split instead;
* **retries spent** — award-handshake retransmissions and their total
  simulated backoff delay, accumulated across admission and
  renegotiation rounds;
* **degraded-vs-dropped split** — how many admitted sessions ever
  degraded, and of all admitted how many were dropped vs closed.

Everything is an exact, event-driven function of the traces — no
sampling — so a report is as deterministic as the run it describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.sessions.lifecycle import Session, SessionState


@dataclass(frozen=True)
class ResilienceReport:
    """Robustness metrics for one run's sessions.

    Attributes:
        admitted: Sessions whose admission succeeded.
        closed: Admitted sessions that streamed their full span.
        dropped: Admitted sessions torn down mid-stream.
        degraded_sessions: Admitted sessions that entered ``DEGRADED``
            at least once.
        operating_time: Total simulated time admitted sessions spent in
            ``OPERATING``.
        active_time: Total admitted-session time (first ``OPERATING``
            to terminal state) — the availability denominator.
        recovery_times: Durations of degradation episodes that ended
            back in ``OPERATING``, in event order.
        award_retries: Award-handshake retransmissions across all
            negotiation rounds.
        retry_delay: Total simulated backoff delay those retries spent.
    """

    admitted: int
    closed: int
    dropped: int
    degraded_sessions: int
    operating_time: float
    active_time: float
    recovery_times: Tuple[float, ...]
    award_retries: int
    retry_delay: float

    @property
    def availability(self) -> float:
        """Fraction of admitted-session time in ``OPERATING`` (1.0 when
        nothing was admitted — nothing was ever unavailable)."""
        if self.active_time <= 0.0:
            return 1.0
        return self.operating_time / self.active_time

    @property
    def recovered(self) -> int:
        """Degradation episodes that ended back in ``OPERATING``."""
        return len(self.recovery_times)

    @property
    def mean_recovery(self) -> float:
        """Mean recovery time (0.0 when nothing recovered)."""
        if not self.recovery_times:
            return 0.0
        return sum(self.recovery_times) / len(self.recovery_times)

    def metrics(self) -> Dict[str, float]:
        """The flat metric row the E23 sweep reports (fixed keys)."""
        return {
            "admitted": float(self.admitted),
            "availability": self.availability,
            "mean_recovery_s": self.mean_recovery,
            "recovered": float(self.recovered),
            "degraded_sessions": float(self.degraded_sessions),
            "dropped": float(self.dropped),
            "award_retries": float(self.award_retries),
            "retry_delay_s": self.retry_delay,
        }

    @classmethod
    def from_sessions(cls, sessions: Sequence[Session]) -> "ResilienceReport":
        """Fold a run's sessions (admitted or not) into one report.

        Only admitted sessions contribute time; each one's trace is
        integrated from its first ``OPERATING`` entry to its terminal
        transition (the driver runs to quiescence, so every admitted
        session has one).
        """
        admitted = closed = dropped = degraded_sessions = 0
        operating_time = active_time = 0.0
        recovery_times: list = []
        award_retries = 0
        retry_delay = 0.0
        for session in sessions:
            award_retries += session.award_retries
            retry_delay += session.retry_delay
            if not session.admitted:
                continue
            admitted += 1
            if session.state is SessionState.CLOSED:
                closed += 1
            elif session.state is SessionState.DROPPED:
                dropped += 1
            start = None
            degraded_at = None
            ever_degraded = False
            for i, (t, state) in enumerate(session.transitions):
                if state is SessionState.OPERATING and start is None:
                    start = t
                if start is None:
                    continue
                # Time in this state runs to the next transition (the
                # terminal state has no successor and spans no time).
                if i + 1 < len(session.transitions):
                    span = session.transitions[i + 1][0] - t
                    if state is SessionState.OPERATING:
                        operating_time += span
                if state is SessionState.DEGRADED:
                    ever_degraded = True
                    if degraded_at is None:
                        degraded_at = t
                elif state is SessionState.OPERATING and degraded_at is not None:
                    recovery_times.append(t - degraded_at)
                    degraded_at = None
            if ever_degraded:
                degraded_sessions += 1
            if start is not None and session.ended_at is not None:
                active_time += session.ended_at - start
        return cls(
            admitted=admitted,
            closed=closed,
            dropped=dropped,
            degraded_sessions=degraded_sessions,
            operating_time=operating_time,
            active_time=active_time,
            recovery_times=tuple(recovery_times),
            award_retries=award_retries,
            retry_delay=retry_delay,
        )

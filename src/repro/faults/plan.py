"""Declarative fault plans: what goes wrong, when, and how badly.

A :class:`FaultPlan` is a frozen value describing every fault a run
injects — link faults (Gilbert–Elliott burst loss, delay spikes,
partitions), node faults (crash/recover hazard, battery brownout) and
agent faults (dropped/stale PROPOSE, refuse-after-award) — plus the
:class:`RetryPolicy` the hardened negotiation paths use to survive
them. Like :class:`~repro.sessions.policy.SessionPolicy`, a plan never
holds RNG state: every random draw the plan implies is made by the
:class:`~repro.faults.injector.FaultInjector` from named child streams
of the run's :class:`~repro.sim.rng.RngRegistry`, so a faulted run
stays a pure function of its seed and :data:`EMPTY_PLAN` is
bit-identical to running without the subsystem at all.

Closed forms
------------
The Gilbert–Elliott chain's stationary distribution anchors the
property tests: with transition probabilities ``p_gb`` (good → bad)
and ``p_bg`` (bad → good), the stationary probability of the bad state
is ``p_gb / (p_gb + p_bg)`` and the expected per-message loss rate is
the loss probabilities' stationary mixture
(:meth:`GilbertElliott.stationary_loss`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.workloads.rates import RateShape


def _check_probability(name: str, value: float) -> None:
    if not (0.0 <= value <= 1.0):
        raise ValueError(f"{name} must be in [0, 1], got {value}")


@dataclass(frozen=True)
class GilbertElliott:
    """Two-state burst-loss model for a link (Gilbert–Elliott).

    Each transmitted message first advances the link's two-state
    Markov chain (good ↔ bad), then is lost with the current state's
    loss probability. Bursts arise naturally: a small ``p_bg`` keeps
    the chain in the bad state for runs of messages.

    Attributes:
        p_gb: Per-message probability of moving good → bad.
        p_bg: Per-message probability of moving bad → good.
        loss_good: Loss probability while in the good state.
        loss_bad: Loss probability while in the bad state.
    """

    p_gb: float = 0.01
    p_bg: float = 0.3
    loss_good: float = 0.0
    loss_bad: float = 0.8

    def __post_init__(self) -> None:
        _check_probability("p_gb", self.p_gb)
        _check_probability("p_bg", self.p_bg)
        _check_probability("loss_good", self.loss_good)
        _check_probability("loss_bad", self.loss_bad)

    @property
    def stationary_bad(self) -> float:
        """Stationary probability of the bad state (0 when the chain
        never leaves good)."""
        total = self.p_gb + self.p_bg
        return self.p_gb / total if total > 0 else 0.0

    @property
    def stationary_loss(self) -> float:
        """Expected per-message loss rate under the stationary
        distribution — the closed form the property tests pin."""
        pi_bad = self.stationary_bad
        return (1.0 - pi_bad) * self.loss_good + pi_bad * self.loss_bad


@dataclass(frozen=True)
class DelaySpike:
    """A window of extra per-message delay (congestion, interference).

    Deterministic — no RNG: every message transmitted in
    ``[start, start + duration)`` pays ``extra_delay`` seconds on top
    of the channel's own latency.
    """

    start: float
    duration: float
    extra_delay: float

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0 or self.extra_delay < 0:
            raise ValueError(
                f"delay spike needs start >= 0, duration > 0, "
                f"extra_delay >= 0, got {self}"
            )

    def active_at(self, now: float) -> bool:
        return self.start <= now < self.start + self.duration


@dataclass(frozen=True)
class Partition:
    """A scheduled bidirectional partition between two node sets.

    From ``start`` every direct link between a node of ``group_a`` and
    a node of ``group_b`` is blocked (both directions); the partition
    heals at ``start + duration`` and the blocked links come back
    exactly as the radio model dictates — routes after the heal are
    bit-identical to a never-partitioned topology (the property test
    in ``tests/test_faults.py``). Deterministic — no RNG.
    """

    start: float
    duration: float
    group_a: Tuple[str, ...]
    group_b: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.start < 0 or self.duration <= 0:
            raise ValueError(
                f"partition needs start >= 0 and duration > 0, got {self}"
            )
        object.__setattr__(self, "group_a", tuple(self.group_a))
        object.__setattr__(self, "group_b", tuple(self.group_b))
        if not self.group_a or not self.group_b:
            raise ValueError("partition groups must both be non-empty")
        overlap = set(self.group_a) & set(self.group_b)
        if overlap:
            raise ValueError(
                f"partition groups overlap: {sorted(overlap)}"
            )

    @property
    def heal_at(self) -> float:
        return self.start + self.duration

    def cross_pairs(self) -> Tuple[Tuple[str, str], ...]:
        """Every blocked (a, b) pair, in deterministic order."""
        return tuple(
            (a, b) for a in self.group_a for b in self.group_b
        )


@dataclass(frozen=True)
class CrashHazard:
    """Crash (and optional recover) events from an inhomogeneous
    Poisson hazard stream.

    Event times come from an
    :class:`~repro.workloads.arrivals.InhomogeneousPoissonProcess`
    over ``shape`` (a :class:`~repro.workloads.rates.RateShape`, so the
    hazard can ramp, cycle or spike); each event crashes one victim
    drawn uniformly from the eligible (non-protected) nodes. With
    ``recover_after`` set, the victim reboots that many seconds later
    (battery-guarded: a node drained to death stays dead).

    All draws come from the injector's ``faults:crash`` stream — the
    schedule is replay-exact given the seed.
    """

    shape: RateShape
    recover_after: Optional[float] = None

    def __post_init__(self) -> None:
        if self.recover_after is not None and self.recover_after <= 0:
            raise ValueError(
                f"recover_after must be positive, got {self.recover_after}"
            )


@dataclass(frozen=True)
class Brownout:
    """A battery brownout: at ``time``, each target node's remaining
    battery is cut to ``fraction`` of its current charge.

    Deterministic — no RNG. Empty ``targets`` means every non-protected
    node. Nodes whose battery hits zero die exactly as they would from
    streaming drain (:meth:`repro.resources.node.Node.consume_energy`).
    """

    time: float
    fraction: float
    targets: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"brownout time must be >= 0, got {self.time}")
        _check_probability("fraction", self.fraction)
        object.__setattr__(self, "targets", tuple(self.targets))


@dataclass(frozen=True)
class AgentFaults:
    """Protocol-level misbehaviour during negotiation.

    Attributes:
        drop_propose: Probability a responding node's PROPOSE bundle is
            lost before the organizer sees it (the node formulated, the
            message vanished).
        stale_propose: Probability a node's PROPOSE is stale — the
            organizer evaluates it, but the award-time admission
            re-check rejects it (the state it was formulated against no
            longer holds), forcing fall-through down the ranking.
        refuse_award: Probability an awarded node refuses after the
            award — it never acknowledges, no matter how many retries,
            so the organizer releases the reservation and falls
            through.
    """

    drop_propose: float = 0.0
    stale_propose: float = 0.0
    refuse_award: float = 0.0

    def __post_init__(self) -> None:
        _check_probability("drop_propose", self.drop_propose)
        _check_probability("stale_propose", self.stale_propose)
        _check_probability("refuse_award", self.refuse_award)

    @property
    def empty(self) -> bool:
        return (
            self.drop_propose == 0.0
            and self.stale_propose == 0.0
            and self.refuse_award == 0.0
        )


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded deterministic exponential backoff for award handshakes.

    ``max_attempts`` total transmissions per award; failed attempt
    ``i`` (0-based) waits ``backoff(i)`` simulated seconds before the
    next. The schedule is a pure function of the attempt index — no
    jitter, no RNG — so retry accounting is replay-exact.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    factor: float = 2.0
    max_delay: float = 1.0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be >= 0")
        if self.factor < 1.0:
            raise ValueError(f"factor must be >= 1, got {self.factor}")

    def backoff(self, attempt: int) -> float:
        """Delay after failed attempt ``attempt`` (0-based), capped at
        ``max_delay``."""
        if attempt < 0:
            raise ValueError(f"attempt must be >= 0, got {attempt}")
        return min(self.base_delay * self.factor ** attempt, self.max_delay)


@dataclass(frozen=True)
class FaultPlan:
    """Everything a run injects, as one frozen declarative value.

    An all-defaults plan is *empty*: it schedules nothing, wraps
    nothing and consumes no RNG draws — running with it is bit-identical
    to running without the fault subsystem (the A/B gate in CI).
    ``retry`` configures the hardened award handshake and is not a
    fault, so it does not make a plan non-empty.
    """

    link: Optional[GilbertElliott] = None
    delay_spikes: Tuple[DelaySpike, ...] = ()
    partitions: Tuple[Partition, ...] = ()
    crashes: Optional[CrashHazard] = None
    brownouts: Tuple[Brownout, ...] = ()
    agents: Optional[AgentFaults] = None
    retry: RetryPolicy = RetryPolicy()

    def __post_init__(self) -> None:
        object.__setattr__(self, "delay_spikes", tuple(self.delay_spikes))
        object.__setattr__(self, "partitions", tuple(self.partitions))
        object.__setattr__(self, "brownouts", tuple(self.brownouts))

    @property
    def empty(self) -> bool:
        """Whether the plan injects nothing at all."""
        return (
            self.link is None
            and not self.delay_spikes
            and not self.partitions
            and self.crashes is None
            and not self.brownouts
            and (self.agents is None or self.agents.empty)
        )

    def replace(self, **changes) -> "FaultPlan":
        """A copy with fields changed (sweep helper, like
        :meth:`~repro.sessions.policy.SessionPolicy.replace`)."""
        return dataclasses.replace(self, **changes)


#: The canonical no-fault plan (what :class:`~repro.workloads.
#: contention.ContentionConfig` defaults to).
EMPTY_PLAN = FaultPlan()

"""The fault injector: a :class:`~repro.faults.plan.FaultPlan` made live.

:class:`FaultInjector` executes one plan against one run, at the
existing seams only:

* **channel** — :meth:`FaultInjector.wrap_channel` returns a
  :class:`FaultyChannel` that applies Gilbert–Elliott burst loss and
  delay spikes on top of a
  :class:`~repro.network.channel.ChannelModel`'s own latency/loss;
* **node liveness** — :meth:`FaultInjector.install` schedules crash /
  recover / brownout events on the driver's engine, driving
  :meth:`~repro.resources.node.Node.fail` and friends exactly like the
  caller-scheduled churn the driver already handles;
* **topology** — partitions block/unblock link overlays via
  :meth:`~repro.network.topology.Topology.block_links`;
* **negotiation** — the injector doubles as the ``faults`` argument of
  :func:`~repro.core.negotiation.negotiate`: dropped/stale PROPOSE
  filtering, and the award handshake with bounded deterministic
  exponential backoff.

Determinism contract: all randomness comes from three named child
streams of the run's registry — ``faults:link`` (burst-loss chains),
``faults:agent`` (PROPOSE/refusal draws) and ``faults:crash`` (hazard
times and victims). Streams are created lazily, only when the plan
component that needs them exists, and named streams are independently
derived — so an empty plan consumes no draws and perturbs nothing, and
adding one fault family never shifts another's draws.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.faults.plan import EMPTY_PLAN, FaultPlan
from repro.sim.rng import RngRegistry
from repro.workloads.arrivals import InhomogeneousPoissonProcess

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.proposal import Proposal
    from repro.network.channel import ChannelModel
    from repro.sessions.driver import SessionDriver

#: Feature switch (see :mod:`repro.features`): when ``False``,
#: :func:`~repro.workloads.contention.run_contention` ignores its
#: config's fault plan entirely. Snapshotted once per run.
USE_FAULTS = True


class FaultInjector:
    """Executes one :class:`~repro.faults.plan.FaultPlan` for one run.

    Args:
        plan: The declarative fault plan.
        registry: The run's RNG registry; the injector draws only from
            its ``faults:*`` child streams.
        horizon: Hazard-stream window (crash events beyond it are not
            generated; partitions/brownouts carry their own times).
        protected: Node ids exempt from crash/brownout victimhood
            (typically the requesters — a dead organizer is a different
            experiment).
    """

    def __init__(
        self,
        plan: FaultPlan,
        registry: RngRegistry,
        horizon: float = 0.0,
        protected: Iterable[str] = (),
    ) -> None:
        self.plan = plan
        self.registry = registry
        self.horizon = float(horizon)
        self.protected = frozenset(protected)
        self._link_rng: Optional[np.random.Generator] = None
        self._agent_rng: Optional[np.random.Generator] = None
        #: Per-directed-link Gilbert–Elliott state (True = bad).
        self._chains: Dict[Tuple[str, str], bool] = {}

    # -- streams (lazy: an absent fault family costs no stream) -----------

    def _link_stream(self) -> np.random.Generator:
        if self._link_rng is None:
            self._link_rng = self.registry.stream("faults:link")
        return self._link_rng

    def _agent_stream(self) -> np.random.Generator:
        if self._agent_rng is None:
            self._agent_rng = self.registry.stream("faults:agent")
        return self._agent_rng

    # -- link faults -------------------------------------------------------

    def link_survives(self, src: str, dst: str) -> bool:
        """Advance the (src → dst) burst-loss chain one message and
        decide survival. No-op (``True``, zero draws) without a link
        model."""
        ge = self.plan.link
        if ge is None:
            return True
        rng = self._link_stream()
        key = (src, dst)
        bad = self._chains.get(key, False)
        u = float(rng.random())
        bad = not (u < ge.p_bg) if bad else (u < ge.p_gb)
        self._chains[key] = bad
        loss = ge.loss_bad if bad else ge.loss_good
        return not (float(rng.random()) < loss)

    def spike_delay(self, now: float) -> float:
        """Extra latency from every delay spike active at ``now``
        (deterministic — no draws)."""
        return sum(
            spike.extra_delay
            for spike in self.plan.delay_spikes
            if spike.active_at(now)
        )

    def wrap_channel(self, channel: "ChannelModel", clock) -> "FaultyChannel":
        """A transmit-compatible wrapper applying link faults on top of
        ``channel``. ``clock`` is a zero-argument callable returning the
        current simulated time (usually ``lambda: engine.now``)."""
        return FaultyChannel(channel, self, clock)

    # -- agent faults (the ``faults`` argument of negotiate()) -------------

    def filter_proposals(
        self,
        requester: str,
        audience: Tuple[str, ...],
        by_task: Dict[str, List["Proposal"]],
    ) -> Tuple[Dict[str, List["Proposal"]], frozenset]:
        """Apply dropped/stale PROPOSE faults to one negotiation's
        collected proposals.

        Per responding remote node, in audience order: a drop draw
        (the bundle vanished), a burst-loss draw on the PROPOSE link,
        then a staleness draw. Returns the surviving proposals and the
        stale node set (evaluated normally, rejected at award time).
        The requester's own proposals never traverse radio and are
        exempt. Zero draws when the plan has no agent or link faults.
        """
        agents = self.plan.agents
        drop_p = agents.drop_propose if agents is not None else 0.0
        stale_p = agents.stale_propose if agents is not None else 0.0
        if drop_p == 0.0 and stale_p == 0.0 and self.plan.link is None:
            return by_task, frozenset()
        responding = [
            node_id
            for node_id in audience
            if node_id != requester
            and any(
                p.node_id == node_id
                for plist in by_task.values()
                for p in plist
            )
        ]
        dropped: set = set()
        stale: set = set()
        for node_id in responding:
            if drop_p > 0.0 and float(self._agent_stream().random()) < drop_p:
                dropped.add(node_id)
                continue
            if not self.link_survives(node_id, requester):
                dropped.add(node_id)
                continue
            if stale_p > 0.0 and float(self._agent_stream().random()) < stale_p:
                stale.add(node_id)
        if dropped:
            by_task = {
                task_id: [p for p in plist if p.node_id not in dropped]
                for task_id, plist in by_task.items()
            }
        return by_task, frozenset(stale)

    def award_handshake(
        self, requester: str, winner: str
    ) -> Tuple[bool, int, float]:
        """The hardened step-4 handshake: AWARD out, ACK back.

        Returns ``(acked, retries, backoff_delay)``. A refusing winner
        (``AgentFaults.refuse_award``) never acks regardless of
        retries. Otherwise each attempt transmits the award and awaits
        the ack over the burst-loss chains; a lost round waits the
        retry policy's deterministic exponential backoff (simulated
        time, returned for accounting) and retries, up to the bounded
        budget — then the caller falls through down the ranking.
        """
        agents = self.plan.agents
        if agents is not None and agents.refuse_award > 0.0:
            if float(self._agent_stream().random()) < agents.refuse_award:
                return False, 0, 0.0
        if self.plan.link is None:
            return True, 0, 0.0
        policy = self.plan.retry
        retries = 0
        delay = 0.0
        for attempt in range(policy.max_attempts):
            if self.link_survives(requester, winner) and self.link_survives(
                winner, requester
            ):
                return True, retries, delay
            if attempt + 1 < policy.max_attempts:
                retries += 1
                delay += policy.backoff(attempt)
        return False, retries, delay

    # -- node faults -------------------------------------------------------

    def crash_schedule(
        self, node_ids: Tuple[str, ...]
    ) -> Tuple[Tuple[float, str], ...]:
        """The hazard stream realized: ``(time, victim)`` crash events
        inside the horizon, replay-exact given the seed.

        Times come from the inhomogeneous Poisson process over the
        hazard shape; each event's victim is drawn uniformly from the
        eligible (non-protected) ids. Consumes the ``faults:crash``
        stream; call at most once per run.
        """
        hazard = self.plan.crashes
        if hazard is None:
            return ()
        eligible = sorted(
            node_id for node_id in node_ids if node_id not in self.protected
        )
        if not eligible:
            return ()
        rng = self.registry.stream("faults:crash")
        times = InhomogeneousPoissonProcess(hazard.shape).arrivals(
            rng, self.horizon
        )
        return tuple(
            (t, eligible[int(rng.integers(0, len(eligible)))]) for t in times
        )

    # -- installation ------------------------------------------------------

    def install(self, driver: "SessionDriver") -> None:
        """Wire the plan into a session driver's run.

        Schedules partitions (block at start, heal at end), hazard
        crashes (with optional recovery) and brownouts on the driver's
        engine, and registers this injector as the driver's negotiation
        fault context. Partition support needs a topology with link
        overlays (:class:`~repro.network.topology.Topology`); the
        sharded facade does not carry one yet.
        """
        driver.faults = self
        engine = driver.engine
        topology = driver.topology
        if self.plan.partitions and not hasattr(topology, "block_links"):
            raise NotImplementedError(
                "partition faults need a Topology with link overlays; "
                f"{type(topology).__name__} has none (sharded clusters "
                "are not partition-aware yet)"
            )
        for partition in self.plan.partitions:
            pairs = partition.cross_pairs()

            def _block(now: float, pairs=pairs) -> None:
                topology.block_links(pairs)
                engine.tracer.emit(
                    now, "faults", "partition", links=len(pairs)
                )

            def _heal(now: float, pairs=pairs) -> None:
                topology.unblock_links(pairs)
                engine.tracer.emit(now, "faults", "heal", links=len(pairs))

            engine.schedule_at(partition.start, _block)
            engine.schedule_at(partition.heal_at, _heal)

        hazard = self.plan.crashes
        if hazard is not None:
            for crash_at, victim in self.crash_schedule(topology.node_ids):

                def _crash(now: float, victim=victim) -> None:
                    node = topology.node(victim)
                    if not node.alive:
                        return
                    node.fail()
                    topology.rebuild()
                    engine.tracer.emit(now, "faults", "crash", node=victim)
                    if hazard.recover_after is not None:
                        engine.schedule(
                            hazard.recover_after,
                            lambda t, victim=victim: _recover(t, victim),
                        )

                def _recover(now: float, victim: str) -> None:
                    node = topology.node(victim)
                    if node.alive:
                        return
                    node.recover()
                    if node.alive:  # battery-guarded: drained stays dead
                        topology.rebuild()
                        engine.tracer.emit(
                            now, "faults", "recover", node=victim
                        )

                engine.schedule_at(crash_at, _crash)

        for brownout in self.plan.brownouts:
            targets = brownout.targets or tuple(
                sorted(
                    node_id
                    for node_id in topology.node_ids
                    if node_id not in self.protected
                )
            )

            def _brownout(now: float, brownout=brownout, targets=targets) -> None:
                died = False
                for node_id in targets:
                    node = topology.node(node_id)
                    if not node.alive or not np.isfinite(node.battery):
                        continue
                    node.consume_energy(
                        node.battery * (1.0 - brownout.fraction)
                    )
                    died = died or not node.alive
                if died:
                    topology.rebuild()
                engine.tracer.emit(
                    now, "faults", "brownout",
                    fraction=brownout.fraction, targets=len(targets),
                )

            engine.schedule_at(brownout.time, _brownout)


class FaultyChannel:
    """A :class:`~repro.network.channel.ChannelModel` wrapper applying
    link faults per transmitted message.

    The inner channel decides its own latency/loss first (its draws are
    untouched, keeping fault-free streams stable); a surviving message
    then runs the injector's burst-loss chain and pays any active delay
    spike. Unknown attributes delegate to the inner channel, so the
    wrapper is drop-in wherever a channel is expected.
    """

    def __init__(self, inner: "ChannelModel", injector: FaultInjector, clock) -> None:
        self.inner = inner
        self.injector = injector
        self.clock = clock

    def transmit(self, src: str, dst: str, size_kb: float) -> Optional[float]:
        latency = self.inner.transmit(src, dst, size_kb)
        if latency is None or src == dst:  # local delivery never faults
            return latency
        if not self.injector.link_survives(src, dst):
            return None
        return latency + self.injector.spike_delay(float(self.clock()))

    def __getattr__(self, name: str):
        return getattr(self.inner, name)


def make_injector(
    plan: Optional[FaultPlan],
    registry: RngRegistry,
    horizon: float,
    protected: Iterable[str] = (),
) -> Optional[FaultInjector]:
    """The one gate for run wiring: an injector when the ``faults``
    switch is on and the plan injects anything, else ``None`` (the
    bit-identical no-op path). Snapshot the switch here, once per run.
    """
    if plan is None or plan is EMPTY_PLAN or plan.empty:
        return None
    if not USE_FAULTS:
        return None
    return FaultInjector(plan, registry, horizon=horizon, protected=protected)


__all__ = [
    "FaultInjector",
    "FaultyChannel",
    "USE_FAULTS",
    "make_injector",
]

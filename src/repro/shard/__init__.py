"""Spatially-partitioned cluster simulation (the E22 subsystem).

The paper's protocol targets large ad-hoc deployments; this package
joins the two halves the ROADMAP names — the numpy topology arena and
the shared work-queue scheduler — into a sharded simulator:

* :mod:`repro.shard.partition` — the :class:`ShardGrid` spatial
  partition and the deterministic gateway backhaul paths;
* :mod:`repro.shard.cluster` — :class:`ShardedCluster`, per-shard
  topology arenas (independent epochs, delta rebuilds) behind the
  duck-typed ``Topology`` facade, with gateway election and
  cross-shard routing; gated by the :data:`USE_SHARDING` feature
  switch (``shard`` in :mod:`repro.features`);
* :mod:`repro.shard.sharedmem` — read-only table publication across
  scheduler workers (``multiprocessing.shared_memory`` with fork-page
  reuse fallback);
* :mod:`repro.shard.driver` — :class:`ShardedDriver` (streaming
  sessions with delta topology maintenance) and
  :func:`run_sharded_contention`, the sharded twin of
  :func:`repro.workloads.run_contention` — bit-identical to it on a
  single shard.

See ``docs/sharding.md`` for the partitioning scheme, the gateway cost
model and the shared-memory lifecycle.
"""

from repro.shard.cluster import USE_SHARDING, ShardedCluster
from repro.shard.driver import (
    ShardedDriver,
    fleet_from_tables,
    fleet_tables,
    run_sharded_contention,
)
from repro.shard.partition import DEFAULT_SHARD_OCCUPANCY, ShardGrid
from repro.shard.sharedmem import SharedTables, attach, publish, release

__all__ = [
    "USE_SHARDING",
    "ShardedCluster",
    "ShardedDriver",
    "ShardGrid",
    "DEFAULT_SHARD_OCCUPANCY",
    "SharedTables",
    "attach",
    "publish",
    "release",
    "fleet_tables",
    "fleet_from_tables",
    "run_sharded_contention",
]

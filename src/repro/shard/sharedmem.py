"""Read-only table sharing across scheduler workers.

The shared work-queue scheduler (:mod:`repro.experiments.parallel`)
forks its workers, so anything the parent computed before the fork is
inherited copy-on-write. That already avoids *re-deriving* read-only
tables per process — but only by accident of the fork start method, and
pages get duplicated as soon as Python's reference counting touches the
objects. This module makes the sharing explicit and start-method-proof:

* :func:`publish` pins a named bundle of numpy arrays either into a
  ``multiprocessing.shared_memory`` segment (``backend="shm"``: one
  mapping shared by every attached process, refcounting touches only
  the tiny view objects) or into an in-process registry
  (``backend="fork"``: plain fork-page reuse, the fallback when the
  platform offers no ``/dev/shm``-style segments);
* :func:`attach` resolves the bundle by name — a dictionary hit in the
  publishing process and its forked children, a by-name segment attach
  from any other process (shm backend only);
* every array comes back with ``writeable=False``: these are tables,
  not mailboxes — workers mutate their own cheap per-run objects
  (nodes, providers) built *from* the tables.

Segment layout (shm backend): an 8-byte little-endian header length,
a JSON header mapping ``key -> [dtype, shape, offset, nbytes]``, then
the raw array bytes back to back. The layout is self-describing, so
:func:`attach` needs nothing but the name.

The E22 plan builder publishes per-seed fleet/placement tables once in
the parent; every ``(point, seed)`` replication attaches instead of
re-drawing them (see :func:`repro.shard.driver.fleet_tables`).
"""

from __future__ import annotations

import atexit
import json
import os
import re
import struct
from dataclasses import dataclass, field
from typing import Dict, Iterator, Mapping, Optional, Tuple

import numpy as np

try:  # pragma: no cover - present on every supported platform
    from multiprocessing import shared_memory as _shm
except ImportError:  # pragma: no cover - exotic builds only
    _shm = None

#: In-process bundle registry. Forked workers inherit it, which is the
#: whole point of the ``fork`` backend — and an O(1) fast path for the
#: ``shm`` backend inside the publishing process tree.
_REGISTRY: Dict[str, "SharedTables"] = {}

_NAME_RE = re.compile(r"[^A-Za-z0-9_.-]")


def _segment_name(name: str) -> str:
    """A platform-safe shared-memory segment name for a bundle name."""
    return "repro_" + _NAME_RE.sub("_", name)


@dataclass
class SharedTables:
    """A named bundle of read-only numpy tables.

    Iteration and ``[]`` give read-only views; ``backend`` reports how
    the bytes are shared (``"shm"`` or ``"fork"``).
    """

    name: str
    backend: str
    _arrays: Dict[str, np.ndarray]
    _segment: Optional[object] = None
    #: PID that owns the segment; forked children inherit the bundle but
    #: must never unlink it out from under the parent.
    _owner_pid: int = field(default=-1)

    def __getitem__(self, key: str) -> np.ndarray:
        return self._arrays[key]

    def __contains__(self, key: str) -> bool:
        return key in self._arrays

    def __iter__(self) -> Iterator[str]:
        return iter(self._arrays)

    def keys(self) -> Tuple[str, ...]:
        return tuple(self._arrays)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    def close(self, unlink: bool = False) -> None:
        """Detach from the segment; ``unlink=True`` (owner only)
        destroys it. Fork-backend bundles just drop their arrays."""
        self._arrays = {}
        segment = self._segment
        self._segment = None
        if segment is not None:
            try:
                segment.close()
                if unlink and self._owner_pid == os.getpid():
                    segment.unlink()
            except (OSError, FileNotFoundError):  # pragma: no cover
                pass


def _freeze(arrays: Mapping[str, np.ndarray]) -> Dict[str, np.ndarray]:
    out: Dict[str, np.ndarray] = {}
    for key, arr in arrays.items():
        frozen = np.ascontiguousarray(arr)
        if frozen is arr:
            frozen = arr.view()
        frozen.flags.writeable = False
        out[key] = frozen
    return out


def _pack(arrays: Mapping[str, np.ndarray]) -> Tuple[bytes, Dict[str, np.ndarray]]:
    """Serialize arrays into (segment bytes, per-key contiguous copies)."""
    header: Dict[str, list] = {}
    contiguous: Dict[str, np.ndarray] = {}
    offset = 0
    for key, arr in arrays.items():
        c = np.ascontiguousarray(arr)
        contiguous[key] = c
        header[key] = [c.dtype.str, list(c.shape), offset, c.nbytes]
        offset += c.nbytes
    head = json.dumps(header).encode("utf-8")
    return struct.pack("<Q", len(head)) + head, contiguous


def publish(
    name: str,
    arrays: Mapping[str, np.ndarray],
    backend: str = "auto",
) -> SharedTables:
    """Publish a read-only table bundle under ``name``.

    Re-publishing a name replaces the previous bundle (the old segment
    is unlinked). ``backend="auto"`` prefers ``shm`` and falls back to
    fork-page reuse when segments cannot be created.
    """
    if backend not in ("auto", "shm", "fork"):
        raise ValueError(f"unknown sharedmem backend {backend!r}")
    release(name)
    if backend in ("auto", "shm") and _shm is not None:
        try:
            head, contiguous = _pack(arrays)
            total = len(head) + sum(c.nbytes for c in contiguous.values())
            segment = _shm.SharedMemory(
                name=_segment_name(name), create=True, size=max(total, 1)
            )
            segment.buf[: len(head)] = head
            offset = len(head)
            views: Dict[str, np.ndarray] = {}
            for key, c in contiguous.items():
                view = np.ndarray(
                    c.shape, dtype=c.dtype, buffer=segment.buf, offset=offset
                )
                view[...] = c
                view.flags.writeable = False
                views[key] = view
                offset += c.nbytes
            bundle = SharedTables(
                name=name, backend="shm", _arrays=views,
                _segment=segment, _owner_pid=os.getpid(),
            )
            _REGISTRY[name] = bundle
            return bundle
        except OSError:
            if backend == "shm":
                raise
    bundle = SharedTables(name=name, backend="fork", _arrays=_freeze(arrays))
    _REGISTRY[name] = bundle
    return bundle


def attach(name: str) -> SharedTables:
    """Resolve a published bundle: registry hit in the publishing
    process tree (fork-page reuse), by-name segment attach elsewhere."""
    bundle = _REGISTRY.get(name)
    if bundle is not None:
        return bundle
    if _shm is None:
        raise KeyError(f"no published tables named {name!r}")
    try:
        segment = _shm.SharedMemory(name=_segment_name(name))
    except FileNotFoundError:
        raise KeyError(f"no published tables named {name!r}") from None
    (head_len,) = struct.unpack("<Q", bytes(segment.buf[:8]))
    header = json.loads(bytes(segment.buf[8 : 8 + head_len]).decode("utf-8"))
    base = 8 + head_len
    views: Dict[str, np.ndarray] = {}
    for key, (dtype, shape, offset, _nbytes) in header.items():
        view = np.ndarray(
            tuple(shape), dtype=np.dtype(dtype),
            buffer=segment.buf, offset=base + offset,
        )
        view.flags.writeable = False
        views[key] = view
    bundle = SharedTables(
        name=name, backend="shm", _arrays=views, _segment=segment,
    )
    _REGISTRY[name] = bundle
    return bundle


def release(name: str) -> None:
    """Drop a published bundle (unlinking its segment if owned)."""
    bundle = _REGISTRY.pop(name, None)
    if bundle is not None:
        bundle.close(unlink=True)


def published() -> Tuple[str, ...]:
    """Names currently registered in this process."""
    return tuple(_REGISTRY)


@atexit.register
def _cleanup() -> None:  # pragma: no cover - exercised at interpreter exit
    for name in list(_REGISTRY):
        release(name)

"""The sharded cluster: per-shard topology arenas behind one facade.

:class:`ShardedCluster` partitions a node fleet over a
:class:`~repro.shard.partition.ShardGrid` and gives every shard its own
:class:`~repro.network.topology.Topology` arena — each with its own
epoch counter, so neighbor/route caches invalidate **per shard** — while
presenting the exact duck-typed interface the negotiation layer and the
session driver consume (``node`` / ``neighbors`` / ``khop_neighbors`` /
``communication_cost`` / ``multihop_cost`` / ``rebuild``):

* **intra-shard** queries delegate to the home shard's vectorized arena
  (the existing fast path, untouched);
* **cross-shard** traffic is routed shard-local → gateway → gateway →
  shard-local: each shard elects the live node nearest its cell center
  as **gateway**, and the gateway-to-gateway backhaul costs
  ``hops × backhaul_hop_cost`` where ``hops`` is the Manhattan cell
  distance (see ``docs/sharding.md`` for the cost model);
* **mobility ticks** update only the distance-matrix rows of nodes that
  actually moved (:meth:`~repro.network.topology.Topology.update_positions`
  delta rebuilds), re-homing nodes that crossed a cell boundary;
* **liveness churn** marks only the victim's home shard dirty, so the
  driver's post-crash ``rebuild()`` rebuilds one shard, not the world.

With a 1 × 1 grid every query delegates to the single shard's arena and
the facade is bit-identical to the unsharded path — the degenerate case
:data:`USE_SHARDING` forces and the equivalence tests pin.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import NotConnectedError, UnknownNodeError
from repro.network.mobility import MobilityModel
from repro.network.radio import RadioModel
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.shard.partition import ShardGrid

#: Feature switch (see :mod:`repro.features`): when ``False``, every
#: :class:`ShardedCluster` collapses its grid to 1 × 1 at construction —
#: one shard holding the whole fleet, i.e. the unsharded semantics.
#: Snapshotted once per constructed cluster, like ``USE_VECTOR_TOPOLOGY``.
USE_SHARDING = True


class ShardedCluster:
    """A fleet partitioned into per-cell topology shards.

    Args:
        nodes: The full fleet, in fleet order (requesters first). Each
            shard's arena keeps this relative order, so intra-shard
            neighbor tuples and tie-breaks match the unsharded arena's.
        radio: Radio model shared by every shard.
        grid: The spatial partition (:meth:`ShardGrid.auto` is the usual
            source). Collapsed to 1 × 1 when :data:`USE_SHARDING` is off.
        backhaul_hop_cost: Communication cost per gateway-to-gateway
            backhaul hop. Defaults to the cost of a best-case radio hop
            (``1000 / nominal_bandwidth``) — a provisioned backhaul link
            is as cheap as the best in-cell link, never cheaper.
    """

    def __init__(
        self,
        nodes: Sequence[Node],
        radio: RadioModel,
        grid: ShardGrid,
        backhaul_hop_cost: Optional[float] = None,
    ) -> None:
        self.sharded = bool(USE_SHARDING)
        if not self.sharded:
            grid = ShardGrid(width=grid.width, height=grid.height, gx=1, gy=1)
        self.grid = grid
        self.radio = radio
        if backhaul_hop_cost is None:
            nominal = getattr(radio, "nominal_bandwidth", 0.0)
            backhaul_hop_cost = 1000.0 / nominal if nominal > 0 else 1.0
        self.backhaul_hop_cost = float(backhaul_hop_cost)
        self._nodes: Dict[str, Node] = {}
        self._home: Dict[str, int] = {}
        members: List[List[Node]] = [[] for _ in range(grid.n_shards)]
        for node in nodes:
            if node.node_id in self._nodes:
                raise ValueError(f"duplicate node id {node.node_id!r}")
            shard = grid.shard_of(*node.position)
            self._nodes[node.node_id] = node
            self._home[node.node_id] = shard
            members[shard].append(node)
        self.shards: Tuple[Topology, ...] = tuple(
            Topology(shard_nodes, radio) for shard_nodes in members
        )
        # Shards whose liveness changed since the last facade rebuild();
        # the driver's post-churn rebuild then touches only these.
        self._dirty: Set[int] = set()
        for node in self._nodes.values():
            node.add_liveness_watcher(self._mark_dirty)
        # Gateway elections, cached per (shard, shard epoch).
        self._gateways: Dict[int, Tuple[int, Optional[str]]] = {}

    # -- membership (Topology facade) --------------------------------------

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    @property
    def n_shards(self) -> int:
        return self.grid.n_shards

    @property
    def epoch(self) -> int:
        """Sum of the shard epochs — monotone, bumped by any change."""
        return sum(shard.epoch for shard in self.shards)

    def home_shard(self, node_id: str) -> int:
        """Current home shard of a node (re-homed on migration)."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return self._home[node_id]

    def shard_topology(self, shard: int) -> Topology:
        return self.shards[shard]

    def _mark_dirty(self, node: Node) -> None:
        shard = self._home.get(node.node_id)
        if shard is not None:
            self._dirty.add(shard)

    # -- intra-shard queries (delegate to the home arena) -------------------

    def neighbors(self, node_id: str) -> Tuple[str, ...]:
        """Shard-local direct neighbors — the CFP audience. Coalition
        negotiation stays on the home shard's vectorized fast path by
        construction; cross-shard links exist only between gateways."""
        return self.shards[self.home_shard(node_id)].neighbors(node_id)

    def khop_neighbors(self, node_id: str, k: int) -> Tuple[str, ...]:
        return self.shards[self.home_shard(node_id)].khop_neighbors(node_id, k)

    def connected(self, a: str, b: str) -> bool:
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa != sb:
            return False
        return self.shards[sa].connected(a, b)

    def link_bandwidth(self, a: str, b: str) -> float:
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa != sb:
            raise NotConnectedError(f"no link {a!r} <-> {b!r} (cross-shard)")
        return self.shards[sa].link_bandwidth(a, b)

    def link_loss(self, a: str, b: str) -> float:
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa != sb:
            raise NotConnectedError(f"no link {a!r} <-> {b!r} (cross-shard)")
        return self.shards[sa].link_loss(a, b)

    def edge_quality(self, a: str, b: str) -> Optional[Tuple[float, float]]:
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa != sb:
            return None
        return self.shards[sa].edge_quality(a, b)

    def communication_cost(self, a: str, b: str) -> float:
        """Direct-link cost; cross-shard pairs have no direct link and
        raise :class:`NotConnectedError` (callers treat that as an
        unreachable offer, exactly like an out-of-range pair)."""
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa != sb:
            raise NotConnectedError(f"no link {a!r} <-> {b!r} (cross-shard)")
        return self.shards[sa].communication_cost(a, b)

    # -- gateways and cross-shard routing -----------------------------------

    def gateway(self, shard: int) -> Optional[str]:
        """The shard's elected gateway: the live node nearest the cell
        center (ties broken by node id). ``None`` for a shard with no
        live nodes. Re-elected lazily whenever the shard's epoch moved —
        which covers gateway death, migration and membership churn."""
        topo = self.shards[shard]
        cached = self._gateways.get(shard)
        if cached is not None and cached[0] == topo.epoch:
            return cached[1]
        cx, cy = self.grid.cell_center(shard)
        best: Optional[str] = None
        best_key: Optional[Tuple[float, str]] = None
        for node in topo.nodes:
            if not node.alive:
                continue
            d = math.hypot(node.position[0] - cx, node.position[1] - cy)
            key = (d, node.node_id)
            if best_key is None or key < best_key:
                best, best_key = node.node_id, key
        self._gateways[shard] = (topo.epoch, best)
        return best

    def multihop_cost(self, a: str, b: str) -> float:
        """Best multi-hop cost. Intra-shard: the home arena's cached
        Dijkstra. Cross-shard: shard-local route to the source gateway,
        backhaul hops between cells, shard-local route from the target
        gateway — ``inf`` when either endpoint cannot reach its gateway
        or either shard has no live gateway."""
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa == sb:
            return self.shards[sa].multihop_cost(a, b)
        gwa, gwb = self.gateway(sa), self.gateway(sb)
        if gwa is None or gwb is None:
            return float("inf")
        ca = self.shards[sa].multihop_cost(a, gwa)
        cb = self.shards[sb].multihop_cost(gwb, b)
        return ca + self.grid.hops(sa, sb) * self.backhaul_hop_cost + cb

    def shortest_route(self, a: str, b: str) -> Optional[Tuple[str, ...]]:
        """The node sequence behind :meth:`multihop_cost`. Cross-shard
        routes stitch the shard-local legs around the gateways of every
        cell on the deterministic backhaul walk (cells without a live
        gateway contribute no relay node — the backhaul is modeled as
        infrastructure between the endpoint gateways)."""
        sa, sb = self.home_shard(a), self.home_shard(b)
        if sa == sb:
            return self.shards[sa].shortest_route(a, b)
        gwa, gwb = self.gateway(sa), self.gateway(sb)
        if gwa is None or gwb is None:
            return None
        leg_a = self.shards[sa].shortest_route(a, gwa)
        leg_b = self.shards[sb].shortest_route(gwb, b)
        if leg_a is None or leg_b is None:
            return None
        relays = [
            gw for cell in self.grid.grid_path(sa, sb)[1:-1]
            if (gw := self.gateway(cell)) is not None
        ]
        stitched: List[str] = []
        for nid in (*leg_a, *relays, *leg_b):
            if not stitched or stitched[-1] != nid:
                stitched.append(nid)
        return tuple(stitched)

    # -- maintenance ---------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute edges after churn. Only the shards whose liveness
        changed since the last call are rebuilt (the common case: one
        crash → one shard); with no dirty shard — an explicit external
        call after untracked changes — every shard is rebuilt, matching
        the unsharded ``rebuild()`` semantics conservatively."""
        dirty = sorted(self._dirty) if self._dirty else range(self.n_shards)
        self._dirty.clear()
        for shard in dirty:
            self.shards[shard].rebuild()

    def rebuild_all(self) -> None:
        """Unconditionally rebuild every shard."""
        self._dirty.clear()
        for shard in self.shards:
            shard.rebuild()

    def advance_mobility(
        self, mobility: MobilityModel, nodes: Sequence[Node], dt: float
    ) -> None:
        """One mobility tick: advance the model, re-home nodes that
        crossed a cell boundary (full rebuild of both affected shards),
        and delta-rebuild every other shard for just its movers."""
        before = {node.node_id: node.position for node in nodes}
        mobility.advance(nodes, dt)
        migrated: Set[int] = set()
        movers_by_shard: Dict[int, List[str]] = {}
        for node in nodes:
            if node.position == before[node.node_id]:
                continue
            nid = node.node_id
            old = self._home[nid]
            new = self.grid.shard_of(*node.position)
            if new != old:
                self.shards[old].remove_node(nid)
                self.shards[new].add_node(node)
                self._home[nid] = new
                migrated.add(old)
                migrated.add(new)
            else:
                movers_by_shard.setdefault(old, []).append(nid)
        for shard in sorted(migrated):
            self.shards[shard].rebuild()
            self._dirty.discard(shard)
        for shard, movers in sorted(movers_by_shard.items()):
            if shard in migrated:
                continue  # the full rebuild above already saw the moves
            # Either a pure row delta or (after untracked churn) its
            # full-rebuild fallback — both leave the arena current.
            self.shards[shard].update_positions(movers)
            self._dirty.discard(shard)

"""Spatial partitioning: the shard grid over the deployment area.

A :class:`ShardGrid` cuts the square deployment plane into ``gx × gy``
rectangular cells; each cell is one **cluster shard**. Nodes are homed
to the cell containing their position, every shard simulates its own
:class:`~repro.network.topology.Topology` arena, and cross-shard traffic
is carried between per-shard **gateway** nodes over a backhaul whose
cost is proportional to the Manhattan distance between cells (see
:mod:`repro.shard.cluster` and ``docs/sharding.md``).

:meth:`ShardGrid.auto` picks the grid so that

* cells are never narrower than one radio range (a finer grid would cut
  most direct links, making the shard approximation dominate), and
* shards stay near a target occupancy (the O(m²) per-shard arena cost is
  what sharding bounds).

At the historical scenario scales (≤ 64 nodes, area ≈ one radio range)
both bounds force a **1 × 1 grid**, so the sharded machinery degenerates
structurally to the single-cluster path — the basis of the bit-identity
pin in ``tests/test_shard.py``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

#: Target node count per shard for :meth:`ShardGrid.auto` — large enough
#: that intra-shard neighborhoods look like a full historical cluster,
#: small enough that per-shard O(m²) rebuilds stay in the sub-millisecond
#: range.
DEFAULT_SHARD_OCCUPANCY = 256


@dataclass(frozen=True)
class ShardGrid:
    """A ``gx × gy`` grid of rectangular shard cells over the plane.

    Attributes:
        width: Deployment area width (m).
        height: Deployment area height (m).
        gx: Number of cells along x.
        gy: Number of cells along y.
    """

    width: float
    height: float
    gx: int
    gy: int

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ValueError("shard grid area must be positive")
        if self.gx < 1 or self.gy < 1:
            raise ValueError("shard grid needs at least one cell per axis")

    @classmethod
    def auto(
        cls,
        area: float,
        radio_range: float,
        n_nodes: int,
        target_occupancy: int = DEFAULT_SHARD_OCCUPANCY,
    ) -> "ShardGrid":
        """The default square grid for a square deployment.

        The grid side is the *smaller* of two bounds: cells at least one
        radio range wide (``area // radio_range``) and roughly
        ``target_occupancy`` nodes per shard (``ceil(sqrt(n/target))``).
        Small dense scenarios — every historical suite — land on 1 × 1.
        """
        if target_occupancy < 1:
            raise ValueError("target_occupancy must be >= 1")
        by_radio = max(1, int(area // radio_range)) if radio_range > 0 else 1
        by_count = max(1, math.ceil(math.sqrt(max(n_nodes, 1) / target_occupancy)))
        g = min(by_radio, by_count)
        return cls(width=area, height=area, gx=g, gy=g)

    # -- cell arithmetic ---------------------------------------------------

    @property
    def n_shards(self) -> int:
        return self.gx * self.gy

    @property
    def cell_width(self) -> float:
        return self.width / self.gx

    @property
    def cell_height(self) -> float:
        return self.height / self.gy

    def cell_of(self, x: float, y: float) -> Tuple[int, int]:
        """The ``(cx, cy)`` cell containing a position (clamped into the
        grid, so positions on or beyond the boundary stay homed)."""
        cx = min(self.gx - 1, max(0, int(x // self.cell_width)))
        cy = min(self.gy - 1, max(0, int(y // self.cell_height)))
        return cx, cy

    def shard_of(self, x: float, y: float) -> int:
        """Shard id (row-major cell index) of a position."""
        cx, cy = self.cell_of(x, y)
        return cy * self.gx + cx

    def cell_index(self, shard: int) -> Tuple[int, int]:
        """Inverse of :meth:`shard_of`'s row-major numbering."""
        if not (0 <= shard < self.n_shards):
            raise IndexError(f"shard {shard} out of range [0, {self.n_shards})")
        return shard % self.gx, shard // self.gx

    def cell_center(self, shard: int) -> Tuple[float, float]:
        """Geometric center of a shard's cell (gateway election anchor)."""
        cx, cy = self.cell_index(shard)
        return ((cx + 0.5) * self.cell_width, (cy + 0.5) * self.cell_height)

    # -- backhaul paths ----------------------------------------------------

    def neighbors_of(self, shard: int) -> Tuple[int, ...]:
        """4-neighborhood of a cell (the backhaul mesh edges)."""
        cx, cy = self.cell_index(shard)
        out: List[int] = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = cx + dx, cy + dy
            if 0 <= nx < self.gx and 0 <= ny < self.gy:
                out.append(ny * self.gx + nx)
        return tuple(out)

    def hops(self, a: int, b: int) -> int:
        """Backhaul hop count between two shards: the Manhattan distance
        over the 4-neighbor cell mesh (0 for ``a == b``)."""
        ax, ay = self.cell_index(a)
        bx, by = self.cell_index(b)
        return abs(ax - bx) + abs(ay - by)

    def grid_path(self, a: int, b: int) -> Tuple[int, ...]:
        """The deterministic backhaul cell walk from ``a`` to ``b``,
        inclusive of both: x-axis first, then y-axis (an L-shaped
        Manhattan path, so ties between equal-length paths never depend
        on iteration order)."""
        ax, ay = self.cell_index(a)
        bx, by = self.cell_index(b)
        path = [a]
        cx, cy = ax, ay
        step_x = 1 if bx > ax else -1
        while cx != bx:
            cx += step_x
            path.append(cy * self.gx + cx)
        step_y = 1 if by > ay else -1
        while cy != by:
            cy += step_y
            path.append(cy * self.gx + cx)
        return tuple(path)

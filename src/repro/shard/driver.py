"""The sharded streaming driver and the sharded contention runner.

:class:`ShardedDriver` is the PR-6 :class:`~repro.sessions.SessionDriver`
with exactly one behavioural override: its topology is a
:class:`~repro.shard.cluster.ShardedCluster`, so a mobility tick becomes
:meth:`~repro.shard.cluster.ShardedCluster.advance_mobility` — movers
get per-shard **delta rebuilds** and boundary-crossers are re-homed —
instead of a full O(n²) rebuild of the world. Everything else (one
logical clock, keepalives, crash detection, drain, in-place
renegotiation) is inherited verbatim; crash events resolve the victim
through the facade's global node table, so a node that migrated between
scheduling and firing still crashes in its *current* shard, and the
driver's post-crash ``rebuild()`` touches only the dirty shard.

:func:`run_sharded_contention` mirrors
:func:`repro.workloads.run_contention` stream for stream — same
``fleet`` / ``placement`` / ``arrivals:req<k>`` / ``failures`` /
``mobility`` consumption order — which is what makes a 1 × 1 grid run
bit-identical to the unsharded path (pinned in ``tests/test_shard.py``).
The fleet/placement draws can alternatively come from precomputed
read-only tables (:func:`fleet_tables`, published once per sweep point
via :mod:`repro.shard.sharedmem` and attached by every scheduler
worker): the tables are a pure function of the same streams, so either
source yields the same cluster.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.sessions.driver import SessionDriver
from repro.shard.cluster import ShardedCluster
from repro.shard.partition import ShardGrid
from repro.sim.rng import RngRegistry
from repro.workloads.contention import (
    USE_SESSION_DRIVER,
    ContentionConfig,
    ContentionResult,
    _run_admission_only,
    _run_streaming,
    merge_arrival_events,
)

#: Stable integer coding of node classes for the fleet tables.
NODE_CLASSES: Tuple[NodeClass, ...] = tuple(NodeClass)
_CLASS_INDEX = {cls: i for i, cls in enumerate(NODE_CLASSES)}


class ShardedDriver(SessionDriver):
    """A :class:`SessionDriver` over a :class:`ShardedCluster`.

    Construction matches the base class (`topology` being the sharded
    facade); only mobility maintenance is specialized.
    """

    def attach_mobility(self, mobility, nodes, tick=None) -> None:
        """Advance mobility every tick via the cluster's delta path:
        only the distance-matrix rows of nodes that actually moved are
        recomputed, per shard, and cell-boundary crossers are re-homed.
        Ticking stops with the last pending/active session, like the
        base driver's."""
        dt = self.policy.mobility_tick if tick is None else tick

        def _tick(now: float) -> None:
            if self._pending == 0 and self._active == 0:
                return
            self.topology.advance_mobility(mobility, nodes, dt)
            self.engine.schedule(dt, _tick)

        self.engine.schedule(dt, _tick)


# -- fleet tables (shared-memory publication unit) --------------------------


def _cluster_config(config: ContentionConfig):
    # Lazy: repro.shard must stay importable without the experiment layer.
    from repro.experiments.config import FLEET_MIXES, ClusterConfig

    return ClusterConfig(
        n_nodes=config.n_nodes,
        requester_class=config.requester_class,
        mix=dict(FLEET_MIXES[config.mix]),
        area=config.area,
        radio_range=config.radio_range,
    )


def _seeded_fleet(
    registry: RngRegistry, config: ContentionConfig
) -> List[Node]:
    """The fleet + placement draws of :func:`run_contention`, verbatim:
    requesters first, helpers from the ``fleet`` stream, positions from
    the ``placement`` stream."""
    from repro.experiments.scenario import multi_requester_fleet
    from repro.network.mobility import StaticPlacement

    nodes = multi_requester_fleet(
        _cluster_config(config), registry.stream("fleet"), config.n_requesters
    )
    StaticPlacement(
        config.area, config.area, registry.stream("placement")
    ).place(nodes)
    return nodes


def fleet_tables(seed: int, config: ContentionConfig) -> Dict[str, np.ndarray]:
    """The read-only tables describing one seed's fleet: per-node class
    indices (into :data:`NODE_CLASSES`) and placed positions, in fleet
    order. A pure function of the seed's ``fleet``/``placement`` streams
    — rebuilding nodes from these tables yields the same cluster as
    drawing them live."""
    nodes = _seeded_fleet(RngRegistry(seed), config)
    classes = np.fromiter(
        (_CLASS_INDEX[n.node_class] for n in nodes), dtype=np.int8, count=len(nodes)
    )
    positions = np.asarray([n.position for n in nodes], dtype=np.float64)
    return {"classes": classes, "positions": positions}


def fleet_from_tables(
    config: ContentionConfig,
    classes: np.ndarray,
    positions: np.ndarray,
) -> List[Node]:
    """Rebuild the (cheap, mutable) node fleet from published tables.

    Node ids follow the fleet rule — ``req0..req{K-1}`` then ``n0...`` —
    and each node gets its class profile's fresh capacity/energy state;
    only the *derivation* of classes and positions is skipped.
    """
    if len(classes) != config.n_nodes or positions.shape != (config.n_nodes, 2):
        raise ValueError(
            f"fleet tables shaped for {len(classes)} nodes, "
            f"config wants {config.n_nodes}"
        )
    nodes: List[Node] = []
    for i in range(config.n_nodes):
        if i < config.n_requesters:
            node_id = f"req{i}"
        else:
            node_id = f"n{i - config.n_requesters}"
        nodes.append(
            Node(
                node_id,
                node_class=NODE_CLASSES[int(classes[i])],
                position=(float(positions[i, 0]), float(positions[i, 1])),
            )
        )
    return nodes


# -- the sharded runner ------------------------------------------------------


def run_sharded_contention(
    seed: int,
    config: Optional[ContentionConfig] = None,
    grid: Optional[ShardGrid] = None,
    tables: Optional[Dict[str, np.ndarray]] = None,
    backhaul_hop_cost: Optional[float] = None,
) -> ContentionResult:
    """Run one contention scenario on a spatially sharded cluster.

    The sharded analogue of :func:`repro.workloads.run_contention`:
    identical RNG stream consumption, identical arrival merge, identical
    streaming lifecycle — but the cluster is a :class:`ShardedCluster`
    over ``grid`` (:meth:`ShardGrid.auto` when omitted) and streaming
    runs use :class:`ShardedDriver` (delta topology maintenance). With a
    single shard the results are bit-identical to the unsharded runner.

    Args:
        seed: Master seed; the run is a pure function of it (and of
            ``tables``, themselves a pure function of the seed).
        config: The contention configuration (default-constructed when
            omitted, like the unsharded runner).
        grid: Spatial partition override.
        tables: Optional precomputed :func:`fleet_tables` bundle (any
            mapping with ``"classes"``/``"positions"``); skips the
            fleet/placement draws without changing the outcome.
        backhaul_hop_cost: Gateway backhaul cost override
            (see :class:`ShardedCluster`).
    """
    from repro.network.radio import DiscRadio

    if config is None:
        config = ContentionConfig()
    registry = RngRegistry(seed)
    if tables is None:
        nodes = _seeded_fleet(registry, config)
    else:
        nodes = fleet_from_tables(config, tables["classes"], tables["positions"])
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    if grid is None:
        grid = ShardGrid.auto(config.area, config.radio_range, config.n_nodes)
    cluster = ShardedCluster(
        nodes,
        DiscRadio(range_m=config.radio_range),
        grid,
        backhaul_hop_cost=backhaul_hop_cost,
    )
    events, family_of = merge_arrival_events(config, registry)
    if config.sessions.operate and USE_SESSION_DRIVER:
        return _run_streaming(
            config, registry, cluster, providers, nodes, events, family_of,
            driver_cls=ShardedDriver,
        )
    return _run_admission_only(config, cluster, providers, events, family_of)

"""2-D geometry primitives for the network plane.

Scalar helpers (:func:`distance`, :func:`lerp`, ...) operate on
``(x, y)`` tuples; the vectorized counterparts
(:func:`position_array`, :func:`pairwise_distances`,
:func:`exact_distances`) operate on numpy arrays and are the foundation
of the vectorized topology arena. The vectorized distances are
**bit-identical** to the scalar ones: ``math.hypot`` is the single
source of truth, and the numpy paths either call it per element (via a
tight ``map``) or only approximate distances that are provably beyond
any threshold a caller compares against (see
:func:`pairwise_distances`).
"""

from __future__ import annotations

import math
from typing import Optional, Sequence, Tuple

import numpy as np

Point = Tuple[float, float]
"""A 2-D position in meters."""


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def position_array(positions: Sequence[Point]) -> np.ndarray:
    """Pack points into a contiguous ``(n, 2)`` float64 arena."""
    if not positions:
        return np.empty((0, 2), dtype=np.float64)
    return np.asarray(positions, dtype=np.float64).reshape(len(positions), 2)


#: Relative slack applied to ``exact_within`` when deciding which pairs
#: get the exact ``math.hypot`` treatment. ``sqrt(dx*dx + dy*dy)`` is
#: within ~2 ulp (relative error < 1e-15) of the true distance, so a
#: 1e-9 margin is sound by more than six orders of magnitude.
_APPROX_MARGIN = 1e-9


def exact_distances(dx: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Elementwise ``math.hypot`` over coordinate-difference arrays.

    ``np.hypot`` differs from ``math.hypot`` in the last ulp for a small
    fraction of inputs, which would break the topology layer's
    bit-identity guarantee — so the exact values come from a tight
    ``map`` over the C-implemented ``math.hypot``.
    """
    flat = np.fromiter(
        map(math.hypot, dx.ravel().tolist(), dy.ravel().tolist()),
        dtype=np.float64,
        count=dx.size,
    )
    return flat.reshape(dx.shape)


def pairwise_distances(
    positions: np.ndarray, exact_within: Optional[float] = None
) -> np.ndarray:
    """All-pairs distance matrix for an ``(n, 2)`` position arena.

    Entries are bit-identical to :func:`distance` (``math.hypot``)
    wherever they could matter to a threshold comparison:

    * ``exact_within is None`` — every entry is exact;
    * otherwise entries whose approximate value is at most
      ``exact_within * (1 + 1e-9)`` are exact, and the remaining entries
      are within 2 ulp of the true distance — strictly greater than
      ``exact_within``, so any ``<= exact_within`` test still decides
      identically to the scalar path.

    The approximation pass is pure broadcasting; the exact pass calls
    ``math.hypot`` only for the (few) candidate pairs, so the cost is
    O(n^2) numpy plus O(edges) C calls instead of O(n^2) Python.
    """
    n = positions.shape[0]
    dx = positions[:, 0, None] - positions[None, :, 0]
    dy = positions[:, 1, None] - positions[None, :, 1]
    approx = np.sqrt(dx * dx + dy * dy)
    if n < 2:
        return approx
    if exact_within is None:
        need = np.ones((n, n), dtype=bool)
    else:
        need = approx <= exact_within * (1.0 + _APPROX_MARGIN)
    # Exact values are symmetric; compute the strict upper triangle once
    # and mirror it (the diagonal is exactly 0.0 already).
    need &= np.triu(np.ones((n, n), dtype=bool), k=1)
    ii, jj = np.nonzero(need)
    if ii.size:
        exact = exact_distances(dx[ii, jj], dy[ii, jj])
        approx[ii, jj] = exact
        approx[jj, ii] = exact
    return approx


def clamp_to_area(p: Point, width: float, height: float) -> Point:
    """Clamp a point into the rectangle ``[0,width] x [0,height]``."""
    return (min(max(p[0], 0.0), width), min(max(p[1], 0.0), height))


def lerp(a: Point, b: Point, t: float) -> Point:
    """Linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    return (a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)


def heading(a: Point, b: Point) -> Tuple[float, float]:
    """Unit vector from ``a`` toward ``b`` (zero vector if coincident)."""
    d = distance(a, b)
    if d == 0.0:
        return (0.0, 0.0)
    return ((b[0] - a[0]) / d, (b[1] - a[1]) / d)

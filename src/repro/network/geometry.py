"""2-D geometry primitives for the network plane."""

from __future__ import annotations

import math
from typing import Tuple

Point = Tuple[float, float]
"""A 2-D position in meters."""


def distance(a: Point, b: Point) -> float:
    """Euclidean distance between two points."""
    return math.hypot(a[0] - b[0], a[1] - b[1])


def clamp_to_area(p: Point, width: float, height: float) -> Point:
    """Clamp a point into the rectangle ``[0,width] x [0,height]``."""
    return (min(max(p[0], 0.0), width), min(max(p[1], 0.0), height))


def lerp(a: Point, b: Point, t: float) -> Point:
    """Linear interpolation from ``a`` (t=0) to ``b`` (t=1)."""
    return (a[0] + (b[0] - a[0]) * t, a[1] + (b[1] - a[1]) * t)


def heading(a: Point, b: Point) -> Tuple[float, float]:
    """Unit vector from ``a`` toward ``b`` (zero vector if coincident)."""
    d = distance(a, b)
    if d == 0.0:
        return (0.0, 0.0)
    return ((b[0] - a[0]) / d, (b[1] - a[1]) / d)

"""Message channel model: latency and loss over simulated links.

:class:`ChannelModel` turns a topology edge plus a message size into a
delivery decision (lost or not, per the link loss probability) and a
delivery latency (propagation constant + transmission time at the link
bandwidth + random jitter). Deterministic given the RNG stream.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.network.topology import Topology


class ChannelModel:
    """Latency/loss model applied per transmitted message.

    Args:
        topology: The live topology (source of per-link bandwidth / loss).
        rng: RNG stream for loss draws and jitter.
        propagation_delay: Fixed per-hop delay in seconds (MAC + queueing
            floor).
        jitter: Upper bound of uniform random extra delay in seconds.
        reliable: When ``True`` loss draws are skipped entirely (useful
            for experiments isolating algorithmic effects from loss).
    """

    def __init__(
        self,
        topology: Topology,
        rng: np.random.Generator,
        propagation_delay: float = 0.002,
        jitter: float = 0.001,
        reliable: bool = False,
    ) -> None:
        if propagation_delay < 0 or jitter < 0:
            raise ValueError("delays must be non-negative")
        self.topology = topology
        self.rng = rng
        self.propagation_delay = float(propagation_delay)
        self.jitter = float(jitter)
        self.reliable = reliable

    def transmit(self, src: str, dst: str, size_kb: float) -> Optional[float]:
        """Attempt a transmission; return the latency or ``None`` if lost.

        Local delivery (``src == dst``) is instantaneous and lossless.
        Unconnected pairs always lose the message (radio silence).
        """
        if src == dst:
            return 0.0
        quality = self.topology.edge_quality(src, dst)
        if quality is None:
            return None
        bandwidth, loss = quality  # kb/s, probability
        # A reliable channel consumes NO draws on any path (no loss, no
        # jitter): fault injectors wrap reliable channels, and a wrapped
        # fault-free stream must stay bit-identical to an unwrapped one.
        # Zero-loss links likewise skip the loss draw entirely.
        if self.reliable:
            tx_time = (size_kb / bandwidth) if bandwidth > 0 else float("inf")
            return self.propagation_delay + tx_time
        if loss > 0.0 and self.rng.random() < loss:
            return None
        tx_time = (size_kb / bandwidth) if bandwidth > 0 else float("inf")
        extra = float(self.rng.uniform(0.0, self.jitter)) if self.jitter > 0 else 0.0
        return self.propagation_delay + tx_time + extra

"""Dynamic connectivity graph and neighbor discovery.

:class:`Topology` maintains a :mod:`networkx` graph over the live nodes,
rebuilt from positions and the radio model. The negotiation layer asks it
two questions: *who are the requester's neighbors right now* (candidate
coalition members — the paper's "nodes in range") and *what does it cost to
talk to them* (link bandwidth → communication-cost tie-break).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

import networkx as nx

from repro.errors import NotConnectedError, UnknownNodeError
from repro.network.radio import RadioModel
from repro.resources.node import Node


class Topology:
    """The network graph over a set of nodes under a radio model.

    Args:
        nodes: Participating nodes (dead nodes are excluded from edges).
        radio: Connectivity/quality model.
    """

    def __init__(self, nodes: Sequence[Node], radio: RadioModel) -> None:
        self.radio = radio
        self._nodes: Dict[str, Node] = {}
        self.graph = nx.Graph()
        for node in nodes:
            self.add_node(node)
        self.rebuild()

    # -- membership ------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        self.graph.add_node(node.node_id)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        del self._nodes[node_id]
        self.graph.remove_node(node_id)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- connectivity ------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute all edges from current positions and liveness.

        O(n²) pairwise distances — fine for the node counts the paper's
        setting implies (tens of devices in radio proximity).
        """
        self.graph.remove_edges_from(list(self.graph.edges))
        alive = [n for n in self._nodes.values() if n.alive]
        for i, a in enumerate(alive):
            for b in alive[i + 1 :]:
                if self.radio.in_range(a.position, b.position):
                    bw = self.radio.bandwidth(a.position, b.position)
                    loss = self.radio.loss_probability(a.position, b.position)
                    self.graph.add_edge(
                        a.node_id, b.node_id, bandwidth=bw, loss=loss,
                        distance=a.distance_to(b),
                    )

    def neighbors(self, node_id: str) -> Tuple[str, ...]:
        """Ids of live nodes in direct radio range of ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return tuple(self.graph.neighbors(node_id))

    def connected(self, a: str, b: str) -> bool:
        """Whether a direct link exists between ``a`` and ``b``."""
        if a not in self._nodes:
            raise UnknownNodeError(a)
        if b not in self._nodes:
            raise UnknownNodeError(b)
        return self.graph.has_edge(a, b)

    def link_bandwidth(self, a: str, b: str) -> float:
        """Direct-link bandwidth in kb/s.

        Raises:
            NotConnectedError: If no direct link exists.
        """
        if not self.connected(a, b):
            raise NotConnectedError(f"no link {a!r} <-> {b!r}")
        return float(self.graph.edges[a, b]["bandwidth"])

    def link_loss(self, a: str, b: str) -> float:
        """Direct-link loss probability."""
        if not self.connected(a, b):
            raise NotConnectedError(f"no link {a!r} <-> {b!r}")
        return float(self.graph.edges[a, b]["loss"])

    def communication_cost(self, a: str, b: str) -> float:
        """Cost of talking over the direct link: inverse normalized
        bandwidth (cheap = fast link). ``a == b`` costs 0 — local
        execution needs no radio at all, matching the paper's "lowest
        communication cost" criterion favouring nearby/local execution."""
        if a == b:
            return 0.0
        bw = self.link_bandwidth(a, b)
        return 1000.0 / bw if bw > 0 else float("inf")

    # -- multi-hop ------------------------------------------------------------

    def khop_neighbors(self, node_id: str, k: int) -> Tuple[str, ...]:
        """Live nodes within ``k`` hops of ``node_id`` (excluding itself).

        ``k=1`` equals :meth:`neighbors`. Supports the relayed-CFP
        extension: the paper's broadcast is one-hop, but §1 explicitly
        keeps larger infrastructures in scope.
        """
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        if k < 1:
            return ()
        lengths = nx.single_source_shortest_path_length(self.graph, node_id, cutoff=k)
        return tuple(n for n in lengths if n != node_id)

    def shortest_route(self, a: str, b: str) -> Optional[Tuple[str, ...]]:
        """Minimum-communication-cost multi-hop route from ``a`` to ``b``.

        Edge weight is the per-hop communication cost (inverse normalized
        bandwidth). Returns the node sequence including both endpoints,
        or ``None`` when no path exists. ``a == b`` yields ``(a,)``.
        """
        if a not in self._nodes:
            raise UnknownNodeError(a)
        if b not in self._nodes:
            raise UnknownNodeError(b)
        if a == b:
            return (a,)
        try:
            path = nx.shortest_path(
                self.graph, a, b,
                weight=lambda u, v, d: 1000.0 / d["bandwidth"] if d["bandwidth"] > 0 else None,
            )
        except nx.NetworkXNoPath:
            return None
        return tuple(path)

    def multihop_cost(self, a: str, b: str) -> float:
        """Communication cost of the best multi-hop route (sum of per-hop
        costs); ``inf`` when unreachable, 0 for ``a == b``."""
        route = self.shortest_route(a, b)
        if route is None:
            return float("inf")
        total = 0.0
        for u, v in zip(route, route[1:]):
            total += self.communication_cost(u, v)
        return total

    # -- analysis helpers ------------------------------------------------------

    def reachable_set(self, node_id: str) -> frozenset[str]:
        """All nodes reachable from ``node_id`` via multi-hop paths."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        return frozenset(nx.node_connected_component(self.graph, node_id))

    def component_count(self) -> int:
        """Number of connected components among live nodes."""
        alive = [n.node_id for n in self._nodes.values() if n.alive]
        return nx.number_connected_components(self.graph.subgraph(alive))

    def average_degree(self) -> float:
        """Mean neighbor count over all registered nodes."""
        n = self.graph.number_of_nodes()
        if n == 0:
            return 0.0
        return 2.0 * self.graph.number_of_edges() / n

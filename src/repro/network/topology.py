"""Dynamic connectivity graph and neighbor discovery.

:class:`Topology` maintains the connectivity graph over the live nodes,
rebuilt from positions and the radio model. The negotiation layer asks it
two questions: *who are the requester's neighbors right now* (candidate
coalition members — the paper's "nodes in range") and *what does it cost to
talk to them* (link bandwidth → communication-cost tie-break).

Two implementations coexist, selected by :data:`USE_VECTOR_TOPOLOGY`:

* the **vectorized arena** (default): :meth:`Topology.rebuild` packs the
  live nodes' positions into a contiguous numpy arena, computes the full
  pairwise distance matrix by broadcasting
  (:func:`repro.network.geometry.pairwise_distances`, bit-exact where it
  matters), and evaluates the radio model's ``*_matrix`` methods over it.
  Adjacency and edge attributes (bandwidth / loss) live in numpy arrays;
  the :mod:`networkx` graph is materialized lazily, only when an analysis
  helper or external caller asks for :attr:`Topology.graph`. Every
  membership or connectivity change bumps an **epoch counter**, which
  keys per-epoch caches for neighbor tuples, BFS orders
  (:meth:`khop_neighbors`) and weighted shortest routes
  (:meth:`shortest_route` / :meth:`multihop_cost`) — repeated queries
  within an epoch are O(1) dictionary hits, which is what the messaging
  layer's routed delivery and the organizer's comm-cost tie-breaks hit
  on every CFP;
* the **legacy networkx path** (``USE_VECTOR_TOPOLOGY = False``): the
  original per-pair Python rebuild and per-query networkx searches, kept
  so equivalence tests can assert both paths agree bit for bit
  (``tests/test_topology_vector.py``), exactly like
  ``negotiation.USE_BATCH_EVALUATION``.

Both paths produce identical observable results — same neighbor order
(networkx adjacency order is the alive-list insertion order), same
shortest routes (the vector path replays networkx's
``bidirectional_dijkstra`` tie-breaking over precomputed edge costs), and
bit-identical link qualities.
"""

from __future__ import annotations

from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import networkx as nx
import numpy as np

from repro.errors import NotConnectedError, UnknownNodeError
from repro.network.geometry import _APPROX_MARGIN, exact_distances, pairwise_distances, position_array
from repro.network.radio import RadioModel
from repro.resources.node import Node

#: Feature switch for the vectorized topology arena. The networkx-backed
#: scalar path is kept so tests can assert both implementations produce
#: bit-identical results (``tests/test_topology_vector.py``); leave this
#: ``True`` outside of those A/B comparisons. Read at construction time:
#: each :class:`Topology` instance snapshots the flag in ``__init__``.
USE_VECTOR_TOPOLOGY = True

#: Per-epoch cache bounds. Long mobility runs at thousands of nodes query
#: routes for an ever-changing working set; unbounded memoization would
#: grow with (epochs x pairs). Within one epoch the caches evict in FIFO
#: insertion order once full — correctness is unaffected (entries are pure
#: memoization), only the hit rate degrades past these sizes.
ROUTE_CACHE_MAX = 65536
BFS_CACHE_MAX = 1024


class Topology:
    """The network graph over a set of nodes under a radio model.

    Args:
        nodes: Participating nodes (dead nodes are excluded from edges).
        radio: Connectivity/quality model.
    """

    def __init__(self, nodes: Sequence[Node], radio: RadioModel) -> None:
        self.radio = radio
        self._nodes: Dict[str, Node] = {}
        self._vectorized = bool(USE_VECTOR_TOPOLOGY)
        self._epoch = 0
        self._graph: Optional[nx.Graph] = None if self._vectorized else nx.Graph()
        # -- arena state, valid after rebuild() (vector mode only) --------
        self.positions = np.empty((0, 2), dtype=np.float64)
        self._arena_ids: Tuple[str, ...] = ()
        self._index: Dict[str, int] = {}
        self._adj = np.zeros((0, 0), dtype=bool)
        self._bw = np.zeros((0, 0), dtype=np.float64)
        self._loss = np.zeros((0, 0), dtype=np.float64)
        self._dist: Optional[np.ndarray] = None
        self._edge_count = 0
        self._removed_since_rebuild = False
        # Blocked-link overlay (partition faults): normalized id pairs
        # suppressed from the adjacency on every (re)build. Empty for
        # fault-free runs, where it costs nothing.
        self._blocked: set = set()
        # -- per-epoch caches, built lazily on first query ----------------
        self._cache_epoch = -1
        self._nbrs: Dict[str, Tuple[str, ...]] = {}
        # (node ids, id -> index, int-indexed weighted adjacency)
        self._wadj: Optional[
            Tuple[List[str], Dict[str, int], List[List[Tuple[int, float]]]]
        ] = None
        self._bfs: Dict[str, List[Tuple[str, int]]] = {}
        self._routes: Dict[Tuple[str, str], Optional[Tuple[str, ...]]] = {}
        self._route_costs: Dict[Tuple[str, str], float] = {}
        for node in nodes:
            self.add_node(node)
        self.rebuild()

    # -- epochs ------------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotone counter bumped by every rebuild, membership change and
        node liveness flip; per-epoch caches key off it."""
        return self._epoch

    def _bump_epoch(self) -> None:
        self._epoch += 1

    def _on_liveness_change(self, node: Node) -> None:
        """A registered node's ``alive`` flag flipped. Like the networkx
        graph, the adjacency arrays intentionally keep the stale edges
        until the next :meth:`rebuild` (radio links do not disappear
        because software on the peer crashed) — but cached routes and
        neighbor tuples are invalidated so nothing outlives the event."""
        self._bump_epoch()

    # -- membership ------------------------------------------------------------

    def add_node(self, node: Node) -> None:
        if node.node_id in self._nodes:
            raise ValueError(f"duplicate node id {node.node_id!r}")
        self._nodes[node.node_id] = node
        if self._vectorized:
            node.add_liveness_watcher(self._on_liveness_change)
            self._graph = None
            self._bump_epoch()
        else:
            self._graph.add_node(node.node_id)

    def remove_node(self, node_id: str) -> None:
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        node = self._nodes.pop(node_id)
        if self._vectorized:
            node.remove_liveness_watcher(self._on_liveness_change)
            if node_id in self._index:
                self._removed_since_rebuild = True
            self._graph = None
            self._bump_epoch()
        else:
            self._graph.remove_node(node_id)

    def node(self, node_id: str) -> Node:
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    @property
    def nodes(self) -> Tuple[Node, ...]:
        return tuple(self._nodes.values())

    @property
    def node_ids(self) -> Tuple[str, ...]:
        return tuple(self._nodes)

    def __len__(self) -> int:
        return len(self._nodes)

    def __contains__(self, node_id: str) -> bool:
        return node_id in self._nodes

    # -- connectivity ------------------------------------------------------------

    def rebuild(self) -> None:
        """Recompute all edges from current positions and liveness.

        Vector mode packs the live nodes into the position arena and
        derives adjacency plus link-quality arrays from the broadcasted
        pairwise distance matrix — O(n²) numpy work plus O(edges) exact
        distance calls instead of O(n²) Python. Legacy mode runs the
        original per-pair loop. Either way the epoch advances and every
        cached neighbor/route answer is dropped.
        """
        if not self._vectorized:
            self._legacy_rebuild()
            return
        self._bump_epoch()
        self._graph = None
        self._removed_since_rebuild = False
        alive = [n for n in self._nodes.values() if n.alive]
        self._arena_ids = tuple(n.node_id for n in alive)
        self._index = {nid: i for i, nid in enumerate(self._arena_ids)}
        self.positions = position_array([n.position for n in alive])
        m = len(alive)
        if m < 2:
            self._adj = np.zeros((m, m), dtype=bool)
            self._bw = np.zeros((m, m), dtype=np.float64)
            self._loss = np.ones((m, m), dtype=np.float64)
            self._dist = None
            self._edge_count = 0
            return
        dist = pairwise_distances(
            self.positions, exact_within=self.radio.matrix_distance_cutoff
        )
        self._dist = dist
        adj = np.asarray(self.radio.in_range_matrix(dist), dtype=bool)
        np.fill_diagonal(adj, False)
        self._adj = adj
        self._bw = np.asarray(self.radio.bandwidth_matrix(dist), dtype=np.float64)
        self._loss = np.asarray(self.radio.loss_matrix(dist), dtype=np.float64)
        if self._blocked:
            self._apply_blocked()
        self._edge_count = int(np.count_nonzero(adj)) // 2

    def update_positions(self, moved: Sequence[str]) -> None:
        """Delta rebuild: refresh edges touching only the ``moved`` nodes.

        Mobility ticks typically move a handful of nodes between
        rebuilds; recomputing the full O(n²) distance/adjacency matrices
        for k movers wastes n/k of the work. This recomputes just the
        distance-matrix rows (and mirrored columns) of the moved nodes —
        with the exact-within-cutoff rule of
        :func:`repro.network.geometry.pairwise_distances` applied per
        row, so the arena ends up **bit-identical** to a full
        :meth:`rebuild` — then re-evaluates the radio model on those rows
        and bumps the epoch.

        Falls back to a full :meth:`rebuild` whenever the delta
        assumptions do not hold: legacy mode, membership or liveness
        changes since the last rebuild (the arena rows no longer line up),
        or an arena too small to have a distance matrix.
        """
        alive_ids = tuple(n.node_id for n in self._nodes.values() if n.alive)
        if (
            not self._vectorized
            or self._dist is None
            or self._removed_since_rebuild
            or alive_ids != self._arena_ids
        ):
            self.rebuild()
            return
        rows = sorted({self._index[nid] for nid in moved if nid in self._index})
        if not rows:
            # Nothing in the arena moved; a no-op delta must still act
            # like a rebuild for cache invalidation purposes.
            self._bump_epoch()
            self._graph = None
            return
        pos = self.positions
        for nid, i in ((nid, self._index[nid]) for nid in moved if nid in self._index):
            p = self._nodes[nid].position
            pos[i, 0] = p[0]
            pos[i, 1] = p[1]
        cutoff = self.radio.matrix_distance_cutoff
        dist = self._dist
        for i in rows:
            dx = pos[i, 0] - pos[:, 0]
            dy = pos[i, 1] - pos[:, 1]
            row = np.sqrt(dx * dx + dy * dy)
            if cutoff is None:
                need = np.ones(row.shape, dtype=bool)
            else:
                need = row <= cutoff * (1.0 + _APPROX_MARGIN)
            need[i] = False  # diagonal is exactly 0.0 already
            jj = np.nonzero(need)[0]
            if jj.size:
                # hypot(-dx, -dy) == hypot(dx, dy) bit for bit, so the
                # mirrored column entries equal what a full rebuild's
                # upper-triangle pass would have produced.
                row[jj] = exact_distances(dx[jj], dy[jj])
            dist[i, :] = row
            dist[:, i] = row
        sub = dist[rows, :]
        adj_rows = np.asarray(self.radio.in_range_matrix(sub), dtype=bool)
        bw_rows = np.asarray(self.radio.bandwidth_matrix(sub), dtype=np.float64)
        loss_rows = np.asarray(self.radio.loss_matrix(sub), dtype=np.float64)
        for k, i in enumerate(rows):
            adj_rows[k, i] = False
            self._adj[i, :] = adj_rows[k]
            self._adj[:, i] = adj_rows[k]
            self._bw[i, :] = bw_rows[k]
            self._bw[:, i] = bw_rows[k]
            self._loss[i, :] = loss_rows[k]
            self._loss[:, i] = loss_rows[k]
        if self._blocked:
            # The refreshed rows re-derived adjacency from the radio
            # model alone; reapply the overlay so a mover inside a
            # partition cannot tunnel through it.
            self._apply_blocked()
        self._edge_count = int(np.count_nonzero(self._adj)) // 2
        self._bump_epoch()
        self._graph = None

    def _legacy_rebuild(self) -> None:
        """The original O(n²) pure-Python rebuild (A/B reference path)."""
        self._bump_epoch()
        self.graph.remove_edges_from(list(self.graph.edges))
        alive = [n for n in self._nodes.values() if n.alive]
        for i, a in enumerate(alive):
            for b in alive[i + 1 :]:
                if self._blocked and self._normalize_pair(
                    a.node_id, b.node_id
                ) in self._blocked:
                    continue
                if self.radio.in_range(a.position, b.position):
                    bw = self.radio.bandwidth(a.position, b.position)
                    loss = self.radio.loss_probability(a.position, b.position)
                    self.graph.add_edge(
                        a.node_id, b.node_id, bandwidth=bw, loss=loss,
                        distance=a.distance_to(b),
                    )

    # -- blocked-link overlay (partition faults) ---------------------------

    @staticmethod
    def _normalize_pair(a: str, b: str) -> Tuple[str, str]:
        return (a, b) if a <= b else (b, a)

    @property
    def blocked_links(self) -> frozenset:
        """The current overlay: normalized ``(a, b)`` pairs whose direct
        link is suppressed regardless of radio reachability."""
        return frozenset(self._blocked)

    def _apply_blocked(self) -> None:
        """Drop every overlaid pair from the vector adjacency (pairs
        naming absent/dead nodes are ignored — blocking is about links,
        not membership)."""
        self._bump_epoch()  # belt and braces: callers rebuild, but the
        # R6 invariant is per-method — every arena mutation bumps.
        index = self._index
        ii: List[int] = []
        jj: List[int] = []
        for a, b in sorted(self._blocked):
            i = index.get(a)
            j = index.get(b)
            if i is None or j is None:
                continue
            ii.append(i)
            jj.append(j)
        if ii:
            self._adj[ii, jj] = False
            self._adj[jj, ii] = False

    def block_links(self, pairs: Sequence[Tuple[str, str]]) -> None:
        """Add bidirectional link blocks and rebuild.

        The overlay survives later rebuilds (mobility, churn) until
        :meth:`unblock_links` removes it — a partition does not heal
        because somebody moved.
        """
        self._blocked.update(self._normalize_pair(a, b) for a, b in pairs)
        self.rebuild()

    def unblock_links(self, pairs: Sequence[Tuple[str, str]]) -> None:
        """Remove link blocks (healing a partition) and rebuild; links
        come back exactly as the radio model dictates, so post-heal
        routes match a never-partitioned topology bit for bit."""
        self._blocked.difference_update(
            self._normalize_pair(a, b) for a, b in pairs
        )
        self.rebuild()

    # -- lazy caches -------------------------------------------------------

    def _ensure_epoch_caches(self) -> None:
        """(Re)build the per-epoch neighbor tuples; reset BFS/route caches."""
        if self._cache_epoch == self._epoch:
            return
        self._cache_epoch = self._epoch
        self._wadj = None
        self._bfs = {}
        self._routes = {}
        self._route_costs = {}
        nbrs: Dict[str, Tuple[str, ...]] = {}
        ids = self._arena_ids
        if ids:
            present = np.fromiter(
                (nid in self._nodes for nid in ids), dtype=bool, count=len(ids)
            )
            for i, nid in enumerate(ids):
                if not present[i]:
                    continue
                js = np.nonzero(self._adj[i] & present)[0]
                nbrs[nid] = tuple(ids[j] for j in js.tolist())
        self._nbrs = nbrs

    def _routing_tables(self) -> Tuple[List[str], Dict[str, int], List[List[Tuple[int, float]]]]:
        """Per-epoch routing tables over *integer* node indices.

        ``rids``/``ridx`` map between node ids and dense indices covering
        every current node (isolated ones included); ``radj[i]`` lists
        ``(neighbor index, hop cost)`` in networkx adjacency order with
        zero-bandwidth links excluded (the ``weight -> None`` hidden
        edges of the legacy path). Integer keys make the Dijkstra replay
        several times faster than string-keyed dictionaries without
        touching its tie-breaking.
        """
        self._ensure_epoch_caches()
        if self._wadj is None:
            rids = list(self._nodes)
            ridx = {nid: i for i, nid in enumerate(rids)}
            nbrs = self._nbrs
            radj: List[List[Tuple[int, float]]] = []
            for nid in rids:
                links: List[Tuple[int, float]] = []
                neighbor_ids = nbrs.get(nid)
                if neighbor_ids:
                    i = self._index[nid]
                    row = self._bw[i]
                    for w in neighbor_ids:
                        bw = float(row[self._index[w]])
                        if bw > 0:
                            links.append((ridx[w], 1000.0 / bw))
                radj.append(links)
            self._wadj = (rids, ridx, radj)
        return self._wadj

    # -- direct links ------------------------------------------------------

    def neighbors(self, node_id: str) -> Tuple[str, ...]:
        """Ids of live nodes in direct radio range of ``node_id``."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        if not self._vectorized:
            return tuple(self.graph.neighbors(node_id))
        self._ensure_epoch_caches()
        return self._nbrs.get(node_id, ())

    def connected(self, a: str, b: str) -> bool:
        """Whether a direct link exists between ``a`` and ``b``."""
        if a not in self._nodes:
            raise UnknownNodeError(a)
        if b not in self._nodes:
            raise UnknownNodeError(b)
        if not self._vectorized:
            return self.graph.has_edge(a, b)
        i = self._index.get(a)
        j = self._index.get(b)
        if i is None or j is None:
            return False
        return bool(self._adj[i, j])

    def link_bandwidth(self, a: str, b: str) -> float:
        """Direct-link bandwidth in kb/s.

        Raises:
            NotConnectedError: If no direct link exists.
        """
        if not self.connected(a, b):
            raise NotConnectedError(f"no link {a!r} <-> {b!r}")
        if not self._vectorized:
            return float(self.graph.edges[a, b]["bandwidth"])
        return float(self._bw[self._index[a], self._index[b]])

    def link_loss(self, a: str, b: str) -> float:
        """Direct-link loss probability."""
        if not self.connected(a, b):
            raise NotConnectedError(f"no link {a!r} <-> {b!r}")
        if not self._vectorized:
            return float(self.graph.edges[a, b]["loss"])
        return float(self._loss[self._index[a], self._index[b]])

    def edge_quality(self, a: str, b: str) -> Optional[Tuple[float, float]]:
        """``(bandwidth, loss)`` of the direct link, or ``None`` when the
        nodes are not directly linked. One membership check instead of
        three — the channel model calls this per transmitted message."""
        if not self.connected(a, b):
            return None
        if not self._vectorized:
            data = self.graph.edges[a, b]
            return float(data["bandwidth"]), float(data["loss"])
        i, j = self._index[a], self._index[b]
        return float(self._bw[i, j]), float(self._loss[i, j])

    def communication_cost(self, a: str, b: str) -> float:
        """Cost of talking over the direct link: inverse normalized
        bandwidth (cheap = fast link). ``a == b`` costs 0 — local
        execution needs no radio at all, matching the paper's "lowest
        communication cost" criterion favouring nearby/local execution."""
        if a == b:
            return 0.0
        bw = self.link_bandwidth(a, b)
        return 1000.0 / bw if bw > 0 else float("inf")

    # -- multi-hop ------------------------------------------------------------

    def khop_neighbors(self, node_id: str, k: int) -> Tuple[str, ...]:
        """Live nodes within ``k`` hops of ``node_id`` (excluding itself).

        ``k=1`` equals :meth:`neighbors`. Supports the relayed-CFP
        extension: the paper's broadcast is one-hop, but §1 explicitly
        keeps larger infrastructures in scope. Vector mode answers from
        the per-epoch BFS cache: the BFS discovery order is independent
        of the hop cutoff, so one cached traversal serves every ``k``.
        """
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        if k < 1:
            return ()
        if not self._vectorized:
            lengths = nx.single_source_shortest_path_length(self.graph, node_id, cutoff=k)
            return tuple(n for n in lengths if n != node_id)
        order = self._bfs_order(node_id)
        return tuple(n for n, level in order if level <= k and n != node_id)

    def _bfs_order(self, source: str) -> List[Tuple[str, int]]:
        """Full BFS ``(node, hop level)`` discovery order from ``source``,
        replicating networkx's ``_single_shortest_path_length`` (level by
        level, neighbors in adjacency order, first discovery wins)."""
        self._ensure_epoch_caches()
        cached = self._bfs.get(source)
        if cached is not None:
            return cached
        nbrs = self._nbrs
        seen = {source}
        order = [(source, 0)]
        nextlevel = [source]
        level = 0
        while nextlevel:
            level += 1
            thislevel = nextlevel
            nextlevel = []
            for v in thislevel:
                for w in nbrs.get(v, ()):
                    if w not in seen:
                        seen.add(w)
                        nextlevel.append(w)
                        order.append((w, level))
        if len(self._bfs) >= BFS_CACHE_MAX:
            self._bfs.pop(next(iter(self._bfs)))
        self._bfs[source] = order
        return order

    def shortest_route(self, a: str, b: str) -> Optional[Tuple[str, ...]]:
        """Minimum-communication-cost multi-hop route from ``a`` to ``b``.

        Edge weight is the per-hop communication cost (inverse normalized
        bandwidth). Returns the node sequence including both endpoints,
        or ``None`` when no path exists. ``a == b`` yields ``(a,)``.
        Vector mode memoizes per ``(epoch, a, b)`` — the first query runs
        a bidirectional Dijkstra over precompiled hop costs (no Python
        weight callable, no attribute dictionaries), repeats are O(1).
        """
        if a not in self._nodes:
            raise UnknownNodeError(a)
        if b not in self._nodes:
            raise UnknownNodeError(b)
        if a == b:
            return (a,)
        if not self._vectorized:
            try:
                path = nx.shortest_path(
                    self.graph, a, b,
                    weight=lambda u, v, d: 1000.0 / d["bandwidth"] if d["bandwidth"] > 0 else None,
                )
            except nx.NetworkXNoPath:
                return None
            return tuple(path)
        self._ensure_epoch_caches()
        key = (a, b)
        if key in self._routes:
            return self._routes[key]
        route = self._bidirectional_dijkstra(a, b)
        if len(self._routes) >= ROUTE_CACHE_MAX:
            self._routes.pop(next(iter(self._routes)))
        self._routes[key] = route
        return route

    def _bidirectional_dijkstra(self, source: str, target: str) -> Optional[Tuple[str, ...]]:
        """Replay of networkx's ``bidirectional_dijkstra`` over the
        precompiled integer-indexed routing adjacency — identical
        alternation, heap tie-breaking (insertion counter) and meet-node
        selection, so the returned route matches the legacy path even
        when several routes tie on cost (common: links within half range
        all cost the same).
        """
        rids, ridx, radj = self._routing_tables()
        src, dst = ridx[source], ridx[target]
        n = len(rids)
        # Per-direction state lives in flat arrays of length 2n (forward
        # at offset 0, backward at offset n): byte flags + value lists
        # index faster than the string-keyed dictionaries networkx uses,
        # while every comparison below mirrors its algorithm verbatim.
        dist_flag = bytearray(2 * n)
        seen_flag = bytearray(2 * n)
        seen_val = [0.0] * (2 * n)
        preds = [-1] * (2 * n)
        fringes: Tuple[List[Tuple[float, int, int]], ...] = ([], [])
        push, pop = heappush, heappop
        push(fringes[0], (0, 0, src))
        push(fringes[1], (0, 1, dst))
        seen_flag[src] = 1
        seen_flag[n + dst] = 1
        c = 2
        finaldist: Optional[float] = None
        meetnode = -1
        direction = 1
        while fringes[0] and fringes[1]:
            direction = 1 - direction
            base = direction * n
            other = n - base
            dist_v, _, v = pop(fringes[direction])
            if dist_flag[base + v]:
                continue
            dist_flag[base + v] = 1
            if dist_flag[other + v]:
                route: List[int] = []
                node = meetnode
                while node != -1:
                    route.append(node)
                    node = preds[node]
                route.reverse()
                node = preds[n + meetnode]
                while node != -1:
                    route.append(node)
                    node = preds[n + node]
                return tuple(rids[i] for i in route)
            this_fringe = fringes[direction]
            for w, cost in radj[v]:
                bw = base + w
                if dist_flag[bw]:
                    # Already finalized in this direction; non-negative
                    # weights make networkx's contradictory-path check
                    # unreachable here.
                    continue
                vw_dist = dist_v + cost
                if not seen_flag[bw] or vw_dist < seen_val[bw]:
                    seen_flag[bw] = 1
                    seen_val[bw] = vw_dist
                    push(this_fringe, (vw_dist, c, w))
                    c += 1
                    preds[bw] = v
                    ow = other + w
                    if seen_flag[ow]:
                        total = vw_dist + seen_val[ow]
                        if finaldist is None or finaldist > total:
                            finaldist, meetnode = total, w
        return None

    def _hop_cost(self, a: str, b: str) -> float:
        """Per-hop communication cost of an existing edge, read straight
        from the cached edge data (no membership/connectivity re-checks —
        the route the caller just computed guarantees the edge exists)."""
        if self._vectorized:
            bw = float(self._bw[self._index[a], self._index[b]])
        else:
            bw = float(self.graph.edges[a, b]["bandwidth"])
        return 1000.0 / bw if bw > 0 else float("inf")

    def multihop_cost(self, a: str, b: str) -> float:
        """Communication cost of the best multi-hop route (sum of per-hop
        costs); ``inf`` when unreachable, 0 for ``a == b``."""
        if self._vectorized:
            if a not in self._nodes:
                raise UnknownNodeError(a)
            if b not in self._nodes:
                raise UnknownNodeError(b)
            self._ensure_epoch_caches()
            cached = self._route_costs.get((a, b))
            if cached is not None:
                return cached
        route = self.shortest_route(a, b)
        if route is None:
            total = float("inf")
        else:
            total = 0.0
            for u, v in zip(route, route[1:]):
                total += self._hop_cost(u, v)
        if self._vectorized:
            if len(self._route_costs) >= ROUTE_CACHE_MAX:
                self._route_costs.pop(next(iter(self._route_costs)))
            self._route_costs[(a, b)] = total
        return total

    # -- analysis helpers ------------------------------------------------------

    @property
    def graph(self) -> nx.Graph:
        """The connectivity graph as a :mod:`networkx` object.

        Legacy mode maintains it live; vector mode materializes it lazily
        from the arena arrays (same node/edge insertion order and edge
        attributes as the legacy rebuild) and treats it as a read-only
        snapshot — it is dropped on the next rebuild or membership change.
        """
        if self._graph is None:
            g = nx.Graph()
            g.add_nodes_from(self._nodes)
            ids = self._arena_ids
            pos = self.positions
            for i, a_id in enumerate(ids):
                if a_id not in self._nodes:
                    continue
                row = np.nonzero(self._adj[i, i + 1 :])[0]
                for off in row.tolist():
                    j = i + 1 + off
                    b_id = ids[j]
                    if b_id not in self._nodes:
                        continue
                    dx = float(pos[i, 0]) - float(pos[j, 0])
                    dy = float(pos[i, 1]) - float(pos[j, 1])
                    g.add_edge(
                        a_id, b_id,
                        bandwidth=float(self._bw[i, j]),
                        loss=float(self._loss[i, j]),
                        # Legacy stored Node.distance_to at rebuild time,
                        # which uses (dx*dx+dy*dy)**0.5 — NOT math.hypot;
                        # the two differ in the last ulp. Keep this formula
                        # (over the rebuild-time arena positions, not the
                        # nodes' possibly-moved current ones) or the A/B
                        # graph equality breaks.
                        distance=(dx * dx + dy * dy) ** 0.5,
                    )
            self._graph = g
        return self._graph

    def reachable_set(self, node_id: str) -> frozenset[str]:
        """All nodes reachable from ``node_id`` via multi-hop paths."""
        if node_id not in self._nodes:
            raise UnknownNodeError(node_id)
        if not self._vectorized:
            return frozenset(nx.node_connected_component(self.graph, node_id))
        return frozenset(n for n, _ in self._bfs_order(node_id))

    def component_count(self) -> int:
        """Number of connected components among live nodes."""
        if not self._vectorized:
            alive = [n.node_id for n in self._nodes.values() if n.alive]
            return nx.number_connected_components(self.graph.subgraph(alive))
        self._ensure_epoch_caches()
        alive = {nid for nid, n in self._nodes.items() if n.alive}
        seen: set = set()
        components = 0
        # Seed the sweep in registration order (the count is traversal-
        # order-free, but hash-ordered set iteration is banned in the
        # simulation packages — see docs/static-analysis.md, R3).
        for nid in self._nodes:
            if nid not in alive or nid in seen:
                continue
            components += 1
            stack = [nid]
            seen.add(nid)
            while stack:
                v = stack.pop()
                for w in self._nbrs.get(v, ()):
                    if w in alive and w not in seen:
                        seen.add(w)
                        stack.append(w)
        return components

    def average_degree(self) -> float:
        """Mean neighbor count over all registered nodes."""
        if not self._vectorized:
            n = self.graph.number_of_nodes()
            if n == 0:
                return 0.0
            return 2.0 * self.graph.number_of_edges() / n
        n = len(self._nodes)
        if n == 0:
            return 0.0
        return 2.0 * self._current_edge_count() / n

    def _current_edge_count(self) -> int:
        if not self._removed_since_rebuild:
            return self._edge_count
        ids = self._arena_ids
        present = np.fromiter(
            (nid in self._nodes for nid in ids), dtype=bool, count=len(ids)
        )
        masked = self._adj & present[:, None] & present[None, :]
        return int(np.count_nonzero(masked)) // 2

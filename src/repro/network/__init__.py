"""Simulated wireless ad-hoc network.

The paper's setting: *"As devices move within the range of each others a
local ad-hoc network forms spontaneously"* (Section 1), with no fixed
infrastructure required (Section 2). This subpackage provides the parts of
that setting the negotiation protocol actually observes:

* node positions and **mobility** (:mod:`repro.network.mobility` — random
  waypoint et al.);
* **radio connectivity** via the unit-disc model with distance-dependent
  link bandwidth (:mod:`repro.network.radio`);
* a dynamic **topology** graph with neighbor discovery
  (:mod:`repro.network.topology`);
* lossy, latency-bearing **message channels** and typed unicast/broadcast
  **messaging** (:mod:`repro.network.channel`,
  :mod:`repro.network.messaging`).

Real 802.11 PHY/MAC details (contention, fading) are out of scope — the
negotiation outcome depends on who hears the broadcast, message latency /
loss, and link bandwidth for communication cost, all of which are modeled.
"""

from repro.network.geometry import Point, distance
from repro.network.mobility import (
    GroupMobility,
    MobilityModel,
    RandomWaypoint,
    StaticPlacement,
)
from repro.network.radio import DiscRadio, RadioModel
from repro.network.topology import Topology
from repro.network.channel import ChannelModel
from repro.network.messaging import Message, NetworkService

__all__ = [
    "Point",
    "distance",
    "MobilityModel",
    "RandomWaypoint",
    "StaticPlacement",
    "GroupMobility",
    "RadioModel",
    "DiscRadio",
    "Topology",
    "ChannelModel",
    "Message",
    "NetworkService",
]

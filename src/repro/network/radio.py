"""Radio connectivity and link-quality models.

:class:`DiscRadio` is the standard unit-disc model: two nodes are linked
iff their distance is at most ``range_m``. Link bandwidth degrades with
distance (rate-adaptation, as in 802.11): full nominal bandwidth up to
half range, then linear fall-off to ``min_rate_fraction`` at the edge.
Message loss probability rises from ``base_loss`` at zero distance to
``edge_loss`` at full range.

These three curves (connectivity, bandwidth, loss) are everything the
negotiation layer observes about the PHY.
"""

from __future__ import annotations

import abc
from typing import Optional

import numpy as np

from repro.network.geometry import Point, distance


class RadioModel(abc.ABC):
    """Predicts link existence and quality from node positions.

    Radio models are *isotropic*: link existence and quality are pure
    functions of the sender–receiver distance. That contract is what
    lets the topology arena evaluate a model over a whole pairwise
    distance matrix at once — the ``*_matrix`` methods below take exact
    distances (see :func:`repro.network.geometry.pairwise_distances`)
    and must agree elementwise, bit for bit, with their scalar
    counterparts. The base-class implementations guarantee that by
    looping the scalar methods over synthetic collinear positions;
    concrete models override them with numpy broadcasting.
    """

    #: Distance beyond which the matrix results are constants (out of
    #: range), so the distance matrix may be approximate past it.
    #: ``None`` means every entry must be exact.
    matrix_distance_cutoff: Optional[float] = None

    @abc.abstractmethod
    def in_range(self, a: Point, b: Point) -> bool:
        """Whether a direct link exists between positions ``a`` and ``b``."""

    @abc.abstractmethod
    def bandwidth(self, a: Point, b: Point) -> float:
        """Link bandwidth in kb/s (0.0 when out of range)."""

    @abc.abstractmethod
    def loss_probability(self, a: Point, b: Point) -> float:
        """Per-message loss probability in [0, 1] (1.0 when out of range)."""

    # -- vectorized counterparts --------------------------------------------
    #
    # ``dist`` holds exact pairwise distances (``math.hypot``); a pair at
    # distance d and the positions (0, 0)-(d, 0) are indistinguishable to
    # an isotropic model, so the fallbacks below are bit-identical to the
    # scalar methods by construction.

    def in_range_matrix(self, dist: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`in_range` over a distance array."""
        origin = (0.0, 0.0)
        return np.fromiter(
            (self.in_range(origin, (d, 0.0)) for d in dist.ravel().tolist()),
            dtype=bool, count=dist.size,
        ).reshape(dist.shape)

    def bandwidth_matrix(self, dist: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`bandwidth` over a distance array."""
        origin = (0.0, 0.0)
        return np.fromiter(
            (self.bandwidth(origin, (d, 0.0)) for d in dist.ravel().tolist()),
            dtype=np.float64, count=dist.size,
        ).reshape(dist.shape)

    def loss_matrix(self, dist: np.ndarray) -> np.ndarray:
        """Elementwise :meth:`loss_probability` over a distance array."""
        origin = (0.0, 0.0)
        return np.fromiter(
            (self.loss_probability(origin, (d, 0.0)) for d in dist.ravel().tolist()),
            dtype=np.float64, count=dist.size,
        ).reshape(dist.shape)


class DiscRadio(RadioModel):
    """Unit-disc connectivity with distance-adaptive rate and loss.

    Args:
        range_m: Radio range in meters.
        nominal_bandwidth: Full link rate in kb/s at close distance.
        min_rate_fraction: Fraction of nominal rate remaining at the edge
            of the range (simple two-segment rate adaptation).
        base_loss: Loss probability at distance 0.
        edge_loss: Loss probability at the range edge.
    """

    def __init__(
        self,
        range_m: float = 100.0,
        nominal_bandwidth: float = 5000.0,
        min_rate_fraction: float = 0.2,
        base_loss: float = 0.0,
        edge_loss: float = 0.1,
    ) -> None:
        if range_m <= 0:
            raise ValueError("radio range must be positive")
        if not (0.0 <= min_rate_fraction <= 1.0):
            raise ValueError("min_rate_fraction must be in [0, 1]")
        if not (0.0 <= base_loss <= 1.0 and 0.0 <= edge_loss <= 1.0):
            raise ValueError("loss probabilities must be in [0, 1]")
        self.range_m = float(range_m)
        self.nominal_bandwidth = float(nominal_bandwidth)
        self.min_rate_fraction = float(min_rate_fraction)
        self.base_loss = float(base_loss)
        self.edge_loss = float(edge_loss)

    @property
    def matrix_distance_cutoff(self) -> float:  # type: ignore[override]
        """Beyond the radio range every matrix entry is a constant."""
        return self.range_m

    def in_range(self, a: Point, b: Point) -> bool:
        return distance(a, b) <= self.range_m

    def bandwidth(self, a: Point, b: Point) -> float:
        d = distance(a, b)
        if d > self.range_m:
            return 0.0
        half = self.range_m / 2.0
        if d <= half:
            return self.nominal_bandwidth
        # Linear fall-off from nominal at half range to the floor at edge.
        frac = (d - half) / half
        factor = 1.0 - frac * (1.0 - self.min_rate_fraction)
        return self.nominal_bandwidth * factor

    def loss_probability(self, a: Point, b: Point) -> float:
        d = distance(a, b)
        if d > self.range_m:
            return 1.0
        frac = d / self.range_m
        return self.base_loss + frac * (self.edge_loss - self.base_loss)

    # -- vectorized counterparts --------------------------------------------
    #
    # Same IEEE double operations as the scalar methods, applied
    # elementwise — bit-identical wherever ``dist`` is exact (pinned by
    # ``tests/test_topology_vector.py``).

    def in_range_matrix(self, dist: np.ndarray) -> np.ndarray:
        return dist <= self.range_m

    def bandwidth_matrix(self, dist: np.ndarray) -> np.ndarray:
        bw = np.zeros(dist.shape, dtype=np.float64)
        in_r = dist <= self.range_m
        half = self.range_m / 2.0
        near = in_r & (dist <= half)
        bw[near] = self.nominal_bandwidth
        far = in_r & ~near
        if far.any():
            frac = (dist[far] - half) / half
            factor = 1.0 - frac * (1.0 - self.min_rate_fraction)
            bw[far] = self.nominal_bandwidth * factor
        return bw

    def loss_matrix(self, dist: np.ndarray) -> np.ndarray:
        loss = np.ones(dist.shape, dtype=np.float64)
        in_r = dist <= self.range_m
        if in_r.any():
            frac = dist[in_r] / self.range_m
            loss[in_r] = self.base_loss + frac * (self.edge_loss - self.base_loss)
        return loss

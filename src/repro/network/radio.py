"""Radio connectivity and link-quality models.

:class:`DiscRadio` is the standard unit-disc model: two nodes are linked
iff their distance is at most ``range_m``. Link bandwidth degrades with
distance (rate-adaptation, as in 802.11): full nominal bandwidth up to
half range, then linear fall-off to ``min_rate_fraction`` at the edge.
Message loss probability rises from ``base_loss`` at zero distance to
``edge_loss`` at full range.

These three curves (connectivity, bandwidth, loss) are everything the
negotiation layer observes about the PHY.
"""

from __future__ import annotations

import abc

from repro.network.geometry import Point, distance


class RadioModel(abc.ABC):
    """Predicts link existence and quality from node positions."""

    @abc.abstractmethod
    def in_range(self, a: Point, b: Point) -> bool:
        """Whether a direct link exists between positions ``a`` and ``b``."""

    @abc.abstractmethod
    def bandwidth(self, a: Point, b: Point) -> float:
        """Link bandwidth in kb/s (0.0 when out of range)."""

    @abc.abstractmethod
    def loss_probability(self, a: Point, b: Point) -> float:
        """Per-message loss probability in [0, 1] (1.0 when out of range)."""


class DiscRadio(RadioModel):
    """Unit-disc connectivity with distance-adaptive rate and loss.

    Args:
        range_m: Radio range in meters.
        nominal_bandwidth: Full link rate in kb/s at close distance.
        min_rate_fraction: Fraction of nominal rate remaining at the edge
            of the range (simple two-segment rate adaptation).
        base_loss: Loss probability at distance 0.
        edge_loss: Loss probability at the range edge.
    """

    def __init__(
        self,
        range_m: float = 100.0,
        nominal_bandwidth: float = 5000.0,
        min_rate_fraction: float = 0.2,
        base_loss: float = 0.0,
        edge_loss: float = 0.1,
    ) -> None:
        if range_m <= 0:
            raise ValueError("radio range must be positive")
        if not (0.0 <= min_rate_fraction <= 1.0):
            raise ValueError("min_rate_fraction must be in [0, 1]")
        if not (0.0 <= base_loss <= 1.0 and 0.0 <= edge_loss <= 1.0):
            raise ValueError("loss probabilities must be in [0, 1]")
        self.range_m = float(range_m)
        self.nominal_bandwidth = float(nominal_bandwidth)
        self.min_rate_fraction = float(min_rate_fraction)
        self.base_loss = float(base_loss)
        self.edge_loss = float(edge_loss)

    def in_range(self, a: Point, b: Point) -> bool:
        return distance(a, b) <= self.range_m

    def bandwidth(self, a: Point, b: Point) -> float:
        d = distance(a, b)
        if d > self.range_m:
            return 0.0
        half = self.range_m / 2.0
        if d <= half:
            return self.nominal_bandwidth
        # Linear fall-off from nominal at half range to the floor at edge.
        frac = (d - half) / half
        factor = 1.0 - frac * (1.0 - self.min_rate_fraction)
        return self.nominal_bandwidth * factor

    def loss_probability(self, a: Point, b: Point) -> float:
        d = distance(a, b)
        if d > self.range_m:
            return 1.0
        frac = d / self.range_m
        return self.base_loss + frac * (self.edge_loss - self.base_loss)

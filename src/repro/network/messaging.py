"""Typed messages and the network delivery service.

:class:`NetworkService` binds the engine, topology and channel model into
the send/broadcast API agents use. Deliveries are engine events at
:class:`~repro.sim.events.Priority.DELIVERY`; each registered node gets an
inbox callback. Every transmission is traced (category ``"net"``), which
is how the experiments count protocol messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import UnknownNodeError
from repro.network.channel import ChannelModel
from repro.network.topology import Topology
from repro.sim.engine import Engine
from repro.sim.events import Priority
from repro.sim.sequences import Sequence

_message_ids = Sequence()


@dataclass(frozen=True)
class Message:
    """One protocol message.

    Attributes:
        sender: Source node id.
        recipient: Destination node id (for broadcasts, the concrete
            neighbor the copy was delivered to).
        kind: Protocol message kind (e.g. ``"CFP"``, ``"PROPOSE"``).
        payload: Free-form body.
        size_kb: Simulated wire size, drives transmission latency.
        mid: Unique message id.
        broadcast: Whether this copy was part of a broadcast.
    """

    sender: str
    recipient: str
    kind: str
    payload: Any
    size_kb: float = 1.0
    mid: int = field(default_factory=_message_ids.next)
    broadcast: bool = False


InboxHandler = Callable[[Message, float], None]
"""Callback invoked as ``handler(message, now)`` on delivery."""


class NetworkService:
    """Message delivery over the simulated ad-hoc network.

    Args:
        engine: The simulation engine (clock + event queue).
        topology: Connectivity source.
        channel: Latency/loss model.
    """

    def __init__(self, engine: Engine, topology: Topology, channel: ChannelModel) -> None:
        self.engine = engine
        self.topology = topology
        self.channel = channel
        self._inboxes: Dict[str, InboxHandler] = {}
        self.sent_count = 0
        self.delivered_count = 0
        self.lost_count = 0

    # -- registration ------------------------------------------------------------

    def register(self, node_id: str, handler: InboxHandler) -> None:
        """Attach the inbox handler for ``node_id`` (one per node)."""
        if node_id not in self.topology:
            raise UnknownNodeError(node_id)
        self._inboxes[node_id] = handler

    def unregister(self, node_id: str) -> None:
        self._inboxes.pop(node_id, None)

    # -- sending ------------------------------------------------------------

    def send(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size_kb: float = 1.0,
    ) -> Optional[Message]:
        """Unicast a message; returns it, or ``None`` if lost in transit.

        A returned message is *scheduled* for delivery, not yet delivered.
        """
        message = Message(
            sender=sender, recipient=recipient, kind=kind,
            payload=payload, size_kb=size_kb,
        )
        return self._transmit(message)

    def send_routed(
        self,
        sender: str,
        recipient: str,
        kind: str,
        payload: Any,
        size_kb: float = 1.0,
    ) -> Optional[Message]:
        """Unicast over the best multi-hop route (relayed extension).

        The route is source-computed at send time (abstracting an ad-hoc
        routing protocol such as DSR) and served by the topology's
        per-epoch route cache — repeated sends between the same pair in
        an unchanged topology pay no search. Each hop independently
        suffers the link's loss and latency, so end-to-end delivery
        probability is the product of the per-hop survival rates and
        latency is the sum of per-hop latencies. Falls back to plain
        :meth:`send` for direct links. Counts one radio transmission per
        hop.
        """
        if sender == recipient:
            return self.send(sender, recipient, kind, payload, size_kb)
        route = self.topology.shortest_route(sender, recipient)
        if route is None:
            self.sent_count += 1
            self.lost_count += 1
            self.engine.tracer.emit(
                self.engine.now, "net", "unroutable",
                kind=kind, src=sender, dst=recipient,
            )
            return None
        if len(route) <= 2:
            return self.send(sender, recipient, kind, payload, size_kb)
        total_latency = 0.0
        for u, v in zip(route, route[1:]):
            self.sent_count += 1
            hop_latency = self.channel.transmit(u, v, size_kb)
            if hop_latency is None or not self.topology.node(v).alive:
                self.lost_count += 1
                self.engine.tracer.emit(
                    self.engine.now, "net", "lost",
                    kind=kind, src=sender, dst=recipient, hop=f"{u}->{v}",
                )
                return None
            total_latency += hop_latency
        message = Message(
            sender=sender, recipient=recipient, kind=kind,
            payload=payload, size_kb=size_kb,
        )
        self.engine.tracer.emit(
            self.engine.now, "net", "sent_routed",
            mid=message.mid, kind=kind, src=sender, dst=recipient,
            hops=len(route) - 1,
        )
        self.engine.schedule(
            total_latency,
            lambda now, m=message: self._deliver(m, now),
            priority=Priority.DELIVERY,
        )
        return message

    def broadcast(
        self,
        sender: str,
        kind: str,
        payload: Any,
        size_kb: float = 1.0,
    ) -> Tuple[Message, ...]:
        """One-hop broadcast to every current neighbor of ``sender``.

        This is the paper's step 1: "The Negotiation Organizer broadcasts
        the description of each service, as well as user's preferences".
        Each neighbor's copy suffers loss/latency independently.

        Returns:
            The message copies scheduled for delivery (lost copies
            excluded).
        """
        delivered = []
        for neighbor in self.topology.neighbors(sender):
            message = Message(
                sender=sender, recipient=neighbor, kind=kind,
                payload=payload, size_kb=size_kb, broadcast=True,
            )
            if self._transmit(message) is not None:
                delivered.append(message)
        return tuple(delivered)

    def _transmit(self, message: Message) -> Optional[Message]:
        self.sent_count += 1
        dead_target = (
            message.recipient in self.topology
            and not self.topology.node(message.recipient).alive
        )
        latency = self.channel.transmit(
            message.sender, message.recipient, message.size_kb
        )
        if latency is None or dead_target:
            self.lost_count += 1
            self.engine.tracer.emit(
                self.engine.now, "net", "lost",
                mid=message.mid, kind=message.kind,
                src=message.sender, dst=message.recipient,
            )
            return None
        self.engine.tracer.emit(
            self.engine.now, "net", "sent",
            mid=message.mid, kind=message.kind,
            src=message.sender, dst=message.recipient, size_kb=message.size_kb,
        )
        self.engine.schedule(
            latency,
            lambda now, m=message: self._deliver(m, now),
            priority=Priority.DELIVERY,
        )
        return message

    def _deliver(self, message: Message, now: float) -> None:
        node = self.topology.node(message.recipient) if message.recipient in self.topology else None
        if node is None or not node.alive:
            self.lost_count += 1
            return
        handler = self._inboxes.get(message.recipient)
        if handler is None:
            # No agent attached: the radio heard it, nobody was listening.
            self.lost_count += 1
            return
        self.delivered_count += 1
        self.engine.tracer.emit(
            now, "net", "delivered",
            mid=message.mid, kind=message.kind,
            src=message.sender, dst=message.recipient,
        )
        handler(message, now)

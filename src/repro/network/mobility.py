"""Node mobility models.

Mobility is what makes the paper's environment "highly dynamic": nodes
drift in and out of radio range, so the set of potential coalition members
changes over time. Three models are provided:

* :class:`StaticPlacement` — nodes stay put (the fixed-infrastructure
  limit case the paper keeps in scope);
* :class:`RandomWaypoint` — the classic ad-hoc-network benchmark model:
  pick a uniform destination, travel at a uniform-random speed, pause,
  repeat;
* :class:`GroupMobility` — a simplified reference-point group model where
  members jitter around a leader following random waypoint, giving
  correlated movement (people walking together with their devices).

All models are deterministic given the engine's RNG streams and advance in
discrete steps of ``tick`` simulated seconds.

The hot advance/scatter geometry is vectorized over a position arena
while RNG values are drawn in the exact per-node order of the original
scalar walks, so traces stay **seed-identical**: random waypoint moves
all mid-leg nodes (no RNG needed) with numpy broadcasting and replays
the scalar state machine only for nodes that arrive, pause or start a
leg; group mobility draws the whole member jitter batch from the stream
in one call (bitwise-equal to the sequential scalar draws).
"""

from __future__ import annotations

import abc
import math
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.network.geometry import Point, clamp_to_area, distance, lerp
from repro.resources.node import Node


class MobilityModel(abc.ABC):
    """Advances node positions over simulated time."""

    @abc.abstractmethod
    def place(self, nodes: Sequence[Node]) -> None:
        """Assign initial positions to the nodes."""

    @abc.abstractmethod
    def advance(self, nodes: Sequence[Node], dt: float) -> None:
        """Move the nodes ``dt`` simulated seconds forward."""


class StaticPlacement(MobilityModel):
    """Nodes placed uniformly at random (or explicitly) and never moved.

    Args:
        width: Area width in meters.
        height: Area height in meters.
        rng: RNG stream for the initial uniform placement.
        positions: Optional explicit node→position mapping; nodes not
            listed get a uniform-random position.
    """

    def __init__(
        self,
        width: float,
        height: float,
        rng: np.random.Generator,
        positions: Mapping[str, Point] | None = None,
    ) -> None:
        self.width = float(width)
        self.height = float(height)
        self.rng = rng
        self.positions = dict(positions or {})

    def place(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            if node.node_id in self.positions:
                node.move_to(*self.positions[node.node_id])
            else:
                node.move_to(
                    float(self.rng.uniform(0, self.width)),
                    float(self.rng.uniform(0, self.height)),
                )

    def advance(self, nodes: Sequence[Node], dt: float) -> None:
        pass  # static by definition


class RandomWaypoint(MobilityModel):
    """The random-waypoint mobility model.

    Each node independently: chooses a uniform destination in the area,
    moves toward it at a speed drawn uniformly from
    ``[speed_min, speed_max]``, pauses ``pause`` seconds on arrival, then
    repeats. ``speed_max = 0`` degenerates to static placement.

    Args:
        width: Area width (m).
        height: Area height (m).
        speed_min: Minimum travel speed (m/s), > 0 unless max is 0.
        speed_max: Maximum travel speed (m/s).
        pause: Pause time at each waypoint (s).
        rng: RNG stream (one shared stream keeps runs reproducible).
    """

    def __init__(
        self,
        width: float,
        height: float,
        speed_min: float,
        speed_max: float,
        pause: float,
        rng: np.random.Generator,
    ) -> None:
        if speed_max < speed_min or speed_min < 0:
            raise ValueError("need 0 <= speed_min <= speed_max")
        self.width = float(width)
        self.height = float(height)
        self.speed_min = float(speed_min)
        self.speed_max = float(speed_max)
        self.pause = float(pause)
        self.rng = rng
        # Per-node state: (destination, speed, remaining pause).
        self._state: Dict[str, Tuple[Point, float, float]] = {}

    def _new_leg(self, node: Node) -> Tuple[Point, float, float]:
        dest = (
            float(self.rng.uniform(0, self.width)),
            float(self.rng.uniform(0, self.height)),
        )
        if self.speed_max <= 0.0:
            speed = 0.0
        else:
            speed = float(self.rng.uniform(max(self.speed_min, 1e-9), self.speed_max))
        return dest, speed, 0.0

    def place(self, nodes: Sequence[Node]) -> None:
        for node in nodes:
            node.move_to(
                float(self.rng.uniform(0, self.width)),
                float(self.rng.uniform(0, self.height)),
            )
            self._state[node.node_id] = self._new_leg(node)

    def advance(self, nodes: Sequence[Node], dt: float) -> None:
        if self.speed_max <= 0.0:
            return
        # Split the fleet: nodes that stay mid-leg for the whole step need
        # no RNG and move by pure geometry (vectorized below); nodes that
        # pause, arrive, or have no leg yet replay the original scalar
        # walk in node order, so the RNG draw sequence is unchanged.
        states = [self._state.get(node.node_id) for node in nodes]
        slow = [True] * len(nodes)
        if dt > 1e-12:
            maybe = [
                i for i, s in enumerate(states)
                if s is not None and s[2] == 0.0
            ]
            if maybe:
                pos = np.array([nodes[i].position for i in maybe], dtype=np.float64)
                dest = np.array([states[i][0] for i in maybe], dtype=np.float64)
                speed = np.array([states[i][1] for i in maybe], dtype=np.float64)
                # Exact per-node gap (math.hypot) so the arrive-vs-travel
                # branch decides identically to the scalar walk.
                gap = np.fromiter(
                    map(
                        math.hypot,
                        (pos[:, 0] - dest[:, 0]).tolist(),
                        (pos[:, 1] - dest[:, 1]).tolist(),
                    ),
                    dtype=np.float64, count=len(maybe),
                )
                with np.errstate(divide="ignore"):
                    travel_time = np.where(speed > 0, gap / speed, np.inf)
                moving = travel_time > dt
                if moving.any():
                    with np.errstate(divide="ignore", invalid="ignore"):
                        t = (speed * dt) / gap
                    new_x = pos[:, 0] + (dest[:, 0] - pos[:, 0]) * t
                    new_y = pos[:, 1] + (dest[:, 1] - pos[:, 1]) * t
                    new_x = np.minimum(np.maximum(new_x, 0.0), self.width)
                    new_y = np.minimum(np.maximum(new_y, 0.0), self.height)
                    xs = new_x.tolist()
                    ys = new_y.tolist()
                    for k, i in enumerate(maybe):
                        if moving[k]:
                            slow[i] = False
                            nodes[i].move_to(xs[k], ys[k])
                            # dest/speed/pausing are unchanged mid-leg.
                            self._state[nodes[i].node_id] = states[i]
        for i, node in enumerate(nodes):
            if not slow[i]:
                continue
            state = states[i]
            if state is None:
                state = self._new_leg(node)
            remaining = dt
            dest, speed, pausing = state
            pos = node.position
            while remaining > 1e-12:
                if pausing > 0.0:
                    wait = min(pausing, remaining)
                    pausing -= wait
                    remaining -= wait
                    if pausing == 0.0:
                        dest, speed, _ = self._new_leg(node)
                    continue
                gap = distance(pos, dest)
                travel_time = gap / speed if speed > 0 else float("inf")
                if travel_time <= remaining:
                    pos = dest
                    remaining -= travel_time
                    pausing = self.pause
                    if pausing == 0.0:
                        dest, speed, _ = self._new_leg(node)
                else:
                    pos = lerp(pos, dest, (speed * remaining) / gap)
                    remaining = 0.0
            node.move_to(*clamp_to_area(pos, self.width, self.height))
            self._state[node.node_id] = (dest, speed, pausing)


class GroupMobility(MobilityModel):
    """Reference-point group mobility: members jitter around a leader.

    The (virtual) leader follows :class:`RandomWaypoint`; each member's
    position is the leader's plus a bounded random offset refreshed every
    step. Models a group of people moving together with their devices —
    the paper's spontaneous-coalition scenario.

    Args:
        leader_model: The waypoint model driving the group center.
        spread: Maximum member offset from the leader (m).
        rng: RNG stream for the member jitter.
    """

    def __init__(
        self,
        leader_model: RandomWaypoint,
        spread: float,
        rng: np.random.Generator,
    ) -> None:
        if spread < 0:
            raise ValueError("spread must be >= 0")
        self.leader_model = leader_model
        self.spread = float(spread)
        self.rng = rng
        self._leader = Node("__group_leader__")

    def _scatter(self, nodes: Sequence[Node]) -> None:
        cx, cy = self._leader.position
        # One batched draw replaces the per-node (angle, radius) pairs:
        # ``uniform(0, high)`` is ``high * next_double``, so consuming the
        # same stream positions yields bitwise-identical offsets to the
        # scalar loop this replaces.
        u = self.rng.random(2 * len(nodes))
        angles = (2 * np.pi) * u[0::2]
        radii = self.spread * u[1::2]
        xs = cx + radii * np.cos(angles)
        ys = cy + radii * np.sin(angles)
        xs = np.minimum(np.maximum(xs, 0.0), self.leader_model.width)
        ys = np.minimum(np.maximum(ys, 0.0), self.leader_model.height)
        for node, x, y in zip(nodes, xs.tolist(), ys.tolist()):
            node.move_to(x, y)

    def place(self, nodes: Sequence[Node]) -> None:
        self.leader_model.place([self._leader])
        self._scatter(nodes)

    def advance(self, nodes: Sequence[Node], dt: float) -> None:
        self.leader_model.advance([self._leader], dt)
        self._scatter(nodes)

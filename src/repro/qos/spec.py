"""The complete QoS specification (paper: ``QoS = {Dim,Attr,Val,DAr,AVr,Deps}``).

:class:`QoSSpec` bundles the dimensions, attributes (each carrying its value
domain, i.e. the ``AVr`` relation), the dimension→attribute relation
(``DAr``, carried by each dimension), and the dependency set. Construction
validates the structural rules the paper's formalization implies:

* every attribute referenced by a dimension exists;
* every attribute belongs to exactly one dimension (``DAr`` partitions);
* dependency predicates reference only known attributes.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Mapping, Optional, Tuple

from repro.errors import (
    QoSSpecError,
    UnknownAttributeError,
    UnknownDimensionError,
)
from repro.qos.attribute import Attribute
from repro.qos.dependencies import DependencySet
from repro.qos.dimension import QoSDimension


class QoSSpec:
    """An application's QoS requirements representation.

    Args:
        name: Application/spec identifier (e.g. ``"video-streaming"``).
        dimensions: The ``Dim``/``DAr`` component, in specification order.
        attributes: The ``Attr``/``AVr`` component; each attribute's
            ``domain`` is its value set.
        dependencies: The ``Deps`` component (optional).

    Raises:
        QoSSpecError: On any structural inconsistency (see module docs).
    """

    def __init__(
        self,
        name: str,
        dimensions: Iterable[QoSDimension],
        attributes: Iterable[Attribute],
        dependencies: Optional[DependencySet] = None,
    ) -> None:
        self.name = name
        self.dimensions: Tuple[QoSDimension, ...] = tuple(dimensions)
        attrs = tuple(attributes)
        self.dependencies = dependencies if dependencies is not None else DependencySet()

        if not self.dimensions:
            raise QoSSpecError(f"spec {name!r} has no dimensions")
        dim_names = [d.name for d in self.dimensions]
        if len(set(dim_names)) != len(dim_names):
            raise QoSSpecError(f"spec {name!r} has duplicate dimension names")

        attr_names = [a.name for a in attrs]
        if len(set(attr_names)) != len(attr_names):
            raise QoSSpecError(f"spec {name!r} has duplicate attribute names")
        self._attributes: Dict[str, Attribute] = {a.name: a for a in attrs}
        self._dimensions: Dict[str, QoSDimension] = {d.name: d for d in self.dimensions}

        # DAr must reference known attributes and partition them.
        owner: Dict[str, str] = {}
        for dim in self.dimensions:
            for attr_name in dim.attributes:
                if attr_name not in self._attributes:
                    raise QoSSpecError(
                        f"dimension {dim.name!r} references unknown attribute "
                        f"{attr_name!r}"
                    )
                if attr_name in owner:
                    raise QoSSpecError(
                        f"attribute {attr_name!r} belongs to both "
                        f"{owner[attr_name]!r} and {dim.name!r}"
                    )
                owner[attr_name] = dim.name
        orphans = set(self._attributes) - set(owner)
        if orphans:
            raise QoSSpecError(
                f"attributes not assigned to any dimension: {sorted(orphans)!r}"
            )
        self._owner = owner

        for dep in self.dependencies:
            for attr_name in dep.attributes:
                if attr_name not in self._attributes:
                    raise QoSSpecError(
                        f"dependency {dep.name!r} references unknown attribute "
                        f"{attr_name!r}"
                    )

    # -- lookups ----------------------------------------------------------

    def dimension(self, name: str) -> QoSDimension:
        """Look up a dimension by identifier."""
        try:
            return self._dimensions[name]
        except KeyError:
            raise UnknownDimensionError(name) from None

    def attribute(self, name: str) -> Attribute:
        """Look up an attribute by identifier."""
        try:
            return self._attributes[name]
        except KeyError:
            raise UnknownAttributeError(name) from None

    def dimension_of(self, attribute_name: str) -> QoSDimension:
        """The dimension owning ``attribute_name`` (``DAr`` preimage)."""
        if attribute_name not in self._owner:
            raise UnknownAttributeError(attribute_name)
        return self._dimensions[self._owner[attribute_name]]

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """All attribute names, in dimension-then-specification order."""
        return tuple(a for d in self.dimensions for a in d.attributes)

    @property
    def dimension_names(self) -> Tuple[str, ...]:
        return tuple(d.name for d in self.dimensions)

    # -- validation -------------------------------------------------------

    def validate_assignment(self, assignment: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate a full attribute→value assignment against the spec.

        Checks domain membership of every value, completeness (every
        attribute assigned), and all dependencies.

        Returns:
            The coerced assignment.
        """
        coerced: Dict[str, Any] = {}
        for attr_name, value in assignment.items():
            coerced[attr_name] = self.attribute(attr_name).validate(value)
        missing = set(self._attributes) - set(coerced)
        if missing:
            raise QoSSpecError(f"assignment missing attributes: {sorted(missing)!r}")
        self.dependencies.check(coerced)
        return coerced

    def validate_partial(self, assignment: Mapping[str, Any]) -> Dict[str, Any]:
        """Like :meth:`validate_assignment` but allows missing attributes.

        Dependencies are only checked where applicable.
        """
        coerced: Dict[str, Any] = {}
        for attr_name, value in assignment.items():
            coerced[attr_name] = self.attribute(attr_name).validate(value)
        self.dependencies.check(coerced)
        return coerced

    def __repr__(self) -> str:
        dims = ", ".join(self.dimension_names)
        return f"<QoSSpec {self.name!r} dims=[{dims}]>"

"""(De)serialization of QoS specifications and service requests.

Converts :class:`~repro.qos.spec.QoSSpec` and
:class:`~repro.qos.request.ServiceRequest` to and from plain dicts of
JSON-compatible values, so applications can ship their QoS requirements
over the (real) wire or keep them in config files.

Limitations: dependency *predicates* are arbitrary Python callables and
cannot round-trip through JSON. Dependencies serialize by name and
attribute list only; deserialization requires a ``dependency_registry``
mapping names back to predicates (a standard approach for user-defined
constraint hooks). Specs without dependencies round-trip losslessly.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.errors import QoSSpecError, RequestError
from repro.qos.attribute import Attribute
from repro.qos.dependencies import Dependency, DependencySet
from repro.qos.dimension import QoSDimension
from repro.qos.domain import ContinuousDomain, DiscreteDomain, Domain
from repro.qos.request import (
    AttributePreference,
    DimensionPreference,
    PreferenceItem,
    ServiceRequest,
    ValueInterval,
)
from repro.qos.spec import QoSSpec
from repro.qos.types import ValueType

PredicateRegistry = Mapping[str, Callable[[Mapping[str, Any]], bool]]


# -- domains ----------------------------------------------------------------


def domain_to_dict(domain: Domain) -> Dict[str, Any]:
    """Serialize a value domain."""
    if isinstance(domain, DiscreteDomain):
        return {
            "kind": "discrete",
            "type": domain.value_type.value,
            "values": list(domain.values),
        }
    if isinstance(domain, ContinuousDomain):
        return {
            "kind": "continuous",
            "type": domain.value_type.value,
            "lo": domain.lo,
            "hi": domain.hi,
        }
    raise QoSSpecError(f"unknown domain type: {type(domain).__name__}")


def domain_from_dict(data: Mapping[str, Any]) -> Domain:
    """Deserialize a value domain."""
    try:
        kind = data["kind"]
        value_type = ValueType(data["type"])
    except (KeyError, ValueError) as exc:
        raise QoSSpecError(f"malformed domain record: {exc}") from None
    if kind == "discrete":
        return DiscreteDomain(value_type, tuple(data["values"]))
    if kind == "continuous":
        return ContinuousDomain(value_type, data["lo"], data["hi"])
    raise QoSSpecError(f"unknown domain kind: {kind!r}")


# -- specs ----------------------------------------------------------------


def spec_to_dict(spec: QoSSpec) -> Dict[str, Any]:
    """Serialize a complete QoS specification."""
    return {
        "name": spec.name,
        "dimensions": [
            {"name": d.name, "attributes": list(d.attributes)}
            for d in spec.dimensions
        ],
        "attributes": [
            {
                "name": spec.attribute(a).name,
                "unit": spec.attribute(a).unit,
                "domain": domain_to_dict(spec.attribute(a).domain),
            }
            for a in spec.attribute_names
        ],
        "dependencies": [
            {"name": dep.name, "attributes": list(dep.attributes)}
            for dep in spec.dependencies
        ],
    }


def spec_from_dict(
    data: Mapping[str, Any],
    dependency_registry: Optional[PredicateRegistry] = None,
) -> QoSSpec:
    """Deserialize a QoS specification.

    Args:
        data: The output of :func:`spec_to_dict`.
        dependency_registry: name → predicate for each serialized
            dependency; required iff the record lists dependencies.

    Raises:
        QoSSpecError: On malformed records or missing predicates.
    """
    try:
        dimensions = tuple(
            QoSDimension(d["name"], tuple(d["attributes"]))
            for d in data["dimensions"]
        )
        attributes = tuple(
            Attribute(
                a["name"],
                domain_from_dict(a["domain"]),
                unit=a.get("unit", ""),
            )
            for a in data["attributes"]
        )
        dep_records = data.get("dependencies", [])
    except KeyError as exc:
        raise QoSSpecError(f"malformed spec record: missing {exc}") from None

    deps = []
    for record in dep_records:
        name = record["name"]
        registry = dependency_registry or {}
        if name not in registry:
            raise QoSSpecError(
                f"dependency {name!r} needs a predicate in the registry "
                f"(predicates are code and cannot be serialized)"
            )
        deps.append(
            Dependency(
                name=name,
                attributes=tuple(record["attributes"]),
                predicate=registry[name],
            )
        )
    return QoSSpec(
        name=data["name"],
        dimensions=dimensions,
        attributes=attributes,
        dependencies=DependencySet(deps),
    )


# -- requests ----------------------------------------------------------------


def _item_to_dict(item: PreferenceItem) -> Any:
    if isinstance(item, ValueInterval):
        return {"interval": [item.best, item.worst]}
    return item


def _item_from_dict(data: Any) -> PreferenceItem:
    if isinstance(data, dict):
        try:
            best, worst = data["interval"]
        except (KeyError, ValueError) as exc:
            raise RequestError(f"malformed preference item: {data!r}") from None
        return ValueInterval(best, worst)
    return data


def request_to_dict(request: ServiceRequest) -> Dict[str, Any]:
    """Serialize a service request (references its spec by name)."""
    return {
        "name": request.name,
        "spec": request.spec.name,
        "dimensions": [
            {
                "dimension": dp.dimension,
                "attributes": [
                    {
                        "attribute": ap.attribute,
                        "items": [_item_to_dict(i) for i in ap.items],
                    }
                    for ap in dp.attributes
                ],
            }
            for dp in request.dimensions
        ],
    }


def request_from_dict(data: Mapping[str, Any], spec: QoSSpec) -> ServiceRequest:
    """Deserialize a service request against an already-loaded spec.

    Raises:
        RequestError: On malformed records or a spec-name mismatch.
    """
    if data.get("spec") != spec.name:
        raise RequestError(
            f"request targets spec {data.get('spec')!r}, got {spec.name!r}"
        )
    try:
        dimensions = tuple(
            DimensionPreference(
                dp["dimension"],
                tuple(
                    AttributePreference(
                        ap["attribute"],
                        tuple(_item_from_dict(i) for i in ap["items"]),
                    )
                    for ap in dp["attributes"]
                ),
            )
            for dp in data["dimensions"]
        )
    except KeyError as exc:
        raise RequestError(f"malformed request record: missing {exc}") from None
    return ServiceRequest(
        spec=spec, dimensions=dimensions, name=data.get("name", "request")
    )

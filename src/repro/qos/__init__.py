"""QoS requirements representation (Section 3 of the paper).

The paper models application QoS requirements as

    ``QoS = {Dim, Attr, Val, DAr, AVr, Deps}``

* ``Dim``  — set of QoS dimension identifiers (e.g. *Video Quality*);
* ``Attr`` — set of attribute identifiers (e.g. *frame rate*);
* ``Val``  — typed value sets: ``{Type, Domain}`` with
  ``Type ∈ {integer, float, string}`` and
  ``Domain ∈ {continuous, discrete}``;
* ``DAr``  — assigns each dimension its attributes;
* ``AVr``  — assigns each attribute its value set;
* ``Deps`` — inter-attribute value dependencies.

This subpackage implements that scheme faithfully
(:class:`~repro.qos.spec.QoSSpec`), plus the *service request* format of
Section 3.1 (:class:`~repro.qos.request.ServiceRequest`), in which users
express preferences as qualitative decreasing-importance orders over
dimensions, attributes, and values rather than numeric utilities.
"""

from repro.qos.types import ValueType, DomainKind
from repro.qos.domain import ContinuousDomain, DiscreteDomain, Domain
from repro.qos.attribute import Attribute
from repro.qos.dimension import QoSDimension
from repro.qos.dependencies import Dependency, DependencySet
from repro.qos.spec import QoSSpec
from repro.qos.request import (
    AttributePreference,
    DimensionPreference,
    PreferenceItem,
    ServiceRequest,
    ValueInterval,
)
from repro.qos.levels import DegradationLadder, QualityAssignment, build_ladder
from repro.qos.serialization import (
    request_from_dict,
    request_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.qos import catalog

__all__ = [
    "ValueType",
    "DomainKind",
    "Domain",
    "ContinuousDomain",
    "DiscreteDomain",
    "Attribute",
    "QoSDimension",
    "Dependency",
    "DependencySet",
    "QoSSpec",
    "AttributePreference",
    "DimensionPreference",
    "PreferenceItem",
    "ServiceRequest",
    "ValueInterval",
    "DegradationLadder",
    "QualityAssignment",
    "build_ladder",
    "spec_to_dict",
    "spec_from_dict",
    "request_to_dict",
    "request_from_dict",
    "catalog",
]

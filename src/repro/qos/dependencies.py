"""Inter-attribute value dependencies (paper: ``Deps``).

The paper defines ``Deps = {Dep_ij}`` with ``Dep_ij = f(Val_ki, Val_kj)`` —
a set of relations constraining pairs of attribute values. We generalize
slightly: a :class:`Dependency` is a named predicate over any subset of
attributes, evaluated against a (partial) value assignment. A dependency is
*applicable* only when all the attributes it mentions are assigned; partial
assignments never fail a dependency they cannot yet evaluate.

Example — "24-bit color requires at least 15 fps"::

    Dependency(
        name="deep-color-needs-fps",
        attributes=("color depth", "frame rate"),
        predicate=lambda v: v["color depth"] < 24 or v["frame rate"] >= 15,
    )
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Iterator, Mapping, Tuple

from repro.errors import DependencyError


@dataclass(frozen=True)
class Dependency:
    """A named predicate over attribute values.

    Attributes:
        name: Human-readable identifier, used in error messages.
        attributes: The attribute names the predicate reads. The predicate
            is only evaluated when all of them are present in the
            assignment under test.
        predicate: Maps ``{attr_name: value}`` (restricted to
            ``attributes``) to ``True`` (satisfied) / ``False`` (violated).
    """

    name: str
    attributes: Tuple[str, ...]
    predicate: Callable[[Mapping[str, Any]], bool] = field(compare=False)

    def __post_init__(self) -> None:
        if len(self.attributes) == 0:
            raise DependencyError(f"dependency {self.name!r} mentions no attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise DependencyError(
                f"dependency {self.name!r} lists duplicate attributes"
            )

    def applicable(self, assignment: Mapping[str, Any]) -> bool:
        """True when every attribute the predicate reads is assigned."""
        return all(a in assignment for a in self.attributes)

    def satisfied(self, assignment: Mapping[str, Any]) -> bool:
        """Evaluate the predicate; inapplicable dependencies are satisfied.

        The predicate sees only the attributes it declared, so a buggy
        predicate cannot silently couple to undeclared attributes.
        """
        if not self.applicable(assignment):
            return True
        restricted = {a: assignment[a] for a in self.attributes}
        return bool(self.predicate(restricted))


class DependencySet:
    """The ``Deps`` component of a QoS specification.

    An immutable-by-convention collection of :class:`Dependency` entries
    with bulk checking helpers.
    """

    def __init__(self, dependencies: Iterable[Dependency] = ()) -> None:
        deps = tuple(dependencies)
        names = [d.name for d in deps]
        if len(set(names)) != len(names):
            raise DependencyError("duplicate dependency names")
        self._deps = deps

    def __iter__(self) -> Iterator[Dependency]:
        return iter(self._deps)

    def __len__(self) -> int:
        return len(self._deps)

    def __bool__(self) -> bool:
        return bool(self._deps)

    def mentioning(self, attribute: str) -> Tuple[Dependency, ...]:
        """All dependencies whose predicate reads ``attribute``."""
        return tuple(d for d in self._deps if attribute in d.attributes)

    def violated_by(self, assignment: Mapping[str, Any]) -> Tuple[Dependency, ...]:
        """Dependencies applicable to ``assignment`` and not satisfied."""
        return tuple(d for d in self._deps if not d.satisfied(assignment))

    def check(self, assignment: Mapping[str, Any]) -> None:
        """Raise :class:`~repro.errors.DependencyError` on any violation."""
        bad = self.violated_by(assignment)
        if bad:
            names = ", ".join(d.name for d in bad)
            raise DependencyError(f"dependency violation(s): {names}")

    def satisfied(self, assignment: Mapping[str, Any]) -> bool:
        """True when no applicable dependency is violated."""
        return not self.violated_by(assignment)

"""Quality levels and degradation ladders.

The Section 5 heuristic degrades one attribute at a time, "from level
``Q_kj`` to ``Q_k(j+1)``". For that to be executable we need, per
attribute, a concrete *ordered list of acceptable values* — the
**degradation ladder** — derived from the request's preference items:

* scalar items contribute themselves;
* intervals contribute every step from ``best`` to ``worst`` (step 1 for
  integer attributes; a configurable count of evenly spaced steps for
  float attributes).

A :class:`QualityAssignment` is one point in the level lattice: a mapping
from attribute name to the *index on its ladder* (0 = most preferred),
with helpers to materialize the concrete values, compare quality, and walk
degradation steps without ever violating the spec's ``Deps``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.errors import DomainError, RequestError
from repro.qos.request import AttributePreference, ServiceRequest, ValueInterval
from repro.qos.types import ValueType


DEFAULT_FLOAT_STEPS = 8
"""Number of ladder steps an interval of a float attribute expands into."""


def _expand_interval(
    interval: ValueInterval, value_type: ValueType, float_steps: int
) -> list[Any]:
    """Expand an interval into concrete ladder values, best end first."""
    if value_type is ValueType.INTEGER:
        best, worst = int(interval.best), int(interval.worst)
        step = -1 if worst < best else 1
        return list(range(best, worst + step, step))
    # Float: evenly spaced samples including both ends.
    best, worst = float(interval.best), float(interval.worst)
    if best == worst:
        return [best]
    n = max(2, int(float_steps))
    return [best + (worst - best) * i / (n - 1) for i in range(n)]


def build_ladder(
    preference: AttributePreference,
    value_type: ValueType,
    float_steps: int = DEFAULT_FLOAT_STEPS,
) -> Tuple[Any, ...]:
    """Build the ordered acceptable-value ladder for one attribute.

    Values appear most-preferred first and duplicates (e.g. touching
    intervals) are removed keeping the earliest occurrence.
    """
    out: list[Any] = []
    seen: set[Any] = set()
    for item in preference.items:
        if isinstance(item, ValueInterval):
            values = _expand_interval(item, value_type, float_steps)
        else:
            values = [item]
        for v in values:
            if v not in seen:
                seen.add(v)
                out.append(v)
    if not out:  # pragma: no cover - AttributePreference forbids empty items
        raise RequestError(f"empty ladder for attribute {preference.attribute!r}")
    return tuple(out)


@dataclass(frozen=True)
class DegradationLadder:
    """All attribute ladders of one request, in importance order.

    Attributes:
        request: The originating service request.
        ladders: attribute name -> ordered acceptable values (best first).
    """

    request: ServiceRequest
    ladders: Mapping[str, Tuple[Any, ...]]

    @classmethod
    def from_request(
        cls, request: ServiceRequest, float_steps: int = DEFAULT_FLOAT_STEPS
    ) -> "DegradationLadder":
        """Derive ladders for every attribute of ``request``."""
        ladders: Dict[str, Tuple[Any, ...]] = {}
        for name in request.attribute_names:
            attr = request.spec.attribute(name)
            ladders[name] = build_ladder(
                request.preference_for(name), attr.domain.value_type, float_steps
            )
        return cls(request=request, ladders=dict(ladders))

    def ladder(self, attribute: str) -> Tuple[Any, ...]:
        try:
            return tuple(self.ladders[attribute])
        except KeyError:
            raise RequestError(f"no ladder for attribute {attribute!r}") from None

    def depth(self, attribute: str) -> int:
        """Number of acceptable levels for ``attribute``."""
        return len(self.ladder(attribute))

    def top(self) -> "QualityAssignment":
        """The most-preferred assignment (every attribute at index 0)."""
        return QualityAssignment(self, {a: 0 for a in self.ladders})

    def bottom(self) -> "QualityAssignment":
        """The least-preferred acceptable assignment."""
        return QualityAssignment(
            self, {a: len(l) - 1 for a, l in self.ladders.items()}
        )

    def assignment_from_values(self, values: Mapping[str, Any]) -> "QualityAssignment":
        """Build an assignment from concrete values (must be on ladders)."""
        idx: Dict[str, int] = {}
        for attr, ladder in self.ladders.items():
            if attr not in values:
                raise RequestError(f"missing value for attribute {attr!r}")
            try:
                idx[attr] = ladder.index(values[attr])
            except ValueError:
                raise DomainError(
                    f"value {values[attr]!r} not on the acceptable ladder "
                    f"of {attr!r}: {ladder!r}"
                ) from None
        return QualityAssignment(self, idx)


class QualityAssignment:
    """One quality level per attribute, as indices on degradation ladders.

    Index 0 is the most-preferred level; larger indices are degradations.
    Instances are immutable; degradation steps return new assignments.
    """

    __slots__ = ("ladder_set", "_indices", "_key")

    def __init__(self, ladder_set: DegradationLadder, indices: Mapping[str, int]) -> None:
        if set(indices) != set(ladder_set.ladders):
            raise RequestError("assignment does not cover exactly the ladder attributes")
        for attr, i in indices.items():
            depth = len(ladder_set.ladders[attr])
            if not (0 <= i < depth):
                raise DomainError(
                    f"level index {i} out of range for {attr!r} (depth {depth})"
                )
        self.ladder_set = ladder_set
        self._indices: Dict[str, int] = dict(indices)
        self._key: Tuple[Tuple[str, int], ...] | None = None

    @classmethod
    def _trusted(
        cls, ladder_set: DegradationLadder, indices: Dict[str, int]
    ) -> "QualityAssignment":
        """Construct from already-validated indices, skipping the checks
        (and taking ownership of ``indices``). Internal fast path for
        :meth:`degrade`, whose results are valid by construction."""
        self = object.__new__(cls)
        self.ladder_set = ladder_set
        self._indices = indices
        self._key = None
        return self

    # -- views ------------------------------------------------------------

    def index(self, attribute: str) -> int:
        """Ladder index of ``attribute`` (0 = best)."""
        try:
            return self._indices[attribute]
        except KeyError:
            raise RequestError(f"attribute {attribute!r} not in assignment") from None

    def value(self, attribute: str) -> Any:
        """Concrete value of ``attribute`` at its current level."""
        return self.ladder_set.ladders[attribute][self.index(attribute)]

    def values(self) -> Dict[str, Any]:
        """Concrete attribute -> value mapping."""
        return {a: self.value(a) for a in self._indices}

    def indices(self) -> Dict[str, int]:
        return dict(self._indices)

    def index_key(self) -> Tuple[Tuple[str, int], ...]:
        """Hashable, order-independent ``(attribute, level)`` key.

        Used as a memoization key by the formulation heuristic (two
        assignments over the same ladders are the same quality level iff
        their keys are equal). Computed once per (immutable) instance."""
        key = self._key
        if key is None:
            key = tuple(sorted(self._indices.items()))
            self._key = key
        return key

    @property
    def at_top(self) -> bool:
        """True when every attribute is at its preferred level (the
        ``Q_k1`` condition of eq. 1)."""
        return all(i == 0 for i in self._indices.values())

    @property
    def at_bottom(self) -> bool:
        """True when no further degradation is possible anywhere."""
        return all(
            i == len(self.ladder_set.ladders[a]) - 1
            for a, i in self._indices.items()
        )

    def total_degradation(self) -> int:
        """Sum of ladder indices — a simple coarseness measure."""
        return sum(self._indices.values())

    # -- transitions ------------------------------------------------------

    def can_degrade(self, attribute: str) -> bool:
        """Whether ``attribute`` has a lower acceptable level."""
        return self.index(attribute) + 1 < len(self.ladder_set.ladders[attribute])

    def degrade(self, attribute: str) -> "QualityAssignment":
        """Return a new assignment with ``attribute`` one level lower.

        Raises:
            DomainError: If the attribute is already at its worst level.
        """
        if not self.can_degrade(attribute):
            raise DomainError(f"attribute {attribute!r} already at worst level")
        idx = dict(self._indices)
        idx[attribute] += 1
        return QualityAssignment._trusted(self.ladder_set, idx)

    def degradable_attributes(self) -> Tuple[str, ...]:
        """All attributes that still have a lower level, in request
        importance order."""
        order = self.ladder_set.request.attribute_names
        return tuple(a for a in order if self.can_degrade(a))

    def respects_dependencies(self) -> bool:
        """Whether the concrete values satisfy the spec's ``Deps``."""
        return self.ladder_set.request.spec.dependencies.satisfied(self.values())

    # -- dunder -----------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, QualityAssignment)
            and other.ladder_set is self.ladder_set
            and other._indices == self._indices
        )

    def __hash__(self) -> int:
        return hash(self.index_key())

    def __repr__(self) -> str:
        parts = ", ".join(f"{a}={self.value(a)!r}@{i}" for a, i in sorted(self._indices.items()))
        return f"<QualityAssignment {parts}>"

"""Ready-made QoS specifications and requests mirroring the paper's examples.

Section 3 of the paper sketches a video-streaming application with
dimensions *Video Quality* (color depth, frame rate) and *Audio Quality*
(sampling rate, sample bits), and Section 3.1 gives a remote-surveillance
request over it. This module ships both, plus a video-conferencing spec
used by the motivating scenario of Section 1 (computation-heavy codecs on
weak clients) and helper constructors for synthetic specs used in tests
and benchmarks.
"""

from __future__ import annotations


from repro.qos.attribute import Attribute
from repro.qos.dependencies import Dependency, DependencySet
from repro.qos.dimension import QoSDimension
from repro.qos.domain import ContinuousDomain, DiscreteDomain
from repro.qos.request import (
    AttributePreference,
    DimensionPreference,
    ServiceRequest,
    ValueInterval,
)
from repro.qos.spec import QoSSpec
from repro.qos.types import ValueType

# Canonical attribute names, reused across catalog specs.
COLOR_DEPTH = "color depth"
FRAME_RATE = "frame rate"
SAMPLING_RATE = "sampling rate"
SAMPLE_BITS = "sample bits"
RESOLUTION = "resolution"
CODEC = "codec"

VIDEO_QUALITY = "Video Quality"
AUDIO_QUALITY = "Audio Quality"
CODING = "Coding"


def video_streaming_spec() -> QoSSpec:
    """The paper's Section 3 example, verbatim.

    ``Dim = {Video Quality, Audio Quality}``;
    ``AV_color_depth = {1, 3, 8, 16, 24}`` (best-first: 24 ... 1);
    ``AV_frame_rate = [1..30]``;
    ``AV_sampling_rate = {8, 16, 24, 44}`` (best-first: 44 ... 8);
    ``AV_sample_bits = {8, 16, 24}`` (best-first: 24 ... 8).
    """
    return QoSSpec(
        name="video-streaming",
        dimensions=(
            QoSDimension(VIDEO_QUALITY, (COLOR_DEPTH, FRAME_RATE)),
            QoSDimension(AUDIO_QUALITY, (SAMPLING_RATE, SAMPLE_BITS)),
        ),
        attributes=(
            Attribute(COLOR_DEPTH, DiscreteDomain(ValueType.INTEGER, (24, 16, 8, 3, 1)), unit="bit"),
            Attribute(FRAME_RATE, ContinuousDomain(ValueType.INTEGER, 1, 30), unit="fps"),
            Attribute(SAMPLING_RATE, DiscreteDomain(ValueType.INTEGER, (44, 24, 16, 8)), unit="kHz"),
            Attribute(SAMPLE_BITS, DiscreteDomain(ValueType.INTEGER, (24, 16, 8)), unit="bit"),
        ),
    )


def surveillance_request(spec: QoSSpec | None = None) -> ServiceRequest:
    """The Section 3.1 remote-surveillance request, verbatim.

    Video dominates audio; gray-scale, low frame rate is fine:

    1. Video Quality — (a) frame rate: [10..5], [4..1]; (b) color depth: 3, 1
    2. Audio Quality — (a) sampling rate: 8; (b) sample bits: 8
    """
    spec = spec if spec is not None else video_streaming_spec()
    return ServiceRequest(
        spec=spec,
        name="remote-surveillance",
        dimensions=(
            DimensionPreference(
                VIDEO_QUALITY,
                (
                    AttributePreference(
                        FRAME_RATE,
                        (ValueInterval(10, 5), ValueInterval(4, 1)),
                    ),
                    AttributePreference(COLOR_DEPTH, (3, 1)),
                ),
            ),
            DimensionPreference(
                AUDIO_QUALITY,
                (
                    AttributePreference(SAMPLING_RATE, (8,)),
                    AttributePreference(SAMPLE_BITS, (8,)),
                ),
            ),
        ),
    )


def high_quality_streaming_request(spec: QoSSpec | None = None) -> ServiceRequest:
    """A demanding movie-playback request over the streaming spec.

    Wants full quality, tolerates moderate degradation. Used by the
    video-streaming example and the offloading experiments.
    """
    spec = spec if spec is not None else video_streaming_spec()
    return ServiceRequest(
        spec=spec,
        name="movie-playback",
        dimensions=(
            DimensionPreference(
                VIDEO_QUALITY,
                (
                    AttributePreference(
                        FRAME_RATE,
                        (ValueInterval(30, 24), ValueInterval(23, 12)),
                    ),
                    AttributePreference(COLOR_DEPTH, (24, 16, 8)),
                ),
            ),
            DimensionPreference(
                AUDIO_QUALITY,
                (
                    AttributePreference(SAMPLING_RATE, (44, 24, 16)),
                    AttributePreference(SAMPLE_BITS, (16, 8)),
                ),
            ),
        ),
    )


def video_conference_spec() -> QoSSpec:
    """A three-dimension conferencing spec with an attribute dependency.

    Models the Section 1 motivation: "video conferencing systems often use
    compression schemes that are effective, but computationally intensive".
    The *Coding* dimension's codec choice interacts with frame rate via a
    ``Deps`` entry: the heavy codec is only usable at <= 20 fps (it cannot
    keep up beyond that on any realistic device of the scenario).
    """
    deps = DependencySet(
        (
            Dependency(
                name="heavy-codec-fps-limit",
                attributes=(CODEC, FRAME_RATE),
                predicate=lambda v: v[CODEC] != "wavelet" or v[FRAME_RATE] <= 20,
            ),
        )
    )
    return QoSSpec(
        name="video-conference",
        dimensions=(
            QoSDimension(VIDEO_QUALITY, (FRAME_RATE, RESOLUTION)),
            QoSDimension(AUDIO_QUALITY, (SAMPLING_RATE,)),
            QoSDimension(CODING, (CODEC,)),
        ),
        attributes=(
            Attribute(FRAME_RATE, ContinuousDomain(ValueType.INTEGER, 1, 30), unit="fps"),
            Attribute(
                RESOLUTION,
                DiscreteDomain(ValueType.STRING, ("1080p", "720p", "480p", "240p")),
            ),
            Attribute(SAMPLING_RATE, DiscreteDomain(ValueType.INTEGER, (44, 16, 8)), unit="kHz"),
            Attribute(CODEC, DiscreteDomain(ValueType.STRING, ("wavelet", "dct", "none"))),
        ),
        dependencies=deps,
    )


def video_conference_request(spec: QoSSpec | None = None) -> ServiceRequest:
    """A balanced conferencing request over :func:`video_conference_spec`."""
    spec = spec if spec is not None else video_conference_spec()
    return ServiceRequest(
        spec=spec,
        name="conference-call",
        dimensions=(
            DimensionPreference(
                VIDEO_QUALITY,
                (
                    AttributePreference(
                        FRAME_RATE, (ValueInterval(20, 10), ValueInterval(9, 5))
                    ),
                    AttributePreference(RESOLUTION, ("720p", "480p", "240p")),
                ),
            ),
            DimensionPreference(
                AUDIO_QUALITY,
                (AttributePreference(SAMPLING_RATE, (16, 8)),),
            ),
            DimensionPreference(
                CODING,
                (AttributePreference(CODEC, ("wavelet", "dct", "none")),),
            ),
        ),
    )


def synthetic_spec(
    n_dimensions: int,
    attrs_per_dimension: int,
    levels_per_attribute: int = 4,
    name: str = "synthetic",
) -> QoSSpec:
    """A parameterized spec for tests and scaling benchmarks.

    Every attribute is a discrete integer domain with
    ``levels_per_attribute`` values, best-first ``(L, L-1, ..., 1)``.
    """
    if n_dimensions < 1 or attrs_per_dimension < 1 or levels_per_attribute < 1:
        raise ValueError("synthetic spec parameters must be >= 1")
    dims = []
    attrs = []
    for d in range(n_dimensions):
        attr_names = tuple(f"attr-{d}-{a}" for a in range(attrs_per_dimension))
        dims.append(QoSDimension(f"dim-{d}", attr_names))
        for an in attr_names:
            values = tuple(range(levels_per_attribute, 0, -1))
            attrs.append(Attribute(an, DiscreteDomain(ValueType.INTEGER, values)))
    return QoSSpec(name=name, dimensions=dims, attributes=attrs)


def synthetic_request(
    spec: QoSSpec,
    acceptable_levels: int | None = None,
    name: str = "synthetic-request",
) -> ServiceRequest:
    """A full-preference request over a :func:`synthetic_spec`.

    Accepts the top ``acceptable_levels`` values of every attribute
    (default: all of them), most preferred first.
    """
    dims = []
    for dim in spec.dimensions:
        aps = []
        for attr_name in dim.attributes:
            domain = spec.attribute(attr_name).domain
            values = tuple(domain.values)  # type: ignore[union-attr]
            if acceptable_levels is not None:
                values = values[: max(1, acceptable_levels)]
            aps.append(AttributePreference(attr_name, values))
        dims.append(DimensionPreference(dim.name, tuple(aps)))
    return ServiceRequest(spec=spec, dimensions=tuple(dims), name=name)

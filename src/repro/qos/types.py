"""Value typing for QoS attributes.

The paper types each attribute value set as ``Val = {Type, Domain}`` with
``Type = {integer, float, string}`` and ``Domain = {continuous, discrete}``.
These enums encode exactly that, plus the validity rule that string-typed
values can only live in discrete domains.
"""

from __future__ import annotations

import enum
from typing import Any

from repro.errors import DomainError


class ValueType(enum.Enum):
    """The scalar type of an attribute's values (paper: ``Type``)."""

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"

    def validate(self, value: Any) -> None:
        """Raise :class:`~repro.errors.DomainError` on a type mismatch.

        Booleans are rejected as integers: ``True`` silently passing as
        ``1`` hides request bugs.
        """
        if self is ValueType.INTEGER:
            if isinstance(value, bool) or not isinstance(value, int):
                raise DomainError(f"expected integer, got {value!r}")
        elif self is ValueType.FLOAT:
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise DomainError(f"expected float, got {value!r}")
        elif self is ValueType.STRING:
            if not isinstance(value, str):
                raise DomainError(f"expected string, got {value!r}")

    def coerce(self, value: Any) -> Any:
        """Validate then normalize (ints stay int, floats become float)."""
        self.validate(value)
        if self is ValueType.FLOAT:
            return float(value)
        return value


class DomainKind(enum.Enum):
    """Whether an attribute's value set is continuous or discrete."""

    CONTINUOUS = "continuous"
    DISCRETE = "discrete"


def check_type_domain_combination(value_type: ValueType, kind: DomainKind) -> None:
    """Reject impossible combinations (continuous strings)."""
    if kind is DomainKind.CONTINUOUS and value_type is ValueType.STRING:
        raise DomainError("string-typed attributes cannot have continuous domains")

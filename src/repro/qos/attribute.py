"""QoS attributes (paper: ``Attr`` + ``AVr``).

An :class:`Attribute` couples an identifier with its value domain — the
``AVr : Attr_i -> Val_k`` relation is represented directly by the
``domain`` field, since the paper requires exactly one value set per
attribute (``∃1 Val_k``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.qos.domain import Domain
from repro.qos.types import DomainKind


@dataclass(frozen=True)
class Attribute:
    """A QoS attribute: identifier plus value domain.

    Attributes:
        name: Attribute identifier (e.g. ``"frame rate"``). Unique within
            a :class:`~repro.qos.spec.QoSSpec`.
        domain: The attribute's value set (``AVr`` image).
        unit: Optional human-readable unit (``"fps"``, ``"Hz"``); purely
            documentation.
    """

    name: str
    domain: Domain = field(compare=True)
    unit: str = ""

    @property
    def is_discrete(self) -> bool:
        return self.domain.kind is DomainKind.DISCRETE

    @property
    def is_continuous(self) -> bool:
        return self.domain.kind is DomainKind.CONTINUOUS

    def validate(self, value: Any) -> Any:
        """Validate a value against this attribute's domain."""
        return self.domain.validate(value)

    def __str__(self) -> str:
        unit = f" [{self.unit}]" if self.unit else ""
        return f"{self.name}{unit}: {self.domain!r}"

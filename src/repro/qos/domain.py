"""Attribute value domains (paper: ``Val`` / ``AVr``).

Two concrete domains implement the paper's ``Domain`` split:

* :class:`DiscreteDomain` — an *ordered* finite value set. The ordering is
  the application's quality ordering and provides the **quality index** used
  by eq. 5 for discrete attributes: position 0 is the best value. This
  mirrors the bijective domain→integer mapping of Lee et al. [12] that the
  paper adopts.
* :class:`ContinuousDomain` — a closed numeric interval ``[lo, hi]``; eq. 5
  normalizes value differences by the interval span.
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Union

from repro.errors import DomainError
from repro.qos.types import DomainKind, ValueType, check_type_domain_combination


class DiscreteDomain:
    """An ordered, finite set of attribute values.

    The order encodes quality: ``values[0]`` is the highest-quality value.
    E.g. the paper's color-depth domain would be ``(24, 16, 8, 3, 1)`` in
    best-first order (the paper lists ``{1, 3, 8, 16, 24}`` as the value
    set; the *order of preference* comes from the request, while the
    *quality index* comes from this domain ordering).

    Args:
        value_type: Scalar type of every member.
        values: Members in best-first order. Must be non-empty and unique.
    """

    kind = DomainKind.DISCRETE

    def __init__(self, value_type: ValueType, values: Sequence[Any]) -> None:
        check_type_domain_combination(value_type, self.kind)
        if len(values) == 0:
            raise DomainError("discrete domain must be non-empty")
        coerced = tuple(value_type.coerce(v) for v in values)
        if len(set(coerced)) != len(coerced):
            raise DomainError(f"discrete domain has duplicate values: {values!r}")
        self.value_type = value_type
        self.values = coerced
        self._index = {v: i for i, v in enumerate(coerced)}

    def __contains__(self, value: Any) -> bool:
        try:
            value = self.value_type.coerce(value)
        except DomainError:
            return False
        return value in self._index

    def __iter__(self) -> Iterator[Any]:
        return iter(self.values)

    def __len__(self) -> int:
        return len(self.values)

    def position(self, value: Any) -> int:
        """Quality index of ``value``: 0 is best, ``len-1`` is worst.

        This is the ``pos(·)`` of eq. 5.
        """
        value = self.value_type.coerce(value)
        try:
            return self._index[value]
        except KeyError:
            raise DomainError(f"value {value!r} not in discrete domain {self.values!r}")

    def validate(self, value: Any) -> Any:
        """Coerce and membership-check ``value``; return the coerced value."""
        value = self.value_type.coerce(value)
        if value not in self._index:
            raise DomainError(f"value {value!r} not in discrete domain {self.values!r}")
        return value

    def span(self) -> float:
        """``length(Q_k) - 1`` — the position-normalization denominator of
        eq. 5. For singleton domains the span is defined as 1 so that the
        (necessarily zero) position difference divides cleanly."""
        return float(max(len(self.values) - 1, 1))

    def __repr__(self) -> str:
        return f"DiscreteDomain({self.value_type.value}, {list(self.values)!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, DiscreteDomain)
            and other.value_type is self.value_type
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash((self.value_type, self.values))


class ContinuousDomain:
    """A closed numeric interval ``[lo, hi]`` of attribute values.

    Args:
        value_type: INTEGER or FLOAT (strings cannot be continuous).
        lo: Lower bound (inclusive).
        hi: Upper bound (inclusive); must satisfy ``hi >= lo``.
    """

    kind = DomainKind.CONTINUOUS

    def __init__(self, value_type: ValueType, lo: float, hi: float) -> None:
        check_type_domain_combination(value_type, self.kind)
        lo = value_type.coerce(lo)
        hi = value_type.coerce(hi)
        if hi < lo:
            raise DomainError(f"continuous domain bounds reversed: [{lo}, {hi}]")
        self.value_type = value_type
        self.lo = lo
        self.hi = hi

    def __contains__(self, value: Any) -> bool:
        try:
            value = self.value_type.coerce(value)
        except DomainError:
            return False
        return self.lo <= value <= self.hi

    def validate(self, value: Any) -> Any:
        """Coerce and bounds-check ``value``; return the coerced value."""
        value = self.value_type.coerce(value)
        if not (self.lo <= value <= self.hi):
            raise DomainError(
                f"value {value!r} outside continuous domain [{self.lo}, {self.hi}]"
            )
        return value

    def span(self) -> float:
        """``max(Q_k) - min(Q_k)`` — the value-normalization denominator of
        eq. 5. For degenerate single-point intervals the span is 1 (the
        numerator is necessarily zero)."""
        width = float(self.hi) - float(self.lo)
        return width if width > 0 else 1.0

    def clamp(self, value: float) -> Any:
        """Clamp a numeric value into the domain."""
        clamped = min(max(value, self.lo), self.hi)
        if self.value_type is ValueType.INTEGER:
            return int(round(clamped))
        return float(clamped)

    def __repr__(self) -> str:
        return f"ContinuousDomain({self.value_type.value}, [{self.lo}, {self.hi}])"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, ContinuousDomain)
            and other.value_type is self.value_type
            and other.lo == self.lo
            and other.hi == self.hi
        )

    def __hash__(self) -> int:
        return hash((self.value_type, self.lo, self.hi))


Domain = Union[DiscreteDomain, ContinuousDomain]
"""Either concrete domain type (paper: one element of ``Val``)."""

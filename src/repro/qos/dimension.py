"""QoS dimensions (paper: ``Dim`` + ``DAr``).

A :class:`QoSDimension` is an identifier plus the ordered collection of
attribute names it owns — the ``DAr : Dim_i -> Attr`` relation. The order
here is the *specification* order; user-specific importance ordering lives
in the :class:`~repro.qos.request.ServiceRequest`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Tuple

from repro.errors import QoSSpecError


@dataclass(frozen=True)
class QoSDimension:
    """A QoS dimension: identifier plus its attributes' names.

    Attributes:
        name: Dimension identifier (e.g. ``"Video Quality"``).
        attributes: Names of the attributes belonging to this dimension
            (``DAr`` image), non-empty and without duplicates.
    """

    name: str
    attributes: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise QoSSpecError(f"dimension {self.name!r} has no attributes")
        if len(set(self.attributes)) != len(self.attributes):
            raise QoSSpecError(
                f"dimension {self.name!r} lists duplicate attributes: "
                f"{self.attributes!r}"
            )

    def __iter__(self) -> Iterator[str]:
        return iter(self.attributes)

    def __contains__(self, attribute_name: str) -> bool:
        return attribute_name in self.attributes

    def __len__(self) -> int:
        return len(self.attributes)

"""Service requests as qualitative preference orders (paper Section 3.1).

The paper argues users cannot assign numeric utilities to every quality
choice; instead a request imposes a *relative decreasing order of
importance* on dimensions, on each dimension's attributes, and on each
attribute's acceptable values. The paper's surveillance example::

    1. Video Quality
       (a) frame rate:  [10,...,5], [4,...,1]
       (b) color depth: 3, 1
    2. Audio Quality
       (a) sampling rate: 8
       (b) sample bits:   8

is expressed here as a :class:`ServiceRequest` whose
:class:`DimensionPreference` entries appear in decreasing importance, each
holding :class:`AttributePreference` entries in decreasing importance, each
holding :class:`PreferenceItem` values/intervals in decreasing preference.
Lower index == more important, exactly as in the paper.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Iterator, Sequence, Tuple, Union

from repro.errors import RequestError
from repro.qos.domain import DiscreteDomain
from repro.qos.spec import QoSSpec


@dataclass(frozen=True)
class ValueInterval:
    """A preference interval for a continuous attribute.

    ``best`` is the user's favourite end; preference decreases toward
    ``worst``. The paper writes ``[10,...,5]`` meaning 10 is preferred and
    5 is the least-preferred value of the interval.
    """

    best: float
    worst: float

    def __contains__(self, value: Any) -> bool:
        lo, hi = min(self.best, self.worst), max(self.best, self.worst)
        return lo <= value <= hi

    @property
    def lo(self) -> float:
        return min(self.best, self.worst)

    @property
    def hi(self) -> float:
        return max(self.best, self.worst)

    def __str__(self) -> str:
        return f"[{self.best},...,{self.worst}]"


PreferenceItem = Union[ValueInterval, int, float, str]
"""One entry of an attribute's preference list: a scalar or an interval."""


@dataclass(frozen=True)
class AttributePreference:
    """Ordered acceptable values for one attribute (decreasing preference).

    Attributes:
        attribute: Attribute identifier.
        items: Acceptable scalars / intervals, most preferred first.
    """

    attribute: str
    items: Tuple[PreferenceItem, ...]

    def __post_init__(self) -> None:
        if not self.items:
            raise RequestError(
                f"attribute preference {self.attribute!r} lists no acceptable values"
            )

    @property
    def preferred(self) -> Any:
        """The user's single most preferred value (``Pref_ki`` of eq. 5)."""
        first = self.items[0]
        if isinstance(first, ValueInterval):
            return first.best
        return first

    def accepts(self, value: Any) -> bool:
        """Whether ``value`` appears in any preference item."""
        for item in self.items:
            if isinstance(item, ValueInterval):
                if value in item:
                    return True
            elif item == value:
                return True
        return False

    def scalar_values(self) -> Tuple[Any, ...]:
        """All scalar items (intervals excluded), in preference order."""
        return tuple(i for i in self.items if not isinstance(i, ValueInterval))

    def bounds(self) -> Tuple[float, float]:
        """(min, max) over every scalar and interval endpoint.

        Only meaningful for numeric attributes.
        """
        lows: list[float] = []
        highs: list[float] = []
        for item in self.items:
            if isinstance(item, ValueInterval):
                lows.append(item.lo)
                highs.append(item.hi)
            else:
                lows.append(float(item))  # type: ignore[arg-type]
                highs.append(float(item))  # type: ignore[arg-type]
        return min(lows), max(highs)


@dataclass(frozen=True)
class DimensionPreference:
    """Ordered attribute preferences for one dimension.

    Attributes:
        dimension: Dimension identifier.
        attributes: Attribute preferences, most important first.
    """

    dimension: str
    attributes: Tuple[AttributePreference, ...]

    def __post_init__(self) -> None:
        if not self.attributes:
            raise RequestError(
                f"dimension preference {self.dimension!r} lists no attributes"
            )
        names = [a.attribute for a in self.attributes]
        if len(set(names)) != len(names):
            raise RequestError(
                f"dimension preference {self.dimension!r} repeats an attribute"
            )

    def attribute_preference(self, name: str) -> AttributePreference:
        for pref in self.attributes:
            if pref.attribute == name:
                return pref
        raise RequestError(
            f"attribute {name!r} not in dimension preference {self.dimension!r}"
        )

    def __iter__(self) -> Iterator[AttributePreference]:
        return iter(self.attributes)


class ServiceRequest:
    """A user's QoS request: preference orders over an application spec.

    Args:
        spec: The application's QoS specification the request refers to.
        dimensions: Dimension preferences, most important first. Every
            dimension of the spec must appear exactly once (the paper's
            evaluator requires proposals to "satisfy all the QoS
            dimensions requested by the user", so requests are total).
        name: Optional request label for traces.

    Raises:
        RequestError: On unknown identifiers, missing/duplicate dimensions
            or attributes, or values outside the attribute domains.
    """

    def __init__(
        self,
        spec: QoSSpec,
        dimensions: Sequence[DimensionPreference],
        name: str = "request",
    ) -> None:
        self.spec = spec
        self.name = name
        self.dimensions: Tuple[DimensionPreference, ...] = tuple(dimensions)
        self._validate()
        self._attr_index: dict[str, AttributePreference] = {
            ap.attribute: ap
            for dp in self.dimensions
            for ap in dp.attributes
        }

    def _validate(self) -> None:
        seen_dims = [dp.dimension for dp in self.dimensions]
        if len(set(seen_dims)) != len(seen_dims):
            raise RequestError("request repeats a dimension")
        spec_dims = set(self.spec.dimension_names)
        if set(seen_dims) != spec_dims:
            missing = spec_dims - set(seen_dims)
            extra = set(seen_dims) - spec_dims
            raise RequestError(
                f"request dimensions must match the spec exactly; "
                f"missing={sorted(missing)!r} extra={sorted(extra)!r}"
            )
        for dp in self.dimensions:
            spec_dim = self.spec.dimension(dp.dimension)
            req_attrs = {ap.attribute for ap in dp.attributes}
            if req_attrs != set(spec_dim.attributes):
                raise RequestError(
                    f"dimension {dp.dimension!r}: request attributes "
                    f"{sorted(req_attrs)!r} do not match spec attributes "
                    f"{sorted(spec_dim.attributes)!r}"
                )
            for ap in dp.attributes:
                self._validate_attribute_pref(ap)

    def _validate_attribute_pref(self, ap: AttributePreference) -> None:
        attr = self.spec.attribute(ap.attribute)
        domain = attr.domain
        for item in ap.items:
            if isinstance(item, ValueInterval):
                if isinstance(domain, DiscreteDomain):
                    raise RequestError(
                        f"attribute {ap.attribute!r} is discrete; intervals "
                        f"are only valid for continuous attributes"
                    )
                domain.validate(item.best)
                domain.validate(item.worst)
            else:
                domain.validate(item)

    # -- lookups ----------------------------------------------------------

    def preference_for(self, attribute: str) -> AttributePreference:
        """The preference entry for ``attribute``."""
        try:
            return self._attr_index[attribute]
        except KeyError:
            raise RequestError(f"attribute {attribute!r} not in request") from None

    def dimension_preference(self, dimension: str) -> DimensionPreference:
        for dp in self.dimensions:
            if dp.dimension == dimension:
                return dp
        raise RequestError(f"dimension {dimension!r} not in request")

    def dimension_rank(self, dimension: str) -> int:
        """1-based importance rank of a dimension (paper's ``k``)."""
        for k, dp in enumerate(self.dimensions, start=1):
            if dp.dimension == dimension:
                return k
        raise RequestError(f"dimension {dimension!r} not in request")

    def attribute_rank(self, dimension: str, attribute: str) -> int:
        """1-based importance rank of an attribute within its dimension
        (paper's ``i``)."""
        dp = self.dimension_preference(dimension)
        for i, ap in enumerate(dp.attributes, start=1):
            if ap.attribute == attribute:
                return i
        raise RequestError(
            f"attribute {attribute!r} not in dimension {dimension!r} preference"
        )

    @property
    def attribute_names(self) -> Tuple[str, ...]:
        """All attributes in importance order (dimension-major)."""
        return tuple(
            ap.attribute for dp in self.dimensions for ap in dp.attributes
        )

    def preferred_assignment(self) -> dict[str, Any]:
        """The top-quality assignment: every attribute at its preferred
        value. (Starting point of the Section 5 heuristic.)"""
        return {name: self.preference_for(name).preferred for name in self.attribute_names}

    def accepts(self, attribute: str, value: Any) -> bool:
        """Whether ``value`` is acceptable for ``attribute``."""
        return self.preference_for(attribute).accepts(value)

    def __repr__(self) -> str:
        dims = ", ".join(dp.dimension for dp in self.dimensions)
        return f"<ServiceRequest {self.name!r} spec={self.spec.name!r} dims=[{dims}]>"

"""``repro.analysis`` — the determinism & contract linter.

Every result table in this reproduction rests on invariants the test
suite can only *sample* (replay a handful of seeds and diff): runs are
pure functions of their seed, serial == parallel bit-identically,
feature switches are snapshotted once per run, topology caches are
epoch-keyed. This package enforces those invariants **statically**: an
AST rule engine (:mod:`~repro.analysis.engine`) with six registered
rules (:mod:`~repro.analysis.rules`), per-line suppressions, a
committed baseline (:mod:`~repro.analysis.baseline`) and text/JSON
reporters (:mod:`~repro.analysis.reporters`), fronted by
``tools/lint_repro.py`` and run as a blocking CI gate.

See ``docs/static-analysis.md`` for the rule catalog and workflow.
"""

from repro.analysis.baseline import Baseline, BaselineEntry, fingerprint
from repro.analysis.engine import (
    AnalysisEngine,
    AnalysisReport,
    Suppression,
    rule_index,
)
from repro.analysis.reporters import render_json, render_text
from repro.analysis.rules import (
    Finding,
    ModuleContext,
    Rule,
    RuleConfig,
    default_rules,
    select_rules,
)

__all__ = [
    "AnalysisEngine",
    "AnalysisReport",
    "Baseline",
    "BaselineEntry",
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleConfig",
    "Suppression",
    "default_rules",
    "fingerprint",
    "render_json",
    "render_text",
    "rule_index",
    "select_rules",
]

"""R1 — unseeded-rng: every random draw must come through an injected,
seeded Generator.

The determinism contract (README, ``docs/experiments.md``) makes each
run a pure function of its seed. Module-level convenience RNGs —
``random.random()``, ``np.random.choice(...)``, a bare
``np.random.default_rng()`` — draw from global or OS-entropy state the
seed does not control, so one such call anywhere in a replication
breaks replayability in ways the sampled CI seeds may never expose.
Constructing explicitly seeded generators (``np.random.Generator``,
``np.random.PCG64(seed)``, ``np.random.default_rng(seed)``,
``random.Random(seed)``) is the sanctioned pattern and is not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    resolve_dotted,
)

#: ``numpy.random`` attributes that *construct* generators/bit streams
#: rather than draw from hidden state. Calls to these are clean as long
#: as ``default_rng`` receives an explicit seed argument.
_NUMPY_CONSTRUCTORS = frozenset(
    {
        "Generator",
        "BitGenerator",
        "SeedSequence",
        "PCG64",
        "PCG64DXSM",
        "MT19937",
        "Philox",
        "SFC64",
        "default_rng",
    }
)

#: Stdlib ``random`` attributes that construct independent instances.
_STDLIB_CONSTRUCTORS = frozenset({"Random", "SystemRandom"})


class UnseededRngRule(Rule):
    id = "R1"
    name = "unseeded-rng"
    rationale = (
        "module-level random.* / np.random.* draws bypass the injected "
        "seeded Generator, breaking run-is-a-pure-function-of-its-seed"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, module.imports)
            if dotted is None:
                continue
            if dotted.startswith("random."):
                tail = dotted.split(".", 1)[1]
                if tail.split(".", 1)[0] in _STDLIB_CONSTRUCTORS:
                    continue
                yield module.finding(
                    self,
                    node,
                    f"call to stdlib {dotted}() draws from the global RNG; "
                    "thread a seeded np.random.Generator (or random.Random) "
                    "through instead",
                )
            elif dotted.startswith(("numpy.random.", "np.random.")):
                tail = dotted.rsplit("random.", 1)[1]
                head = tail.split(".", 1)[0]
                if head == "default_rng" and not (node.args or node.keywords):
                    yield module.finding(
                        self,
                        node,
                        "np.random.default_rng() without a seed pulls OS "
                        "entropy; pass the replication's seed explicitly",
                    )
                    continue
                if head in _NUMPY_CONSTRUCTORS:
                    continue
                yield module.finding(
                    self,
                    node,
                    f"call to {dotted}() uses numpy's hidden global state; "
                    "draw from the injected seeded Generator instead",
                )

"""R2 — wall-clock-in-sim: simulated time must come from the engine.

``repro.sim.engine.Engine.now`` is the only clock the simulation
packages may read: a ``time.time()``/``perf_counter()`` or
``datetime.now()`` call inside ``repro.sim``/``repro.core``/
``repro.sessions``/``repro.shard`` couples results to the host's
scheduler, making serial != parallel and run != re-run. The experiment
harness (``repro.experiments``) legitimately measures wall time for its
timing columns, so that package is allowlisted.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    RuleConfig,
    in_packages,
    resolve_dotted,
)

#: Fully resolved callables that read the host clock.
_WALL_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)


class WallClockRule(Rule):
    id = "R2"
    name = "wall-clock-in-sim"
    rationale = (
        "host-clock reads inside the simulation packages couple results "
        "to scheduler timing; simulated time is Engine.now only"
    )

    def __init__(self, config: RuleConfig | None = None) -> None:
        self.config = config or RuleConfig()

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if not in_packages(module.module, self.config.sim_packages):
            return
        if in_packages(module.module, self.config.wall_clock_allowlist):
            return
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            dotted = resolve_dotted(node.func, module.imports)
            if dotted in _WALL_CLOCK_CALLS:
                yield module.finding(
                    self,
                    node,
                    f"{dotted}() reads the host clock inside simulation "
                    f"package {module.module}; use the engine's simulated "
                    "time (Engine.now) or move the measurement to "
                    "repro.experiments",
                )

"""Shared vocabulary of the static-analysis engine.

A :class:`Rule` inspects one parsed module (:class:`ModuleContext`) and
yields :class:`Finding`\\ s. Everything here is plain stdlib ``ast``
work — no third-party parser, no type checker — because the invariants
being enforced (seeded RNG discipline, no wall clock in simulated time,
ordered iteration, snapshot-once feature reads, epoch-bumped topology
mutation) are all *syntactically* recognizable in this codebase's idiom.

The helpers in this module implement the two pieces every rule needs:

* an **import map** (:func:`build_import_map`) resolving local names to
  the dotted path they were imported from, so ``np.random.choice`` and
  ``from numpy.random import choice`` flag identically;
* a **scope walk** (:func:`function_bodies`, :func:`body_nodes`) that
  attributes findings to the enclosing ``Class.method`` qualname and
  lets per-function rules skip nested function bodies.
"""

from __future__ import annotations

import ast
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line — it (not the line number)
    feeds the baseline fingerprint, so committed baselines survive
    unrelated edits above the finding.
    """

    rule: str
    name: str
    path: str
    line: int
    col: int
    message: str
    context: str
    snippet: str

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col + 1}"


class ModuleContext:
    """One parsed module plus the lookup tables rules share.

    Args:
        source: The module's text.
        path: Repo-relative posix path (diagnostics + fingerprints).
        module: Dotted module name (``repro.sim.engine``) when the file
            belongs to the package tree, else ``None``. Package-scoped
            rules (wall-clock, epoch) key off it.
    """

    def __init__(self, source: str, path: str, module: Optional[str] = None) -> None:
        self.source = source
        self.path = path
        self.module = module
        self.lines: List[str] = source.splitlines()
        self.tree: ast.Module = ast.parse(source, filename=path)
        self.imports: Dict[str, str] = build_import_map(self.tree)
        self._context: Dict[int, str] = {}
        self._assign_contexts(self.tree, "<module>")

    @classmethod
    def from_file(cls, file_path: Path, root: Path) -> "ModuleContext":
        """Parse a file on disk, deriving the module name from a
        ``src/<pkg>/...`` layout when the file lives under one."""
        rel = file_path.resolve().relative_to(root.resolve()).as_posix()
        return cls(file_path.read_text(), rel, module=module_name_of(rel))

    def _assign_contexts(self, node: ast.AST, qualname: str) -> None:
        for child in ast.iter_child_nodes(node):
            self._context[id(child)] = qualname
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                inner = child.name if qualname == "<module>" else f"{qualname}.{child.name}"
                self._context[id(child)] = inner
                self._assign_contexts(child, inner)
            else:
                self._assign_contexts(child, qualname)

    def context_of(self, node: ast.AST) -> str:
        """Qualname of the scope enclosing ``node`` (``<module>`` at top level)."""
        return self._context.get(id(node), "<module>")

    def snippet_at(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(
        self, rule: "Rule", node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule=rule.id,
            name=rule.name,
            path=self.path,
            line=line,
            col=col,
            message=message,
            context=self.context_of(node),
            snippet=self.snippet_at(line),
        )


class Rule(ABC):
    """One statically checkable determinism/contract invariant."""

    #: Short id used by ``--rules`` and suppressions (``R1`` … ``R6``).
    id: str = ""
    #: Kebab-case name, the second suppression spelling.
    name: str = ""
    #: One-line rationale shown by ``--list-rules`` and the JSON report.
    rationale: str = ""

    @abstractmethod
    def check(self, module: ModuleContext) -> Iterator[Finding]:
        """Yield every violation of this rule in ``module``."""

    def matches(self, spec: str) -> bool:
        """Whether a ``--rules``/suppression token selects this rule."""
        return spec.lower() in (self.id.lower(), self.name.lower())


def module_name_of(relpath: str) -> Optional[str]:
    """Dotted module name for a repo-relative path, if it is in-tree.

    ``src/repro/sim/engine.py`` → ``repro.sim.engine``;
    ``tools/lint_repro.py`` → ``None`` (not an importable package file).
    """
    parts = Path(relpath).parts
    if len(parts) < 2 or parts[0] != "src" or not parts[-1].endswith(".py"):
        return None
    dotted = list(parts[1:-1])
    stem = Path(parts[-1]).stem
    if stem != "__init__":
        dotted.append(stem)
    return ".".join(dotted) if dotted else None


def build_import_map(tree: ast.Module) -> Dict[str, str]:
    """Local name → dotted origin for every import in the module.

    ``import numpy as np`` → ``{"np": "numpy"}``;
    ``from numpy.random import default_rng`` →
    ``{"default_rng": "numpy.random.default_rng"}``. Relative imports
    keep their tail (``from .features import is_enabled`` →
    ``is_enabled: features.is_enabled``), which is enough for the
    suffix matching the rules do.
    """
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".", 1)[0]
                origin = alias.name if alias.asname else alias.name.split(".", 1)[0]
                imports[local] = origin
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


def dotted_parts(node: ast.expr) -> Optional[List[str]]:
    """``a.b.c`` attribute chain as ``["a", "b", "c"]``, else ``None``."""
    parts: List[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        parts.reverse()
        return parts
    return None


def resolve_dotted(node: ast.expr, imports: Dict[str, str]) -> Optional[str]:
    """Fully-resolved dotted path of a name/attribute chain, or ``None``.

    The chain's head is looked up in the import map; an unknown head
    (a local variable, a parameter) resolves to ``None`` so rules never
    mistake ``self.random`` or a local named ``time`` for the module.
    """
    parts = dotted_parts(node)
    if parts is None:
        return None
    head = imports.get(parts[0])
    if head is None:
        return None
    return ".".join([head, *parts[1:]])


def function_bodies(
    tree: ast.Module,
) -> Iterator[Tuple[ast.AST, str]]:
    """Every function/method definition node, paired with its name."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, node.name


def body_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Walk a function body without descending into nested scopes.

    Nested ``def``/``class``/``lambda`` own their statements — a rule
    counting "reads per function body" must not merge a closure's reads
    into its parent's.
    """
    stack: List[ast.AST] = list(ast.iter_child_nodes(scope))
    while stack:
        node = stack.pop()
        yield node
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        stack.extend(ast.iter_child_nodes(node))


@dataclass
class RuleConfig:
    """Knobs shared by the package-scoped rules (injected by tests)."""

    sim_packages: Tuple[str, ...] = (
        "repro.sim",
        "repro.core",
        "repro.sessions",
        "repro.shard",
    )
    wall_clock_allowlist: Tuple[str, ...] = ("repro.experiments",)
    guarded_attributes: Tuple[str, ...] = field(
        default=("positions", "_adj", "_bw", "_loss", "_dist")
    )


def in_packages(module: Optional[str], packages: Sequence[str]) -> bool:
    if module is None:
        return False
    return any(module == pkg or module.startswith(pkg + ".") for pkg in packages)

"""R7 — unbounded-retry: retry loops must carry a bounded budget.

An ``while True:`` loop wrapped around a communication or negotiation
attempt (``transmit``, ``negotiate``, ``send``, ``keepalive``,
``reserve_for``, …) retries forever when the cluster is partitioned or
a peer is gone — in a discrete-event run that is a livelock, and in the
protocol it is the anti-pattern the hardened award handshake
(:meth:`repro.faults.injector.FaultInjector.award_handshake`) exists to
replace: every retry loop must spend a *bounded* budget
(:class:`repro.faults.plan.RetryPolicy`-style attempt counts and
backoff), then give up and fall through.

The rule is syntactic, like its siblings: it flags a constant-true
``while`` loop whose body performs a retry-ish call and mentions no
budget vocabulary (an identifier containing ``attempt``, ``retr``,
``budget`` or ``backoff``). ``for _ in range(...)`` loops are bounded
by construction and never flagged, as are ``while`` loops with a real
(non-constant) condition — their bound is the condition itself.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.analysis.rules.base import Finding, ModuleContext, Rule

#: Terminal callable names that mean "attempt the operation again".
_RETRY_CALLS = frozenset(
    {
        "transmit",
        "negotiate",
        "send",
        "send_routed",
        "broadcast",
        "keepalive",
        "reserve_for",
    }
)

#: Identifier substrings that count as evidence of a bounded budget.
_BUDGET_HINTS = ("attempt", "retr", "budget", "backoff")


def _is_constant_true(test: ast.expr) -> bool:
    return isinstance(test, ast.Constant) and bool(test.value)


def _loop_nodes(loop: ast.While) -> Iterator[ast.AST]:
    """Walk the loop body without descending into nested scopes (a
    closure's retries are its own problem, attributed to its own loop)."""
    stack: List[ast.AST] = list(loop.body)
    while stack:
        node = stack.pop()
        yield node
        if isinstance(
            node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
        ):
            continue
        stack.extend(ast.iter_child_nodes(node))


def _call_name(node: ast.Call) -> str | None:
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    if isinstance(node.func, ast.Name):
        return node.func.id
    return None


class UnboundedRetryRule(Rule):
    id = "R7"
    name = "unbounded-retry"
    rationale = (
        "a while-True loop around transmit/negotiate/keepalive retries "
        "forever under partitions; retry loops must spend a bounded "
        "attempt budget with backoff, then fall through"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.While) or not _is_constant_true(node.test):
                continue
            retry_calls: List[str] = []
            bounded = False
            for inner in _loop_nodes(node):
                if isinstance(inner, ast.Call):
                    name = _call_name(inner)
                    if name in _RETRY_CALLS:
                        retry_calls.append(name)
                identifier = None
                if isinstance(inner, ast.Name):
                    identifier = inner.id
                elif isinstance(inner, ast.Attribute):
                    identifier = inner.attr
                elif isinstance(inner, ast.arg):
                    identifier = inner.arg
                if identifier is not None:
                    lowered = identifier.lower()
                    if any(hint in lowered for hint in _BUDGET_HINTS):
                        bounded = True
            if retry_calls and not bounded:
                calls = ", ".join(sorted(set(retry_calls)))
                yield module.finding(
                    self,
                    node,
                    f"while-True loop retries {calls}() without a bounded "
                    "budget; count attempts against a RetryPolicy-style "
                    "bound (with backoff) and fall through when it is "
                    "spent",
                )

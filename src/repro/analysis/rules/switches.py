"""R5 — feature-switch-snapshot: read each switch once per function.

The :mod:`repro.features` contract (PR 6) is *snapshot semantics*: a
run/object reads its switch exactly once — at ``negotiate()`` entry, at
``Topology`` construction — so flipping a switch mid-run can never mix
the legacy and optimized paths inside one result. A function body that
reads the same switch twice (two ``USE_X`` loads, or two
``features.is_enabled("x")`` calls) re-opens that race: the A/B
harness, a test's ``override()`` context, or a future async driver can
flip the global between the two reads.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, Iterator, List

from repro.analysis.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    body_nodes,
    function_bodies,
    resolve_dotted,
)

#: Module-level feature-switch globals follow this spelling by
#: convention (``USE_BATCH_EVALUATION``, ``USE_VECTOR_TOPOLOGY``, …).
_SWITCH_NAME = re.compile(r"^USE_[A-Z0-9_]+$")


class FeatureSnapshotRule(Rule):
    id = "R5"
    name = "feature-switch-snapshot"
    rationale = (
        "feature switches are snapshot-once-per-run; a second read in "
        "one function body can mix legacy and optimized paths mid-run"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        if module.module == "repro.features":
            return  # the registry itself reads switches by design
        for scope, _name in function_bodies(module.tree):
            reads: Dict[str, List[ast.AST]] = {}
            for node in body_nodes(scope):
                key = self._switch_key(node, module)
                if key is not None:
                    reads.setdefault(key, []).append(node)
            for key, nodes in reads.items():
                ordered = sorted(
                    nodes, key=lambda n: (getattr(n, "lineno", 0), getattr(n, "col_offset", 0))
                )
                for node in ordered[1:]:
                    yield module.finding(
                        self,
                        node,
                        f"feature switch {key} is read more than once in "
                        "this function body; snapshot it once at entry "
                        "(snapshot semantics, repro.features)",
                    )

    @staticmethod
    def _switch_key(node: ast.AST, module: ModuleContext) -> str | None:
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load):
            if _SWITCH_NAME.match(node.id):
                return node.id
            return None
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            if _SWITCH_NAME.match(node.attr):
                return node.attr
            return None
        if isinstance(node, ast.Call):
            dotted = resolve_dotted(node.func, module.imports)
            if dotted is not None and dotted.endswith("features.is_enabled"):
                if node.args and isinstance(node.args[0], ast.Constant):
                    value = node.args[0].value
                    if isinstance(value, str):
                        return f"feature:{value}"
                return "feature:<dynamic>"
        return None

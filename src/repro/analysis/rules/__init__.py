"""The rule registry: seven statically enforced determinism invariants.

========  ========================  ==========================================
id        name                      invariant
========  ========================  ==========================================
``R1``    unseeded-rng              every draw comes from an injected seeded
                                    Generator, never global RNG state
``R2``    wall-clock-in-sim         simulation packages read Engine.now, not
                                    the host clock
``R3``    unordered-iteration       no hash-ordered set/frozenset (or opaque
                                    ``.keys()``) iteration
``R4``    blanket-except            handlers name the exceptions they absorb
``R5``    feature-switch-snapshot   each feature switch is read once per
                                    function body (snapshot semantics)
``R6``    epoch-unsafe-mutation     topology arena writes bump the cache epoch
``R7``    unbounded-retry           retry loops around transmit/negotiate/
                                    keepalive spend a bounded budget
========  ========================  ==========================================
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    RuleConfig,
    module_name_of,
)
from repro.analysis.rules.epochs import EpochMutationRule
from repro.analysis.rules.exceptions import BlanketExceptRule
from repro.analysis.rules.ordering import UnorderedIterationRule
from repro.analysis.rules.retry import UnboundedRetryRule
from repro.analysis.rules.rng import UnseededRngRule
from repro.analysis.rules.switches import FeatureSnapshotRule
from repro.analysis.rules.wallclock import WallClockRule


def default_rules(config: RuleConfig | None = None) -> List[Rule]:
    """Fresh instances of all seven rules, in id order."""
    config = config or RuleConfig()
    return [
        UnseededRngRule(),
        WallClockRule(config),
        UnorderedIterationRule(),
        BlanketExceptRule(),
        FeatureSnapshotRule(),
        EpochMutationRule(config),
        UnboundedRetryRule(),
    ]


def select_rules(specs: Sequence[str], config: RuleConfig | None = None) -> List[Rule]:
    """Subset of the registry matching ``specs`` (ids or names).

    Raises:
        ValueError: If a spec matches no registered rule.
    """
    rules = default_rules(config)
    selected: List[Rule] = []
    for spec in specs:
        matches = [rule for rule in rules if rule.matches(spec)]
        if not matches:
            known = ", ".join(f"{r.id}/{r.name}" for r in rules)
            raise ValueError(f"unknown rule {spec!r}; known rules: {known}")
        for rule in matches:
            if rule not in selected:
                selected.append(rule)
    return selected


__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "RuleConfig",
    "BlanketExceptRule",
    "EpochMutationRule",
    "FeatureSnapshotRule",
    "UnboundedRetryRule",
    "UnorderedIterationRule",
    "UnseededRngRule",
    "WallClockRule",
    "default_rules",
    "module_name_of",
    "select_rules",
]

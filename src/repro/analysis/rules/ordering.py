"""R3 — unordered-iteration: no hash-ordered iteration in simulation code.

Iterating a ``set``/``frozenset`` visits elements in hash order, which
for strings varies with ``PYTHONHASHSEED`` and insertion history — the
classic source of run-to-run drift that replaying a handful of CI seeds
cannot catch (string hashing is randomized per *process*, so serial
vs. forked-parallel runs can disagree). The sanctioned form is
``sorted(...)`` (or any explicit canonical order) at the iteration
site. ``dict.keys()`` views are flagged as the marker pattern for the
same audit: iterate the dict directly when insertion order is the
deterministic order you mean, or ``sorted(d)`` when it must be
canonical — a bare ``.keys()`` iteration obscures which of the two the
author intended.

Sets whose elements are provably ints (literals, ``set(range(...))``)
are exempt: CPython small-int hashing is value-stable, and the repo's
int-keyed sets (node indices) are constructed deterministically.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    body_nodes,
    function_bodies,
)

#: Builtins whose call result preserves the argument's iteration order.
_ORDER_PRESERVING_CALLS = frozenset({"list", "tuple", "iter", "enumerate", "reversed"})

#: Annotation names that mark a variable as a set.
_SET_ANNOTATIONS = frozenset({"set", "frozenset", "Set", "FrozenSet", "MutableSet"})


def _is_int_only_set(node: ast.expr) -> bool:
    """Whether a set expression provably holds only ints."""
    if isinstance(node, ast.Set):
        return all(
            isinstance(elt, ast.Constant) and type(elt.value) is int for elt in node.elts
        )
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in ("set", "frozenset") and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, ast.Call) and isinstance(arg.func, ast.Name):
                return arg.func.id == "range"
    return False


def _annotation_is_set(annotation: ast.expr) -> bool:
    target = annotation
    if isinstance(target, ast.Subscript):  # Set[str], set[str]
        target = target.value
    if isinstance(target, ast.Attribute):  # typing.Set
        return target.attr in _SET_ANNOTATIONS
    return isinstance(target, ast.Name) and target.id in _SET_ANNOTATIONS


class UnorderedIterationRule(Rule):
    id = "R3"
    name = "unordered-iteration"
    rationale = (
        "set/frozenset iteration is hash-ordered (and .keys() hides the "
        "intended order); wrap in sorted(...) or iterate the dict itself"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        # Module level and each function body are independent scopes for
        # the set-typed-name inference.
        yield from self._check_scope(module, module.tree, top_level=True)
        for scope, _name in function_bodies(module.tree):
            yield from self._check_scope(module, scope, top_level=False)

    def _check_scope(
        self, module: ModuleContext, scope: ast.AST, top_level: bool
    ) -> Iterator[Finding]:
        nodes = list(self._scope_nodes(scope, top_level))
        set_names = self._infer_unordered_names(nodes)
        for node in nodes:
            iters: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
                if node.func.id in _ORDER_PRESERVING_CALLS and node.args:
                    iters.append(node.args[0])
            for expr in iters:
                finding = self._classify(module, expr, set_names)
                if finding is not None:
                    yield finding

    @staticmethod
    def _scope_nodes(scope: ast.AST, top_level: bool) -> Iterator[ast.AST]:
        if top_level:
            # Module scope: every node outside any function body.
            stack = list(ast.iter_child_nodes(scope))
            while stack:
                node = stack.pop()
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                    continue
                yield node
                stack.extend(ast.iter_child_nodes(node))
        else:
            yield from body_nodes(scope)

    @staticmethod
    def _infer_unordered_names(nodes: List[ast.AST]) -> Dict[str, str]:
        """name → kind ("set" | "keys") for locals assigned unordered values.

        Last textual assignment wins: rebinding a name to ``sorted(...)``
        or any non-set expression clears the taint.
        """
        assigns: Dict[str, Tuple[int, Optional[str]]] = {}

        def record(name: str, lineno: int, kind: Optional[str]) -> None:
            prior = assigns.get(name)
            if prior is None or lineno >= prior[0]:
                assigns[name] = (lineno, kind)

        for node in nodes:
            targets: List[ast.Name] = []
            value: Optional[ast.expr] = None
            if isinstance(node, ast.Assign):
                targets = [t for t in node.targets if isinstance(t, ast.Name)]
                value = node.value
            elif isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
                targets = [node.target]
                value = node.value
                if _annotation_is_set(node.annotation):
                    for target in targets:
                        record(target.id, node.lineno, "set")
                    continue
            if not targets or value is None:
                continue
            kind = _value_kind(value)
            if kind == "set" and _is_int_only_set(value):
                kind = None
            for target in targets:
                record(target.id, node.lineno, kind)
        return {name: kind for name, (_line, kind) in assigns.items() if kind is not None}

    def _classify(
        self, module: ModuleContext, expr: ast.expr, set_names: Dict[str, str]
    ) -> Optional[Finding]:
        kind = _value_kind(expr)
        if kind is None and isinstance(expr, ast.Name):
            kind = set_names.get(expr.id)
        if kind is None:
            return None
        if kind == "set" and _is_int_only_set(expr):
            return None
        if kind == "keys":
            message = (
                "iterating a .keys() view hides whether insertion order is "
                "the intended order; iterate the dict directly (insertion-"
                "ordered) or use sorted(...) for a canonical order"
            )
        else:
            message = (
                "iterating a set/frozenset visits elements in hash order "
                "(PYTHONHASHSEED-dependent for strings); iterate "
                "sorted(...) instead"
            )
        return module.finding(self, expr, message)


def _value_kind(value: ast.expr) -> Optional[str]:
    """"set", "keys", or None for an expression's (un)orderedness."""
    if isinstance(value, (ast.Set, ast.SetComp)):
        return "set"
    if isinstance(value, ast.Call):
        if isinstance(value.func, ast.Name) and value.func.id in ("set", "frozenset"):
            return "set"
        if isinstance(value.func, ast.Attribute) and value.func.attr == "keys":
            if not value.args and not value.keywords:
                return "keys"
    if isinstance(value, ast.BinOp) and isinstance(value.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        left = _value_kind(value.left)
        right = _value_kind(value.right)
        if "set" in (left, right):
            return "set"
    return None

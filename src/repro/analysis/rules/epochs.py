"""R6 — epoch-unsafe-mutation: arena writes must bump the cache epoch.

``Topology`` (PR 5) keys every derived cache — neighbor tuples, BFS
orders, bidirectional-Dijkstra routes — off a monotone epoch counter.
The invariant: any method that mutates the position/adjacency arena
(``positions``, ``_adj``, ``_bw``, ``_loss``, ``_dist``) must bump the
epoch before returning, directly (``self._bump_epoch()``) or by calling
a same-class method that transitively does (``rebuild``,
``update_positions``). A mutation that skips the bump leaves stale
routes being served against a changed arena — exactly the class of bug
PR 8's delta rebuilds made easier to write.

The check is a lightweight intra-module call graph: for every class
that defines ``_bump_epoch``, compute the fixpoint of "calls a bumping
method of self", then flag arena-mutating methods outside that set.
Local aliases (``pos = self.positions; pos[i] = …``) are tracked.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set

from repro.analysis.rules.base import (
    Finding,
    ModuleContext,
    Rule,
    RuleConfig,
    body_nodes,
)


def _self_method_calls(scope: ast.AST) -> Set[str]:
    """Names of ``self.<method>(...)`` calls inside one method body."""
    calls: Set[str] = set()
    for node in body_nodes(scope):
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            target = node.func.value
            if isinstance(target, ast.Name) and target.id == "self":
                calls.add(node.func.attr)
    return calls


class EpochMutationRule(Rule):
    id = "R6"
    name = "epoch-unsafe-mutation"
    rationale = (
        "arena mutations that skip _bump_epoch leave per-epoch caches "
        "serving stale routes against the changed arrays"
    )

    def __init__(self, config: RuleConfig | None = None) -> None:
        self.config = config or RuleConfig()

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in module.tree.body:
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: ModuleContext, cls: ast.ClassDef
    ) -> Iterator[Finding]:
        methods: Dict[str, ast.AST] = {
            item.name: item
            for item in cls.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if "_bump_epoch" not in methods:
            return  # not an epoch-keyed class
        # Fixpoint: a method "bumps" if it calls _bump_epoch or any
        # already-known bumping method on self.
        calls = {name: _self_method_calls(scope) for name, scope in methods.items()}
        bumping: Set[str] = {"_bump_epoch"}
        changed = True
        while changed:
            changed = False
            for name, called in calls.items():
                if name not in bumping and called & bumping:
                    bumping.add(name)
                    changed = True
        guarded = set(self.config.guarded_attributes)
        for name, scope in methods.items():
            if name in bumping or name == "_bump_epoch":
                continue
            if name == "__init__":
                # Construction precedes any cached query; there is no
                # stale epoch to invalidate yet.
                continue
            for store in self._guarded_stores(scope, guarded):
                yield module.finding(
                    self,
                    store,
                    f"{cls.name}.{name} mutates an epoch-guarded array "
                    "without bumping the epoch; call self._bump_epoch() "
                    "(or route through rebuild/update_positions) so the "
                    "per-epoch caches invalidate",
                )

    @staticmethod
    def _guarded_stores(scope: ast.AST, guarded: Set[str]) -> Iterator[ast.AST]:
        aliases: Set[str] = set()
        nodes: List[ast.AST] = list(body_nodes(scope))
        # First pass: local aliases of guarded arrays (pos = self.positions).
        for node in nodes:
            if isinstance(node, ast.Assign) and isinstance(node.value, ast.Attribute):
                value = node.value
                if (
                    isinstance(value.value, ast.Name)
                    and value.value.id == "self"
                    and value.attr in guarded
                ):
                    aliases.update(
                        t.id for t in node.targets if isinstance(t, ast.Name)
                    )
        # Second pass: stores through self.<attr> or an alias.
        for node in nodes:
            targets: List[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                targets = [node.target]
            for target in targets:
                if _is_guarded_store(target, guarded, aliases):
                    yield target

    # (module-level helper below keeps this static method tiny)


def _is_guarded_store(
    target: ast.expr, guarded: Set[str], aliases: Set[str]
) -> bool:
    """Whether an assignment target hits a guarded array.

    Covers ``self.positions = …``, ``self._adj[i, :] = …`` and stores
    through a recorded local alias (``pos[i] = …``).
    """
    if isinstance(target, ast.Attribute):
        return (
            isinstance(target.value, ast.Name)
            and target.value.id == "self"
            and target.attr in guarded
        )
    if isinstance(target, ast.Subscript):
        base = target.value
        if isinstance(base, ast.Attribute):
            return (
                isinstance(base.value, ast.Name)
                and base.value.id == "self"
                and base.attr in guarded
            )
        if isinstance(base, ast.Name):
            return base.id in aliases
    if isinstance(target, (ast.Tuple, ast.List)):
        return any(_is_guarded_store(elt, guarded, aliases) for elt in target.elts)
    return False

"""R4 — blanket-except: no ``except Exception:`` / bare ``except:``.

A blanket handler absorbs the library's own contract violations
(:class:`~repro.errors.ReproError` subclasses signalling real invariant
breaks — capacity accounting drift, unknown nodes, illegal session
transitions) along with the narrow condition the author meant to
tolerate, turning determinism bugs into silently wrong tables. Every
handler must name the specific exception types it intends to absorb;
``except BaseException`` relays (e.g. the worker-to-parent exception
pipe in ``repro.experiments.parallel``) are deliberate and not flagged.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.rules.base import Finding, ModuleContext, Rule


def _names_exception(node: ast.expr) -> bool:
    if isinstance(node, ast.Name):
        return node.id == "Exception"
    if isinstance(node, ast.Attribute):
        return node.attr == "Exception"
    if isinstance(node, ast.Tuple):
        return any(_names_exception(elt) for elt in node.elts)
    return False


class BlanketExceptRule(Rule):
    id = "R4"
    name = "blanket-except"
    rationale = (
        "bare except / except Exception absorbs ReproError contract "
        "violations with the condition actually being tolerated"
    )

    def check(self, module: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield module.finding(
                    self,
                    node,
                    "bare except: absorbs everything including "
                    "KeyboardInterrupt; name the exception types this "
                    "handler intends to tolerate",
                )
            elif _names_exception(node.type):
                yield module.finding(
                    self,
                    node,
                    "except Exception: absorbs the library's ReproError "
                    "contract violations; narrow to the specific types "
                    "this handler intends to tolerate",
                )

"""The analysis engine: files → parsed modules → rules → findings.

The engine owns the parts that are rule-independent:

* **File discovery** — recursive ``*.py`` walk over the requested
  paths (``__pycache__`` pruned), module names derived from the
  ``src/<package>/…`` layout;
* **Per-line suppressions** — ``# repro: allow[RULE-ID] reason`` on the
  flagged line, or alone on the line directly above it. The reason is
  mandatory: a reasonless (or unknown-rule) ``allow`` suppresses
  nothing and is itself reported under the pseudo-rule ``SUP``, so
  suppressions stay auditable;
* **Baseline subtraction** — findings matching the committed baseline
  (:mod:`repro.analysis.baseline`) are moved to the report's
  ``baselined`` bucket instead of failing the gate.

The result is an :class:`AnalysisReport`; rendering lives in
:mod:`repro.analysis.reporters`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.baseline import Baseline
from repro.analysis.rules.base import Finding, ModuleContext, Rule

#: ``# repro: allow[R3] hash order irrelevant here`` — the per-line
#: suppression syntax. The bracket token is a comma list of rule ids or
#: names; everything after the bracket is the mandatory reason.
SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[A-Za-z0-9_,\s-]+)\]\s*(?P<reason>.*)$"
)

#: Pseudo-rule id for malformed suppression comments (not selectable,
#: not suppressible — a broken allow must never hide itself).
SUPPRESSION_RULE_ID = "SUP"


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    line: int
    rules: Tuple[str, ...]
    reason: str
    standalone: bool  # comment-only line → applies to the next line

    def covers(self, finding: Finding) -> bool:
        target = self.line + 1 if self.standalone else self.line
        if finding.line != target:
            return False
        return any(
            spec.lower() in (finding.rule.lower(), finding.name.lower())
            for spec in self.rules
        )


@dataclass
class AnalysisReport:
    """Everything one engine run learned."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    stale_baseline: List[str] = field(default_factory=list)
    files_checked: int = 0

    @property
    def clean(self) -> bool:
        return not self.findings


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule)


class AnalysisEngine:
    """Run a set of rules over a file tree.

    Args:
        rules: Rule instances to apply (see
            :func:`repro.analysis.rules.default_rules`).
        root: Repository root; paths in findings and fingerprints are
            reported relative to it.
    """

    def __init__(self, rules: Sequence[Rule], root: Path) -> None:
        self.rules = list(rules)
        self.root = root.resolve()

    # -- discovery -----------------------------------------------------------

    def iter_files(self, paths: Sequence[Path]) -> List[Path]:
        files: List[Path] = []
        for path in paths:
            path = path if path.is_absolute() else self.root / path
            if path.is_dir():
                files.extend(
                    p for p in sorted(path.rglob("*.py"))
                    if "__pycache__" not in p.parts
                )
            elif path.suffix == ".py":
                files.append(path)
        return files

    # -- suppressions --------------------------------------------------------

    @staticmethod
    def scan_suppressions(
        module: ModuleContext,
    ) -> Tuple[List[Suppression], List[Finding]]:
        """Parse allow-comments; malformed ones become SUP findings."""
        suppressions: List[Suppression] = []
        problems: List[Finding] = []
        for lineno, text in enumerate(module.lines, start=1):
            match = SUPPRESSION_RE.search(text)
            if match is None:
                continue
            rules = tuple(
                token.strip() for token in match.group("rules").split(",")
                if token.strip()
            )
            reason = match.group("reason").strip()
            standalone = text.strip().startswith("#")
            if not reason:
                problems.append(
                    Finding(
                        rule=SUPPRESSION_RULE_ID,
                        name="suppression",
                        path=module.path,
                        line=lineno,
                        col=match.start(),
                        message=(
                            "suppression without a reason suppresses "
                            "nothing; write `# repro: allow[RULE] reason`"
                        ),
                        context="<comment>",
                        snippet=module.snippet_at(lineno),
                    )
                )
                continue
            suppressions.append(
                Suppression(
                    line=lineno, rules=rules, reason=reason, standalone=standalone
                )
            )
        return suppressions, problems

    # -- the run -------------------------------------------------------------

    def analyze_paths(
        self,
        paths: Sequence[Path],
        baseline: Optional[Baseline] = None,
    ) -> AnalysisReport:
        report = AnalysisReport()
        raw: List[Finding] = []
        for file_path in self.iter_files(paths):
            module = ModuleContext.from_file(file_path, self.root)
            report.files_checked += 1
            suppressions, malformed = self.scan_suppressions(module)
            raw.extend(malformed)
            for rule in self.rules:
                for finding in rule.check(module):
                    covering = next(
                        (s for s in suppressions if s.covers(finding)), None
                    )
                    if covering is not None:
                        report.suppressed.append(finding)
                    else:
                        raw.append(finding)
        raw.sort(key=_sort_key)
        if baseline is not None:
            kept, grandfathered, stale = baseline.partition(raw)
            report.findings = kept
            report.baselined = grandfathered
            report.stale_baseline = stale
        else:
            report.findings = raw
        report.suppressed.sort(key=_sort_key)
        return report

    def analyze_modules(
        self,
        modules: Iterable[ModuleContext],
        baseline: Optional[Baseline] = None,
    ) -> AnalysisReport:
        """Like :meth:`analyze_paths` over pre-built contexts (tests)."""
        report = AnalysisReport()
        raw: List[Finding] = []
        for module in modules:
            report.files_checked += 1
            suppressions, malformed = self.scan_suppressions(module)
            raw.extend(malformed)
            for rule in self.rules:
                for finding in rule.check(module):
                    if any(s.covers(finding) for s in suppressions):
                        report.suppressed.append(finding)
                    else:
                        raw.append(finding)
        raw.sort(key=_sort_key)
        if baseline is not None:
            kept, grandfathered, stale = baseline.partition(raw)
            report.findings = kept
            report.baselined = grandfathered
            report.stale_baseline = stale
        else:
            report.findings = raw
        return report


def rule_index(rules: Sequence[Rule]) -> Dict[str, Dict[str, str]]:
    """id → {name, rationale} map for reporters and ``--list-rules``."""
    return {
        rule.id: {"name": rule.name, "rationale": rule.rationale}
        for rule in rules
    }

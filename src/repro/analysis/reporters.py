"""Rendering an :class:`~repro.analysis.engine.AnalysisReport`.

Two formats, both stable enough to build tooling on:

* **text** — one ``path:line:col RULE[name] message (in scope)`` line
  per finding plus a summary, for humans and CI logs;
* **JSON** — a versioned document (``REPORT_VERSION``) with the rule
  catalog, every finding (including its baseline fingerprint), and the
  summary counters, for dashboards and the test suite's schema checks.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence

from repro.analysis.baseline import fingerprint
from repro.analysis.engine import AnalysisReport, rule_index
from repro.analysis.rules.base import Finding, Rule

REPORT_VERSION = 1


def render_text(report: AnalysisReport, verbose_suppressed: bool = False) -> str:
    """Human-readable report; empty-string when fully clean and quiet."""
    lines: List[str] = []
    for finding in report.findings:
        lines.append(
            f"{finding.location()} {finding.rule}[{finding.name}] "
            f"{finding.message} (in {finding.context})"
        )
    if verbose_suppressed:
        for finding in report.suppressed:
            lines.append(
                f"{finding.location()} {finding.rule}[{finding.name}] "
                f"suppressed (in {finding.context})"
            )
    for stale in report.stale_baseline:
        lines.append(f"stale baseline entry (fixed? remove it): {stale}")
    lines.append(
        f"{len(report.findings)} finding(s) "
        f"({len(report.suppressed)} suppressed, "
        f"{len(report.baselined)} baselined, "
        f"{len(report.stale_baseline)} stale baseline entr(y/ies)) "
        f"across {report.files_checked} file(s)"
    )
    return "\n".join(lines)


def _finding_dict(finding: Finding) -> Dict[str, Any]:
    return {
        "rule": finding.rule,
        "name": finding.name,
        "path": finding.path,
        "line": finding.line,
        "col": finding.col,
        "message": finding.message,
        "context": finding.context,
        "snippet": finding.snippet,
        "fingerprint": fingerprint(finding),
    }


def render_json(report: AnalysisReport, rules: Sequence[Rule]) -> str:
    """The versioned machine-readable report (see tests for the schema)."""
    document: Dict[str, Any] = {
        "version": REPORT_VERSION,
        "rules": rule_index(rules),
        "findings": [_finding_dict(f) for f in report.findings],
        "suppressed": [_finding_dict(f) for f in report.suppressed],
        "baselined": [_finding_dict(f) for f in report.baselined],
        "stale_baseline": list(report.stale_baseline),
        "summary": {
            "findings": len(report.findings),
            "suppressed": len(report.suppressed),
            "baselined": len(report.baselined),
            "stale_baseline": len(report.stale_baseline),
            "files_checked": report.files_checked,
            "clean": report.clean,
        },
    }
    return json.dumps(document, indent=2)

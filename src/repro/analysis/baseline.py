"""Committed baselines: grandfathered findings that don't fail the gate.

A baseline lets the linter land as a **blocking** CI gate on day one:
pre-existing findings that are deliberate (with a recorded reason) are
committed to a JSON file and subtracted from every run, while anything
*new* still fails. Fingerprints hash ``rule | path | enclosing scope |
stripped source line`` — not the line number — so entries survive
unrelated edits elsewhere in the file; identical lines in one scope are
handled as a multiset (one entry absorbs one finding).

Workflow::

    python tools/lint_repro.py --update-baseline   # grandfather now
    # …edit tools/lint_baseline.json, replacing each "reason"…
    python tools/lint_repro.py                     # clean, gate is live

Stale entries (the finding they matched was fixed) are reported so the
baseline only ever shrinks.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from repro.analysis.rules.base import Finding

BASELINE_VERSION = 1

#: Reason recorded by ``--update-baseline`` until a human replaces it.
DEFAULT_REASON = "grandfathered (replace with the real reason)"


def fingerprint(finding: Finding) -> str:
    """Location-independent identity of a finding (16 hex chars)."""
    payload = "|".join(
        (finding.rule, finding.path, finding.context, finding.snippet)
    )
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:16]


@dataclass
class BaselineEntry:
    fingerprint: str
    rule: str
    path: str
    context: str
    snippet: str
    reason: str


class Baseline:
    """The committed set of grandfathered findings."""

    def __init__(self, entries: Sequence[BaselineEntry] = ()) -> None:
        self.entries = list(entries)

    # -- persistence ---------------------------------------------------------

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Load a baseline file; a missing file is an empty baseline."""
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r} "
                f"(expected {BASELINE_VERSION})"
            )
        entries = [
            BaselineEntry(
                fingerprint=item["fingerprint"],
                rule=item["rule"],
                path=item["path"],
                context=item["context"],
                snippet=item["snippet"],
                reason=item["reason"],
            )
            for item in data.get("entries", [])
        ]
        return cls(entries)

    def save(self, path: Path) -> None:
        data = {
            "version": BASELINE_VERSION,
            "entries": [
                {
                    "fingerprint": entry.fingerprint,
                    "rule": entry.rule,
                    "path": entry.path,
                    "context": entry.context,
                    "snippet": entry.snippet,
                    "reason": entry.reason,
                }
                for entry in sorted(
                    self.entries, key=lambda e: (e.path, e.rule, e.fingerprint)
                )
            ],
        }
        path.write_text(json.dumps(data, indent=2) + "\n")

    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Grandfather every current finding (``--update-baseline``).

        Reasons of entries that already existed should be carried over
        by the caller via :meth:`merge_reasons`.
        """
        return cls(
            [
                BaselineEntry(
                    fingerprint=fingerprint(finding),
                    rule=finding.rule,
                    path=finding.path,
                    context=finding.context,
                    snippet=finding.snippet,
                    reason=DEFAULT_REASON,
                )
                for finding in findings
            ]
        )

    def merge_reasons(self, previous: "Baseline") -> None:
        """Keep the human-written reasons of entries that persist."""
        reasons: Dict[str, str] = {
            entry.fingerprint: entry.reason for entry in previous.entries
        }
        for entry in self.entries:
            kept = reasons.get(entry.fingerprint)
            if kept is not None:
                entry.reason = kept

    # -- matching ------------------------------------------------------------

    def partition(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], List[Finding], List[str]]:
        """Split findings into (new, baselined); also report stale entries.

        Matching is a multiset consume: each baseline entry absorbs at
        most one finding with its fingerprint, so adding a *second*
        identical violation next to a grandfathered one still fails.
        """
        budget: Dict[str, int] = {}
        for entry in self.entries:
            budget[entry.fingerprint] = budget.get(entry.fingerprint, 0) + 1
        new: List[Finding] = []
        grandfathered: List[Finding] = []
        for finding in findings:
            fp = fingerprint(finding)
            if budget.get(fp, 0) > 0:
                budget[fp] -= 1
                grandfathered.append(finding)
            else:
                new.append(finding)
        stale: List[str] = []
        for entry in self.entries:
            if budget.get(entry.fingerprint, 0) > 0:
                budget[entry.fingerprint] -= 1
                stale.append(
                    f"{entry.path} [{entry.rule}] {entry.snippet!r} ({entry.reason})"
                )
        return new, grandfathered, stale

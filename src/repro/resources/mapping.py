"""QoS-level → resource-demand mapping (paper Section 5).

*"Each individual QoS Provider must map QoS constraints to resource
requirements … This mapping is inherently difficult. To address this
problem we (for now) assume that applications make a reasonable accurate
analysis of their resource requirements, made a priori through resource
monitoring tools."*

We implement that a-priori profile as a :class:`DemandModel`: a function
from a concrete attribute→value assignment to a
:class:`~repro.resources.capacity.Capacity` demand vector. Two concrete
models are provided:

* :class:`LinearDemandModel` — demand grows linearly with a numeric score
  of each attribute value (a good fit for frame rate × resolution style
  costs and easy to calibrate);
* :class:`TabularDemandModel` — fully explicit per-value tables, for
  attributes whose cost is irregular (e.g. codec choice).

Both guarantee **monotonicity in quality** when configured with
non-negative contributions: degrading an attribute never increases
demand, which the Section 5 heuristic implicitly relies on (degradation
must help schedulability).
"""

from __future__ import annotations

import abc
from typing import Any, Dict, Mapping, Optional

from repro.errors import MappingError
from repro.resources.capacity import Capacity


class DemandModel(abc.ABC):
    """Maps a quality assignment (attribute → concrete value) to demand."""

    @abc.abstractmethod
    def demand(self, values: Mapping[str, Any]) -> Capacity:
        """Resource demand of serving the task at the given quality."""

    def __call__(self, values: Mapping[str, Any]) -> Capacity:
        return self.demand(values)


class LinearDemandModel(DemandModel):
    """``demand = base + Σ_attr per_unit[attr] * score(value)``.

    Args:
        base: Fixed overhead demand, independent of quality.
        per_unit: Per-attribute demand per unit of value score. Attributes
            absent here contribute nothing.
        value_scores: Optional per-attribute mapping of non-numeric values
            to scores. Numeric values score as themselves when their
            attribute has no explicit table.

    Raises:
        MappingError: At demand time, if a non-numeric value has no score.
    """

    def __init__(
        self,
        base: Capacity,
        per_unit: Mapping[str, Capacity],
        value_scores: Optional[Mapping[str, Mapping[Any, float]]] = None,
    ) -> None:
        self.base = base
        self.per_unit: Dict[str, Capacity] = dict(per_unit)
        self.value_scores: Dict[str, Dict[Any, float]] = {
            attr: dict(scores) for attr, scores in (value_scores or {}).items()
        }

    def score(self, attribute: str, value: Any) -> float:
        """Numeric score of ``value`` for ``attribute``."""
        table = self.value_scores.get(attribute)
        if table is not None:
            try:
                return float(table[value])
            except KeyError:
                raise MappingError(
                    f"no score for value {value!r} of attribute {attribute!r}"
                ) from None
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise MappingError(
                f"attribute {attribute!r} value {value!r} is not numeric and "
                f"has no score table"
            )
        return float(value)

    def demand(self, values: Mapping[str, Any]) -> Capacity:
        total = self.base
        for attribute, unit in self.per_unit.items():
            if attribute not in values:
                continue
            s = self.score(attribute, values[attribute])
            if s < 0:
                raise MappingError(
                    f"negative score {s} for {attribute!r}={values[attribute]!r}"
                )
            total = total + unit.scaled(s)
        return total


class TabularDemandModel(DemandModel):
    """``demand = base + Σ_attr table[attr][value]``.

    Every attribute in ``tables`` must have an entry for the value it is
    asked about; attributes without a table contribute nothing.
    """

    def __init__(
        self,
        base: Capacity,
        tables: Mapping[str, Mapping[Any, Capacity]],
    ) -> None:
        self.base = base
        self.tables: Dict[str, Dict[Any, Capacity]] = {
            attr: dict(entries) for attr, entries in tables.items()
        }

    def demand(self, values: Mapping[str, Any]) -> Capacity:
        total = self.base
        for attribute, table in self.tables.items():
            if attribute not in values:
                continue
            value = values[attribute]
            try:
                total = total + table[value]
            except KeyError:
                raise MappingError(
                    f"no demand entry for value {value!r} of attribute "
                    f"{attribute!r}"
                ) from None
        return total


class CompositeDemandModel(DemandModel):
    """Sum of several demand models (e.g. linear CPU + tabular codec)."""

    def __init__(self, *models: DemandModel) -> None:
        if not models:
            raise MappingError("composite demand model needs at least one part")
        self.models = tuple(models)

    def demand(self, values: Mapping[str, Any]) -> Capacity:
        total = Capacity.zero()
        for model in self.models:
            total = total + model.demand(values)
        return total

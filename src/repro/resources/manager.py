"""Resource Managers: admission control and reservation accounting.

Paper Section 4: *"Resource Manager: the object that manages a particular
resource. This typically would be implemented by the device driver …, by
the scheduler that manages the CPU, or by software that manages other
resources."*

One :class:`ResourceManager` instance manages the full capacity vector of
a node (conceptually one manager per kind; a single object keeps the
accounting atomic across kinds, which a per-kind split would need a
two-phase protocol for). The invariant maintained at all times::

    reserved + available == capacity     (component-wise)
    reserved <= capacity                 (component-wise)
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.errors import CapacityExceededError, UnknownReservationError
from repro.resources.capacity import Capacity
from repro.resources.reservation import Reservation


class ResourceManager:
    """Admission control over a fixed capacity vector.

    Args:
        capacity: Total capacities managed (the node's ``R_i``).
        name: Label for traces and error messages.
    """

    def __init__(self, capacity: Capacity, name: str = "rm") -> None:
        self.name = name
        self.capacity = capacity
        self._reserved = Capacity.zero()
        self._live: Dict[int, Reservation] = {}
        self._history: list[Reservation] = []

    # -- queries ------------------------------------------------------------

    @property
    def reserved(self) -> Capacity:
        """Currently granted amounts (sum of live reservations)."""
        return self._reserved

    @property
    def available(self) -> Capacity:
        """Remaining admittable amounts."""
        return self.capacity.minus_clamped(self._reserved)

    def can_admit(self, demand: Capacity) -> bool:
        """Whether ``demand`` fits in the remaining capacity."""
        return self.available.covers(demand)

    def utilization(self) -> float:
        """Bottleneck utilization: max over kinds of reserved/capacity."""
        return self.capacity.utilization_of(self._reserved)

    @property
    def live_reservations(self) -> Tuple[Reservation, ...]:
        return tuple(self._live.values())

    # -- admission ------------------------------------------------------------

    def reserve(
        self,
        holder: str,
        demand: Capacity,
        now: float = 0.0,
        ttl: Optional[float] = None,
    ) -> Reservation:
        """Admit ``demand`` and return the reservation receipt.

        Args:
            holder: Task/agent identity for bulk release.
            demand: The requested resource vector.
            now: Current simulated time.
            ttl: Optional lease duration; after ``now + ttl`` the grant is
                reclaimable via :meth:`release_expired`.

        Raises:
            CapacityExceededError: If the demand does not fit; the manager
                state is unchanged in that case (all-or-nothing admission).
        """
        if not self.can_admit(demand):
            raise CapacityExceededError(
                f"{self.name}: demand {demand!r} exceeds available "
                f"{self.available!r} (capacity {self.capacity!r})"
            )
        expires = now + ttl if ttl is not None else None
        reservation = Reservation(
            holder=holder, amounts=demand, granted_at=now, expires_at=expires
        )
        self._reserved = self._reserved + demand
        self._live[reservation.rid] = reservation
        self._history.append(reservation)
        return reservation

    def try_reserve(
        self, holder: str, demand: Capacity, now: float = 0.0
    ) -> Optional[Reservation]:
        """Like :meth:`reserve` but returns ``None`` instead of raising."""
        if not self.can_admit(demand):
            return None
        return self.reserve(holder, demand, now)

    def release(self, reservation: Reservation, now: float = 0.0) -> None:
        """Return a live reservation's amounts to the pool.

        Raises:
            UnknownReservationError: If the reservation is not live here.
        """
        live = self._live.pop(reservation.rid, None)
        if live is None:
            raise UnknownReservationError(
                f"{self.name}: reservation #{reservation.rid} is not live here"
            )
        # Recompute from the live set rather than subtracting: a running
        # difference accumulates float residue (1e-15 leftovers after
        # LIFO churn) that breaks the reserved==0 invariant at idle.
        self._reserved = Capacity.zero()
        for r in self._live.values():
            self._reserved = self._reserved + r.amounts
        live.released_at = now

    def release_holder(self, holder: str, now: float = 0.0) -> int:
        """Release every live reservation of ``holder``; returns the count."""
        mine = [r for r in self._live.values() if r.holder == holder]
        for r in mine:
            self.release(r, now)
        return len(mine)

    def release_expired(self, now: float) -> int:
        """Reclaim every reservation whose lease has lapsed.

        Returns the number reclaimed. Providers sweep this periodically
        (see :class:`~repro.agents.provider.ProviderAgent`), so a grant
        whose CONFIRM was lost on the radio does not dangle forever.
        """
        lapsed = [r for r in self._live.values() if r.expired(now)]
        for r in lapsed:
            self.release(r, now)
        return len(lapsed)

    def next_expiry(self) -> Optional[float]:
        """Earliest lease expiry among live reservations, if any."""
        expiries = [
            r.expires_at for r in self._live.values() if r.expires_at is not None
        ]
        return min(expiries) if expiries else None

    def __repr__(self) -> str:
        return (
            f"<ResourceManager {self.name!r} reserved={self._reserved!r} "
            f"capacity={self.capacity!r}>"
        )

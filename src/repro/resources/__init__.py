"""Node resources, admission control, and QoS→resource mapping.

Implements the Section 4 definitions:

* **Resource** — "a limited hardware or software quantity supplied by a
  specific node … CPU time, memory, I/O bus bandwidth, network bandwidth"
  (:class:`~repro.resources.kinds.ResourceKind`,
  :class:`~repro.resources.capacity.Capacity`);
* **Resource Manager** — "the object that manages a particular resource"
  with reservation accounting
  (:class:`~repro.resources.manager.ResourceManager`);
* **QoS Provider** — "a server that negotiates access to node's resources
  … contacts the Resource Managers to grant specific resource amounts"
  (:class:`~repro.resources.provider.QoSProvider`);

plus the :class:`~repro.resources.node.Node` abstraction (capacities,
position, energy) and the QoS-level→resource-demand mapping of Section 5
(:mod:`repro.resources.mapping`), which the paper assumes is profiled
a priori by the application.
"""

from repro.resources.kinds import ResourceKind
from repro.resources.capacity import Capacity
from repro.resources.reservation import Reservation
from repro.resources.manager import ResourceManager
from repro.resources.node import Node, NodeClass, NODE_CLASS_PROFILES
from repro.resources.mapping import DemandModel, LinearDemandModel, TabularDemandModel
from repro.resources.provider import QoSProvider

__all__ = [
    "ResourceKind",
    "Capacity",
    "Reservation",
    "ResourceManager",
    "Node",
    "NodeClass",
    "NODE_CLASS_PROFILES",
    "DemandModel",
    "LinearDemandModel",
    "TabularDemandModel",
    "QoSProvider",
]

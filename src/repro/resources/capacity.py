"""Capacity vectors: typed amounts of resources.

A :class:`Capacity` maps :class:`~repro.resources.kinds.ResourceKind` to a
non-negative float amount, with vector arithmetic (add, subtract,
domination tests) used throughout admission control and demand mapping.
Missing kinds are implicitly zero.
"""

from __future__ import annotations

from typing import Dict, Iterator, Mapping, Tuple

from repro.errors import ResourceError
from repro.resources.kinds import ResourceKind


class Capacity:
    """An immutable non-negative resource vector.

    Construct from a mapping or keyword-style pairs::

        Capacity({ResourceKind.CPU: 100.0, ResourceKind.MEMORY: 256.0})

    Arithmetic never produces negative components unless explicitly using
    :meth:`minus_clamped`; plain subtraction raises when it would go
    negative, catching accounting bugs early.
    """

    __slots__ = ("_amounts",)

    def __init__(self, amounts: Mapping[ResourceKind, float] | None = None) -> None:
        clean: Dict[ResourceKind, float] = {}
        if amounts:
            for kind, amount in amounts.items():
                if not isinstance(kind, ResourceKind):
                    raise ResourceError(f"capacity key must be ResourceKind, got {kind!r}")
                amount = float(amount)
                if amount < 0:
                    raise ResourceError(f"negative capacity for {kind}: {amount}")
                if amount > 0:
                    clean[kind] = amount
        self._amounts: Dict[ResourceKind, float] = clean

    # -- constructors -------------------------------------------------------

    @classmethod
    def zero(cls) -> "Capacity":
        """The all-zero capacity vector."""
        return cls()

    @classmethod
    def of(cls, **kinds: float) -> "Capacity":
        """Build from lowercase kind names: ``Capacity.of(cpu=10, memory=64)``."""
        mapping: Dict[ResourceKind, float] = {}
        for name, amount in kinds.items():
            try:
                kind = ResourceKind(name)
            except ValueError:
                raise ResourceError(f"unknown resource kind name: {name!r}") from None
            mapping[kind] = amount
        return cls(mapping)

    # -- access --------------------------------------------------------------

    def get(self, kind: ResourceKind) -> float:
        """Amount of ``kind`` (0.0 when absent)."""
        return self._amounts.get(kind, 0.0)

    def kinds(self) -> Tuple[ResourceKind, ...]:
        """Resource kinds with strictly positive amounts."""
        return tuple(self._amounts)

    def items(self) -> Iterator[Tuple[ResourceKind, float]]:
        return iter(self._amounts.items())

    @property
    def is_zero(self) -> bool:
        return not self._amounts

    def total(self) -> float:
        """Sum over all components (used only for coarse load heuristics)."""
        return sum(self._amounts.values())

    # -- arithmetic ------------------------------------------------------------

    def __add__(self, other: "Capacity") -> "Capacity":
        out = dict(self._amounts)
        for kind, amount in other._amounts.items():
            out[kind] = out.get(kind, 0.0) + amount
        return Capacity(out)

    def __sub__(self, other: "Capacity") -> "Capacity":
        out = dict(self._amounts)
        for kind, amount in other._amounts.items():
            remaining = out.get(kind, 0.0) - amount
            if remaining < -1e-9:
                raise ResourceError(
                    f"capacity underflow on {kind}: {out.get(kind, 0.0)} - {amount}"
                )
            out[kind] = max(remaining, 0.0)
        return Capacity(out)

    def minus_clamped(self, other: "Capacity") -> "Capacity":
        """Subtraction that floors each component at zero."""
        out = dict(self._amounts)
        for kind, amount in other._amounts.items():
            out[kind] = max(out.get(kind, 0.0) - amount, 0.0)
        return Capacity(out)

    def scaled(self, factor: float) -> "Capacity":
        """Multiply every component by a non-negative factor."""
        if factor < 0:
            raise ResourceError(f"negative scale factor: {factor}")
        return Capacity({k: v * factor for k, v in self._amounts.items()})

    # -- comparisons ------------------------------------------------------------

    def covers(self, demand: "Capacity", slack: float = 1e-9) -> bool:
        """True when every component of ``demand`` fits within ``self``."""
        return all(
            self.get(kind) + slack >= amount for kind, amount in demand._amounts.items()
        )

    def utilization_of(self, used: "Capacity") -> float:
        """Max component-wise used/capacity ratio (bottleneck utilization).

        Components where this vector is zero but usage is positive yield
        ``inf``; an all-zero usage yields 0.0.
        """
        worst = 0.0
        for kind, amount in used._amounts.items():
            cap = self.get(kind)
            if cap <= 0.0:
                return float("inf")
            worst = max(worst, amount / cap)
        return worst

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Capacity):
            return NotImplemented
        kinds = set(self._amounts) | set(other._amounts)
        # repro: allow[R3] all() over the union is order-free (pure conjunction)
        return all(abs(self.get(k) - other.get(k)) <= 1e-9 for k in kinds)

    def __hash__(self) -> int:
        return hash(tuple(sorted((k.value, round(v, 9)) for k, v in self._amounts.items())))

    def __repr__(self) -> str:
        parts = ", ".join(f"{k.value}={v:g}" for k, v in sorted(self._amounts.items(), key=lambda kv: kv[0].value))
        return f"Capacity({parts})"

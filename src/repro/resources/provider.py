"""QoS Providers: the per-node negotiation endpoint over resources.

Paper Section 4: *"QoS Provider: a server that negotiates access to
node's resources. Rather than reserving resources directly it will contact
the Resource Managers to grant specific resource amounts to the requesting
task."*

:class:`QoSProvider` is the resource-side half of that role: it answers
schedulability questions ("can this node serve this task at this quality
level, given what is already reserved?") and performs the actual
reservations when a proposal wins. The preference-degradation logic that
*uses* these answers lives in :mod:`repro.core.formulation`; the
agent-protocol plumbing lives in :mod:`repro.agents.provider`.
"""

from __future__ import annotations

from typing import Any, Mapping, Tuple

from repro.errors import CapacityExceededError, MappingError
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.mapping import DemandModel
from repro.resources.node import Node
from repro.resources.reservation import Reservation


class QoSProvider:
    """Negotiates access to one node's resources.

    Args:
        node: The node whose Resource Manager this provider fronts.
    """

    def __init__(self, node: Node) -> None:
        self.node = node

    # -- schedulability ------------------------------------------------------

    def can_serve(self, demand: Capacity) -> bool:
        """Whether the node can admit ``demand`` right now.

        A dead node, an unwilling node, or a node whose remaining battery
        cannot cover the demand's ENERGY component all answer ``False``.
        """
        if not self.node.alive or not self.node.willing:
            return False
        energy_needed = demand.get(ResourceKind.ENERGY)
        if energy_needed > self.node.battery:
            return False
        return self.node.manager.can_admit(demand)

    def can_serve_at(self, model: DemandModel, values: Mapping[str, Any]) -> bool:
        """Whether the node can serve a task at quality ``values``.

        Unmappable levels (``MappingError``) are simply not servable.
        """
        try:
            demand = model.demand(values)
        except MappingError:
            return False
        return self.can_serve(demand)

    def headroom(self) -> Capacity:
        """Currently unreserved capacity."""
        return self.node.manager.available

    # -- reservation ------------------------------------------------------------

    def reserve_for(
        self,
        holder: str,
        model: DemandModel,
        values: Mapping[str, Any],
        now: float = 0.0,
    ) -> Tuple[Reservation, Capacity]:
        """Reserve the resources a task needs at quality ``values``.

        The ENERGY component is drawn from the battery immediately (task
        admission commits the energy); rate components are held by the
        Resource Manager until release.

        Returns:
            The reservation receipt and the demand that was admitted.

        Raises:
            CapacityExceededError: If the demand no longer fits (e.g. a
                concurrent award consumed the headroom between proposal
                and award — the classic negotiation race).
        """
        demand = model.demand(values)
        energy = demand.get(ResourceKind.ENERGY)
        if energy > self.node.battery:
            raise CapacityExceededError(
                f"node {self.node.node_id!r}: battery {self.node.battery:.1f} J "
                f"cannot cover demand {energy:.1f} J"
            )
        reservation = self.node.manager.reserve(holder, demand, now)
        if energy > 0:
            self.node.consume_energy(energy)
        return reservation, demand

    def release(self, reservation: Reservation, now: float = 0.0) -> None:
        """Release a previously granted reservation (energy is not
        refunded — it was physically spent)."""
        self.node.manager.release(reservation, now)

    def release_holder(self, holder: str, now: float = 0.0) -> int:
        """Release all reservations held by ``holder``."""
        return self.node.manager.release_holder(holder, now)

    def __repr__(self) -> str:
        return f"<QoSProvider node={self.node.node_id!r}>"

"""Nodes of the ad-hoc network: capacities, position, energy.

The paper's environment "is expected to be heterogeneous, consisting of
nodes with several resource capabilities" — telephones, PDAs, laptops, and
optionally fixed infrastructure (Section 1 explicitly keeps wired clusters
in scope). :data:`NODE_CLASS_PROFILES` provides calibrated capacity
vectors per device class; individual nodes may override them.

A :class:`Node` owns one :class:`~repro.resources.manager.ResourceManager`
for admission control and a battery whose energy is destructively consumed
by task execution (the paper's motivation for offloading).
"""

from __future__ import annotations

import enum
from typing import Callable, List, Optional, Tuple

from repro.errors import ResourceError
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.manager import ResourceManager


class NodeClass(enum.Enum):
    """Device classes of the heterogeneous ad-hoc environment."""

    PHONE = "phone"
    PDA = "pda"
    LAPTOP = "laptop"
    FIXED = "fixed"
    """Fixed infrastructure node (mains-powered, wired backhaul)."""


#: Per-class capacity profiles. Units: CPU in abstract Mops/s, memory in
#: MB, bus bandwidth in MB/s, network bandwidth in kb/s, energy in joules.
#: The ratios (not absolute numbers) matter: phones ≈ 1/20 of a laptop's
#: CPU, fixed nodes are effectively unconstrained in energy.
NODE_CLASS_PROFILES: dict[NodeClass, Capacity] = {
    NodeClass.PHONE: Capacity.of(
        cpu=50.0, memory=32.0, bus_bandwidth=10.0, net_bandwidth=1000.0, energy=3_000.0
    ),
    NodeClass.PDA: Capacity.of(
        cpu=200.0, memory=64.0, bus_bandwidth=40.0, net_bandwidth=2000.0, energy=8_000.0
    ),
    NodeClass.LAPTOP: Capacity.of(
        cpu=1000.0, memory=512.0, bus_bandwidth=200.0, net_bandwidth=5000.0, energy=50_000.0
    ),
    NodeClass.FIXED: Capacity.of(
        cpu=4000.0, memory=4096.0, bus_bandwidth=800.0, net_bandwidth=10000.0,
        energy=1e12,
    ),
}


class Node:
    """A device participating in the ad-hoc network.

    Args:
        node_id: Unique identifier.
        node_class: Device class; selects the default capacity profile.
        capacity: Optional explicit capacity overriding the class profile.
        position: Initial 2-D position in meters.
        willing: Whether the node volunteers for coalitions (Section 4.2:
            "those nodes who are willing to belong to the future
            coalition"). Unwilling nodes never answer calls-for-proposals.
    """

    def __init__(
        self,
        node_id: str,
        node_class: NodeClass = NodeClass.PDA,
        capacity: Optional[Capacity] = None,
        position: Tuple[float, float] = (0.0, 0.0),
        willing: bool = True,
    ) -> None:
        self.node_id = node_id
        self.node_class = node_class
        self.capacity = capacity if capacity is not None else NODE_CLASS_PROFILES[node_class]
        self.position = (float(position[0]), float(position[1]))
        self.willing = willing
        self.manager = ResourceManager(self.capacity, name=f"rm:{node_id}")
        self.battery = self.capacity.get(ResourceKind.ENERGY)
        self.alive = True
        self._liveness_watchers: List[Callable[["Node"], None]] = []

    # -- liveness observers ----------------------------------------------

    def add_liveness_watcher(self, watcher: Callable[["Node"], None]) -> None:
        """Register a callback fired whenever ``alive`` flips (death by
        battery drain, :meth:`fail`, :meth:`recover`). The topology layer
        uses this to bump its cache epoch the instant liveness changes."""
        if watcher not in self._liveness_watchers:
            self._liveness_watchers.append(watcher)

    def remove_liveness_watcher(self, watcher: Callable[["Node"], None]) -> None:
        try:
            self._liveness_watchers.remove(watcher)
        except ValueError:
            pass

    def _set_alive(self, alive: bool) -> None:
        if alive == self.alive:
            return
        self.alive = alive
        for watcher in tuple(self._liveness_watchers):
            watcher(self)

    # -- energy ----------------------------------------------------------

    @property
    def battery_fraction(self) -> float:
        """Remaining battery as a fraction of initial energy (0..1)."""
        initial = self.capacity.get(ResourceKind.ENERGY)
        if initial <= 0:
            return 1.0
        return max(0.0, min(1.0, self.battery / initial))

    def consume_energy(self, joules: float) -> None:
        """Destructively draw energy; a drained battery kills the node."""
        if joules < 0:
            raise ResourceError(f"negative energy draw: {joules}")
        self.battery = max(0.0, self.battery - joules)
        if self.battery == 0.0 and self.capacity.get(ResourceKind.ENERGY) < 1e11:
            self._set_alive(False)

    def fail(self) -> None:
        """Mark the node failed (crash / out of range permanently)."""
        self._set_alive(False)

    def recover(self) -> None:
        """Bring a failed node back (battery unchanged)."""
        if self.battery > 0.0 or self.capacity.get(ResourceKind.ENERGY) >= 1e11:
            self._set_alive(True)

    # -- geometry ----------------------------------------------------------

    def move_to(self, x: float, y: float) -> None:
        self.position = (float(x), float(y))

    def distance_to(self, other: "Node") -> float:
        dx = self.position[0] - other.position[0]
        dy = self.position[1] - other.position[1]
        return (dx * dx + dy * dy) ** 0.5

    def __repr__(self) -> str:
        return (
            f"<Node {self.node_id!r} {self.node_class.value} "
            f"@({self.position[0]:.1f},{self.position[1]:.1f}) "
            f"{'alive' if self.alive else 'down'}>"
        )

"""Reservation records.

A :class:`Reservation` is the manager-issued receipt for an admitted
resource grant: what was granted, to whom, when, and whether it is still
live. Managers hand these out from
:meth:`repro.resources.manager.ResourceManager.reserve` and take them back
in :meth:`~repro.resources.manager.ResourceManager.release`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.resources.capacity import Capacity
from repro.sim.sequences import Sequence

_reservation_ids = Sequence()


@dataclass
class Reservation:
    """A live (or released) resource grant.

    Attributes:
        rid: Unique reservation id (process-wide counter).
        holder: Identifier of the task/agent holding the grant.
        amounts: The granted resource vector.
        granted_at: Simulated time of admission.
        released_at: Simulated time of release, or ``None`` while live.
        expires_at: Optional lease expiry. A reservation whose lease has
            lapsed is reclaimed by
            :meth:`~repro.resources.manager.ResourceManager.release_expired`
            — the defence against *dangling grants*: a provider that
            reserved on an AWARD whose CONFIRM was lost would otherwise
            hold the resources forever.
    """

    holder: str
    amounts: Capacity
    granted_at: float
    rid: int = field(default_factory=_reservation_ids.next)
    released_at: Optional[float] = None
    expires_at: Optional[float] = None

    @property
    def live(self) -> bool:
        """Whether the grant is still held."""
        return self.released_at is None

    def expired(self, now: float) -> bool:
        """Whether the lease has lapsed (never true for untimed grants)."""
        return self.live and self.expires_at is not None and now >= self.expires_at

    def renew(self, until: float) -> None:
        """Extend the lease (e.g. when the task actually starts running)."""
        if not self.live:
            raise ValueError(f"cannot renew released reservation #{self.rid}")
        self.expires_at = until

    def __repr__(self) -> str:
        state = "live" if self.live else f"released@{self.released_at}"
        lease = f" lease<={self.expires_at}" if self.expires_at is not None else ""
        return f"<Reservation #{self.rid} {self.holder!r} {self.amounts!r} {state}{lease}>"

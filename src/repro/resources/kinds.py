"""Resource kinds (paper Section 4: the ``Resource`` definition).

The paper enumerates CPU time, memory, I/O bus bandwidth and network
bandwidth; we add ENERGY because the paper's motivation (Sections 1 and 7)
repeatedly cites battery drain as a reason to offload work.
"""

from __future__ import annotations

import enum


class ResourceKind(enum.Enum):
    """A category of limited hardware/software quantity on a node."""

    CPU = "cpu"
    """CPU time, in MIPS-like abstract work units per second."""

    MEMORY = "memory"
    """Memory, in MB."""

    BUS_BANDWIDTH = "bus_bandwidth"
    """I/O bus bandwidth, in MB/s."""

    NET_BANDWIDTH = "net_bandwidth"
    """Network interface bandwidth, in kb/s."""

    ENERGY = "energy"
    """Battery energy budget, in joule-like units (drawn down over time)."""

    def __str__(self) -> str:
        return self.value


#: Kinds whose consumption is a *rate* held for the task's duration
#: (reserved, then released), as opposed to ENERGY which is destructively
#: consumed.
RATE_KINDS = (
    ResourceKind.CPU,
    ResourceKind.MEMORY,
    ResourceKind.BUS_BANDWIDTH,
    ResourceKind.NET_BANDWIDTH,
)

"""The operation phase: monitoring, failures, reconfiguration.

Paper Section 4: *"Operation: Control and monitoring of partners'
execution, resolution of conflicts and, possibly, the coalition
reconfiguration due to partial failures."* The paper focuses on formation;
this module implements the natural operation-phase semantics its life
cycle implies:

* every awarded task runs for its nominal duration on its winner, starting
  as soon as all its precedence predecessors (if the service declares any;
  see :class:`~repro.services.service.Service`) have completed — the
  paper's independent tasks all start immediately;
* if the winner fails mid-execution, the organizer *reconfigures*: it
  re-negotiates the orphaned tasks among the currently reachable nodes
  (re-running the Section 4.2 protocol for the remainder), releasing the
  dead node's awards;
* tasks whose reconfiguration finds no taker are lost;
* when all tasks finish, the coalition dissolves and releases resources.

Failure injection is an explicit schedule, so experiments (E8) control it
deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.coalition import Coalition, TaskAward
from repro.core.negotiation import negotiate, release_award, release_coalition
from repro.core.selection import SelectionPolicy
from repro.network.topology import Topology
from repro.resources.provider import QoSProvider
from repro.services.service import Service
from repro.sim.engine import Engine


@dataclass
class TaskOutcome:
    """Final status of one task after the operation phase.

    ``status`` is one of ``"completed"``, ``"lost"``.
    """

    task_id: str
    status: str
    node_id: Optional[str]
    finished_at: Optional[float]
    reallocations: int = 0


@dataclass
class OperationReport:
    """Result of running a coalition's operation phase to completion.

    Attributes:
        outcomes: Per-task final outcomes, keyed by task id.
        reconfigurations: Number of reconfiguration rounds triggered.
        failures_injected: Node failures that actually hit the coalition.
        dissolved_at: Time the coalition dissolved.
        dropped_awards: ``(node_id, task_id)`` pairs a node failed on
            mid-execution — recorded even when reconfiguration rescued
            the task, so reputation trackers can debit the crash itself.
    """

    outcomes: Dict[str, TaskOutcome]
    reconfigurations: int
    failures_injected: int
    dissolved_at: float
    dropped_awards: Tuple[Tuple[str, str], ...] = ()
    started_at: float = 0.0

    @property
    def makespan(self) -> float:
        """Start-to-last-completion span (0.0 when nothing completed).

        With precedence edges this is bounded below by the service's
        :meth:`~repro.services.service.Service.critical_path_length`.
        """
        finishes = [
            o.finished_at for o in self.outcomes.values()
            if o.status == "completed" and o.finished_at is not None
        ]
        if not finishes:
            return 0.0
        return max(finishes) - self.started_at

    @property
    def completed(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "completed")

    @property
    def lost(self) -> int:
        return sum(1 for o in self.outcomes.values() if o.status == "lost")

    @property
    def recovery_rate(self) -> float:
        """Fraction of failure-affected tasks that still completed."""
        affected = [o for o in self.outcomes.values() if o.reallocations > 0 or o.status == "lost"]
        if not affected:
            return 1.0
        return sum(1 for o in affected if o.status == "completed") / len(affected)


def run_operation_phase(
    coalition: Coalition,
    topology: Topology,
    providers: Mapping[str, QoSProvider],
    engine: Engine,
    failures: Sequence[Tuple[float, str]] = (),
    selection: Optional[SelectionPolicy] = None,
    allow_reconfiguration: bool = True,
) -> OperationReport:
    """Execute a formed coalition to dissolution on the engine.

    Args:
        coalition: A complete coalition in phase FORMING.
        topology: Live topology (rebuilt after each failure).
        providers: node id → provider (for reconfiguration awards).
        engine: The simulation engine; this call runs it to quiescence.
        failures: ``(time_offset, node_id)`` crash injections, offsets
            relative to operation start.
        selection: Selection policy for reconfiguration negotiations.
        allow_reconfiguration: When ``False`` orphaned tasks are simply
            lost (the no-recovery baseline of experiment E8).

    Returns:
        An :class:`OperationReport`.
    """
    service = coalition.service
    start = engine.now
    coalition.start_operation(start)

    outcomes: Dict[str, TaskOutcome] = {}
    state = {"reconfigs": 0, "hits": 0}
    dropped: List[Tuple[str, str]] = []
    running: Dict[str, TaskAward] = dict(coalition.awards)
    remaining: Dict[str, float] = {
        t.task_id: t.duration for t in service.tasks if t.task_id in running
    }
    # Tasks never awarded during formation are lost from the start.
    for task in service.tasks:
        if task.task_id not in running:
            outcomes[task.task_id] = TaskOutcome(
                task_id=task.task_id, status="lost", node_id=None, finished_at=None
            )

    completed: set = set()
    started: set = set()

    def _preds_done(task_id: str) -> bool:
        return all(p in completed for p in service.predecessors(task_id))

    def try_start(task_id: str) -> None:
        """Start a task iff it holds an award, hasn't started, and every
        precedence predecessor has completed (the paper's independent
        tasks have no predecessors and start immediately)."""
        if task_id in started or task_id not in running:
            return
        if not _preds_done(task_id):
            return
        started.add(task_id)
        generation = outcomes.get(task_id)
        gen_count = generation.reallocations if generation else 0

        def _cb(now: float, expected_gen: int = gen_count) -> None:
            award = running.get(task_id)
            if award is None:
                return  # lost/superseded while executing
            prior = outcomes.get(task_id)
            current_gen = prior.reallocations if prior else 0
            if current_gen != expected_gen:
                return  # a reallocation restarted this task
            running.pop(task_id, None)
            if award.reservation is not None and award.reservation.live:
                providers[award.node_id].release(award.reservation, now)
            completed.add(task_id)
            outcomes[task_id] = TaskOutcome(
                task_id=task_id,
                status="completed",
                node_id=award.node_id,
                finished_at=now,
                reallocations=current_gen,
            )
            for succ in service.successors(task_id):
                try_start(succ)

        engine.schedule(remaining[task_id], _cb)

    def fail_node(node_id: str) -> None:
        def _cb(now: float) -> None:
            node = topology.node(node_id)
            if not node.alive:
                return
            # fail() flips liveness (bumping the topology's cache epoch
            # via the liveness watcher); the rebuild then drops the dead
            # node's radio links from the adjacency itself.
            node.fail()
            topology.rebuild()
            orphans = [tid for tid, a in running.items() if a.node_id == node_id]
            if not orphans:
                return
            state["hits"] += 1
            dropped.extend((node_id, tid) for tid in orphans)
            engine.tracer.emit(now, "operation", "failure", node=node_id, orphans=len(orphans))
            if allow_reconfiguration:
                _reconfigure(orphans, now)
            else:
                _abandon(orphans, now)

        engine.schedule(0.0, _cb)

    def _abandon(orphans: List[str], now: float) -> None:
        for tid in orphans:
            award = running.pop(tid, None)
            if award is not None:
                # Idempotent: a lease sweep may have reclaimed it already.
                release_award(providers, award, now, missing_ok=True)
            prior = outcomes.get(tid)
            outcomes[tid] = TaskOutcome(
                task_id=tid, status="lost", node_id=None, finished_at=None,
                reallocations=(prior.reallocations if prior else 0),
            )

    def _reconfigure(orphans: List[str], now: float) -> None:
        state["reconfigs"] += 1
        coalition.reconfigurations += 1
        orphan_tasks = tuple(service.task(tid) for tid in orphans)
        for tid in orphans:
            award = running.pop(tid, None)
            if award is not None:
                # The node is dead; its manager state is moot, but keep
                # the accounting clean for post-mortem inspection.
                release_award(providers, award, now, missing_ok=True)
            prior = outcomes.get(tid)
            reallocs = (prior.reallocations if prior else 0)
            outcomes[tid] = TaskOutcome(
                task_id=tid, status="lost", node_id=None, finished_at=None,
                reallocations=reallocs,
            )
        sub_service = Service(
            name=f"{service.name}:reconfig{state['reconfigs']}",
            tasks=orphan_tasks,
            requester=service.requester,
        )
        outcome = negotiate(
            sub_service, topology, providers, selection=selection, now=now
        )
        for tid, award in outcome.coalition.awards.items():
            original_tid = tid
            running[original_tid] = award
            coalition.add_award(award)
            prior = outcomes.pop(original_tid)
            outcomes[original_tid] = TaskOutcome(
                task_id=original_tid, status="running", node_id=award.node_id,
                finished_at=None, reallocations=prior.reallocations + 1,
            )
            started.discard(original_tid)  # restart from scratch
            try_start(original_tid)

    # Start every ready task (all of them, under the paper's
    # independent-task default) …
    for tid in list(running):
        try_start(tid)
    # … and the failure injections, relative to operation start.
    for offset, node_id in failures:
        engine.schedule(max(0.0, offset), lambda now, n=node_id: fail_node(n))

    engine.run()

    # Tasks still holding awards at quiescence never became runnable —
    # their precedence predecessors were lost. Release and mark lost.
    for tid in list(running):
        award = running.pop(tid)
        # Idempotent: double release at quiescence is benign here.
        release_award(providers, award, engine.now, missing_ok=True)
        prior = outcomes.get(tid)
        outcomes[tid] = TaskOutcome(
            task_id=tid, status="lost", node_id=None, finished_at=None,
            reallocations=(prior.reallocations if prior else 0),
        )
    # Normalize any stale 'running' records (reconfigured then blocked).
    for tid, outcome in list(outcomes.items()):
        if outcome.status == "running":
            outcomes[tid] = TaskOutcome(
                task_id=tid, status="lost", node_id=outcome.node_id,
                finished_at=None, reallocations=outcome.reallocations,
            )

    coalition.dissolve(engine.now)
    release_coalition(coalition, providers, engine.now)
    return OperationReport(
        outcomes=outcomes,
        reconfigurations=state["reconfigs"],
        failures_injected=state["hits"],
        dissolved_at=engine.now,
        dropped_awards=tuple(dropped),
        started_at=start,
    )

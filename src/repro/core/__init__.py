"""The paper's primary contribution: QoS-aware coalition formation.

Layout mirrors the paper:

* :mod:`repro.core.proposal` — multi-attribute proposals (Section 4.2);
* :mod:`repro.core.reward` — the local reward of eq. 1 (Section 5);
* :mod:`repro.core.formulation` — the proposal-formulation degradation
  heuristic (Section 5);
* :mod:`repro.core.evaluation` — the distance evaluator of eqs. 2–5
  (Section 6);
* :mod:`repro.core.admissibility` — the admissible-proposal predicate
  (Section 6);
* :mod:`repro.core.selection` — winner selection with the paper's
  tie-breaking triple (Section 4.2);
* :mod:`repro.core.negotiation` — the four-step negotiation algorithm
  (Section 4.2), synchronous driver;
* :mod:`repro.core.coalition` — coalition object and life cycle
  (Section 4);
* :mod:`repro.core.operation` — operation-phase monitoring and failure
  reconfiguration (Section 4's "Operation" phase), run-to-quiescence
  driver for one coalition at a time (for the operation phase *under
  contention* — many coalitions on one shared engine — see
  :mod:`repro.sessions`);
* :mod:`repro.core.baselines` — comparison allocators (single node,
  random, centralized greedy, exhaustive optimal).
"""

from repro.core.proposal import Proposal
from repro.core.reward import (
    ConstantPenalty,
    LinearPenalty,
    PenaltyPolicy,
    QuadraticPenalty,
    local_reward,
)
from repro.core.formulation import FormulationResult, formulate
from repro.core.evaluation import ProposalEvaluator, WeightScheme
from repro.core.admissibility import is_admissible, admissibility_failures
from repro.core.reputation import ReputationTracker
from repro.core.selection import SelectionPolicy, ScoredProposal
from repro.core.negotiation import (
    NegotiationOutcome,
    TaskAward,
    negotiate,
    release_coalition,
)
from repro.core.coalition import Coalition, CoalitionPhase
from repro.core.operation import OperationReport, run_operation_phase
from repro.core import baselines

__all__ = [
    "Proposal",
    "PenaltyPolicy",
    "LinearPenalty",
    "QuadraticPenalty",
    "ConstantPenalty",
    "local_reward",
    "FormulationResult",
    "formulate",
    "ProposalEvaluator",
    "WeightScheme",
    "is_admissible",
    "admissibility_failures",
    "SelectionPolicy",
    "ScoredProposal",
    "ReputationTracker",
    "NegotiationOutcome",
    "TaskAward",
    "negotiate",
    "release_coalition",
    "Coalition",
    "CoalitionPhase",
    "OperationReport",
    "run_operation_phase",
    "baselines",
]

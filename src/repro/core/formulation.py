"""Proposal formulation: the Section 5 local QoS optimization heuristic.

The paper's algorithm (inspired by Abdelzaher et al. [1]):

1. Start by selecting user's preferred values for all QoS dimensions.
2. While the set of tasks is not schedulable:

   a. For each task ``T_i`` receiving service at level ``Q_kj < Q_kn``
      (i.e. with room left to degrade),
   b. determine the decrease in local reward resulting from degrading
      attribute ``j`` to ``j+1``,
   c. find the task ``T_m`` whose decrease is minimum and degrade it.

Our implementation considers every ``(task, attribute)`` degradation step,
skips steps whose resulting assignment would violate the spec's ``Deps``,
and breaks reward ties deterministically by (task order, attribute
importance order) so runs are reproducible. Termination is guaranteed:
each iteration strictly increases the total ladder index, which is
bounded by the sum of ladder depths.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import InfeasibleTaskError
from repro.core.reward import LinearPenalty, PenaltyPolicy, local_reward
from repro.qos.levels import QualityAssignment
from repro.services.task import Task

SchedulabilityTest = Callable[[Mapping[str, QualityAssignment]], bool]
"""Predicate: can this node serve all tasks at these levels simultaneously?"""


@dataclass
class FormulationResult:
    """Outcome of running the heuristic over a task set.

    Attributes:
        assignments: Final per-task quality assignments (task_id keyed).
        degradations: Number of single-attribute degradation steps taken.
        rewards: Final per-task local reward (eq. 1).
        feasible: Whether a schedulable configuration was found. When
            ``False`` the assignments hold the last (fully degraded)
            state examined.
    """

    assignments: Dict[str, QualityAssignment]
    degradations: int
    rewards: Dict[str, float]
    feasible: bool

    def values(self, task_id: str) -> Dict[str, object]:
        """Concrete attribute→value mapping of one task's assignment."""
        return self.assignments[task_id].values()


def _initial_assignments(
    tasks: Sequence[Task], float_steps: int
) -> Dict[str, QualityAssignment]:
    """Step 1: everyone at the user's preferred values."""
    out: Dict[str, QualityAssignment] = {}
    for task in tasks:
        ladder = task.ladder(float_steps)
        out[task.task_id] = ladder.top()
    return out


def _dependency_ok(assignment: QualityAssignment) -> bool:
    return assignment.respects_dependencies()


def formulate(
    tasks: Sequence[Task],
    is_schedulable: SchedulabilityTest,
    penalty: Optional[PenaltyPolicy] = None,
    float_steps: int = 8,
    require_dependencies: bool = True,
) -> FormulationResult:
    """Run the Section 5 heuristic over a set of tasks.

    Args:
        tasks: The tasks to serve (the paper's ``T``). Task ids must be
            unique.
        is_schedulable: The Resource-Manager-backed predicate answering
            "can all these levels be served at once?".
        penalty: eq. 1 penalty policy (default linear).
        float_steps: Interval expansion granularity for float attributes.
        require_dependencies: When ``True`` (default), degradation steps
            that would violate the spec's ``Deps`` are skipped, and
            initial assignments violating them are repaired by degrading
            the *least important* offending attribute first.

    Returns:
        A :class:`FormulationResult`; check ``feasible``.

    Raises:
        InfeasibleTaskError: If even a fully degraded, dependency-valid
            configuration cannot be found (e.g. dependencies are
            unsatisfiable on the acceptable ladders).
    """
    penalty = penalty if penalty is not None else LinearPenalty()
    ids = [t.task_id for t in tasks]
    if len(set(ids)) != len(ids):
        raise InfeasibleTaskError("duplicate task ids in formulation")

    current = _initial_assignments(tasks, float_steps)
    degradations = 0

    if require_dependencies:
        for task in tasks:
            repaired, steps = _repair_dependencies(current[task.task_id])
            if repaired is None:
                raise InfeasibleTaskError(
                    f"task {task.task_id!r}: no dependency-valid level exists "
                    f"on the acceptable ladders"
                )
            current[task.task_id] = repaired
            degradations += steps

    while not is_schedulable(current):
        step = _cheapest_degradation(tasks, current, penalty, require_dependencies)
        if step is None:
            return FormulationResult(
                assignments=current,
                degradations=degradations,
                rewards={tid: local_reward(a, penalty) for tid, a in current.items()},
                feasible=False,
            )
        task_id, new_assignment = step
        current[task_id] = new_assignment
        degradations += 1

    return FormulationResult(
        assignments=current,
        degradations=degradations,
        rewards={tid: local_reward(a, penalty) for tid, a in current.items()},
        feasible=True,
    )


def _cheapest_degradation(
    tasks: Sequence[Task],
    current: Mapping[str, QualityAssignment],
    penalty: PenaltyPolicy,
    require_dependencies: bool,
) -> Optional[Tuple[str, QualityAssignment]]:
    """Steps 2a–2c: the minimum-reward-decrease single degradation.

    Returns ``None`` when no task can degrade any further (all at
    ``Q_kn``, or every remaining step violates dependencies).
    """
    best: Optional[Tuple[float, int, int, str, QualityAssignment]] = None
    for t_index, task in enumerate(tasks):
        assignment = current[task.task_id]
        before = local_reward(assignment, penalty)
        for a_index, attr in enumerate(assignment.ladder_set.request.attribute_names):
            if not assignment.can_degrade(attr):
                continue
            candidate = assignment.degrade(attr)
            if require_dependencies and not _dependency_ok(candidate):
                continue
            decrease = before - local_reward(candidate, penalty)
            key = (decrease, t_index, a_index, task.task_id, candidate)
            if best is None or key[:3] < best[:3]:
                best = key
    if best is None:
        return None
    return best[3], best[4]


def _repair_dependencies(
    assignment: QualityAssignment,
) -> Tuple[Optional[QualityAssignment], int]:
    """Degrade (least-important attributes first) until ``Deps`` hold.

    The preferred assignment may itself violate a dependency (e.g. heavy
    codec at 30 fps). Walk degradations in reverse importance order —
    sacrificing the least important attribute first — until valid.

    Returns:
        (valid assignment or None, number of degradation steps taken).
    """
    steps = 0
    current = assignment
    # Bounded by the total ladder volume; each iteration degrades once.
    while not _dependency_ok(current):
        order = list(reversed(current.ladder_set.request.attribute_names))
        progressed = False
        for attr in order:
            if current.can_degrade(attr):
                current = current.degrade(attr)
                steps += 1
                progressed = True
                break
        if not progressed:
            return None, steps
    return current, steps

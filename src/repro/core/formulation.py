"""Proposal formulation: the Section 5 local QoS optimization heuristic.

The paper's algorithm (inspired by Abdelzaher et al. [1]):

1. Start by selecting user's preferred values for all QoS dimensions.
2. While the set of tasks is not schedulable:

   a. For each task ``T_i`` receiving service at level ``Q_kj < Q_kn``
      (i.e. with room left to degrade),
   b. determine the decrease in local reward resulting from degrading
      attribute ``j`` to ``j+1``,
   c. find the task ``T_m`` whose decrease is minimum and degrade it.

Our implementation considers every ``(task, attribute)`` degradation step,
skips steps whose resulting assignment would violate the spec's ``Deps``,
and breaks reward ties deterministically by (task order, attribute
importance order) so runs are reproducible. Termination is guaranteed:
each iteration strictly increases the total ladder index, which is
bounded by the sum of ladder depths.

Performance: each loop iteration degrades exactly one task, so the
candidate steps (and eq. 1 rewards) of every *other* task are unchanged
from the previous iteration. Moreover a task's cheapest step depends
only on ``(assignment, penalty, float_steps)`` — not on the node whose
headroom is being probed — so the memo lives on the
:class:`~repro.services.task.Task` itself (``_reward_cache`` /
``_step_cache``) and is shared by every provider answering the same
CFP: with an audience of 64 nodes, each quality level's reward and best
degradation are computed once, not 64 times. Identical arithmetic is
reused, never recomputed differently, so outcomes stay bit-identical
(asserted in ``tests/test_batch_evaluation.py``). The degrade loop is
the negotiation hot path: every provider runs it for every CFP (see
``tools/profile_negotiation.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import InfeasibleTaskError
from repro.core.reward import LinearPenalty, PenaltyPolicy, local_reward
from repro.qos.levels import QualityAssignment
from repro.services.task import Task

SchedulabilityTest = Callable[[Mapping[str, QualityAssignment]], bool]
"""Predicate: can this node serve all tasks at these levels simultaneously?"""

_DEFAULT_PENALTY = LinearPenalty()
"""Shared default policy: a stable identity keeps the per-task reward/step
memos (keyed by penalty object) warm across ``formulate`` calls."""


@dataclass
class FormulationResult:
    """Outcome of running the heuristic over a task set.

    Attributes:
        assignments: Final per-task quality assignments (task_id keyed).
        degradations: Number of single-attribute degradation steps taken.
        rewards: Final per-task local reward (eq. 1).
        feasible: Whether a schedulable configuration was found. When
            ``False`` the assignments hold the last (fully degraded)
            state examined.
    """

    assignments: Dict[str, QualityAssignment]
    degradations: int
    rewards: Dict[str, float]
    feasible: bool

    def values(self, task_id: str) -> Dict[str, object]:
        """Concrete attribute→value mapping of one task's assignment."""
        return self.assignments[task_id].values()


def _initial_assignments(
    tasks: Sequence[Task], float_steps: int
) -> Dict[str, QualityAssignment]:
    """Step 1: everyone at the user's preferred values."""
    out: Dict[str, QualityAssignment] = {}
    for task in tasks:
        ladder = task.ladder(float_steps)
        out[task.task_id] = ladder.top()
    return out


def _dependency_ok(assignment: QualityAssignment) -> bool:
    return assignment.respects_dependencies()


def formulate(
    tasks: Sequence[Task],
    is_schedulable: SchedulabilityTest,
    penalty: Optional[PenaltyPolicy] = None,
    float_steps: int = 8,
    require_dependencies: bool = True,
) -> FormulationResult:
    """Run the Section 5 heuristic over a set of tasks.

    Args:
        tasks: The tasks to serve (the paper's ``T``). Task ids must be
            unique.
        is_schedulable: The Resource-Manager-backed predicate answering
            "can all these levels be served at once?".
        penalty: eq. 1 penalty policy (default linear).
        float_steps: Interval expansion granularity for float attributes.
        require_dependencies: When ``True`` (default), degradation steps
            that would violate the spec's ``Deps`` are skipped, and
            initial assignments violating them are repaired by degrading
            the *least important* offending attribute first.

    Returns:
        A :class:`FormulationResult`; check ``feasible``.

    Raises:
        InfeasibleTaskError: If even a fully degraded, dependency-valid
            configuration cannot be found (e.g. dependencies are
            unsatisfiable on the acceptable ladders).
    """
    penalty = penalty if penalty is not None else _DEFAULT_PENALTY
    ids = [t.task_id for t in tasks]
    if len(set(ids)) != len(ids):
        raise InfeasibleTaskError("duplicate task ids in formulation")

    current = _initial_assignments(tasks, float_steps)
    degradations = 0

    if require_dependencies:
        for task in tasks:
            repaired, steps = _repair_dependencies(current[task.task_id])
            if repaired is None:
                raise InfeasibleTaskError(
                    f"task {task.task_id!r}: no dependency-valid level exists "
                    f"on the acceptable ladders"
                )
            current[task.task_id] = repaired
            degradations += steps

    # eq. 1 rewards and best steps are memoized on the Task (shared
    # across every provider probing this CFP, see the module docs); the
    # keys carry everything the cached value depends on.
    def reward_of(task: Task, assignment: QualityAssignment) -> float:
        key = (penalty, float_steps, assignment.index_key())
        value = task._reward_cache.get(key)
        if value is None:
            value = local_reward(assignment, penalty)
            task._reward_cache[key] = value
        return value

    # Per-task best candidate step for the *current* assignment; entries
    # are dropped (and lazily re-fetched) only for the degraded task.
    options: Dict[str, Optional[Tuple[float, int, QualityAssignment]]] = {}

    while not is_schedulable(current):
        chosen: Optional[Tuple[Tuple[float, int, int], str, QualityAssignment]] = None
        for t_index, task in enumerate(tasks):
            tid = task.task_id
            if tid not in options:
                skey = (
                    penalty, require_dependencies, float_steps,
                    current[tid].index_key(),
                )
                entry = task._step_cache.get(skey, _MISSING)
                if entry is _MISSING:
                    entry = _best_task_step(
                        task, current[tid], require_dependencies, reward_of
                    )
                    task._step_cache[skey] = entry
                options[tid] = entry
            entry = options[tid]
            if entry is None:
                continue
            decrease, a_index, candidate = entry
            key = (decrease, t_index, a_index)
            if chosen is None or key < chosen[0]:
                chosen = (key, tid, candidate)
        if chosen is None:
            return FormulationResult(
                assignments=current,
                degradations=degradations,
                rewards={
                    t.task_id: reward_of(t, current[t.task_id]) for t in tasks
                },
                feasible=False,
            )
        _, task_id, new_assignment = chosen
        current[task_id] = new_assignment
        options.pop(task_id)
        degradations += 1

    return FormulationResult(
        assignments=current,
        degradations=degradations,
        rewards={t.task_id: reward_of(t, current[t.task_id]) for t in tasks},
        feasible=True,
    )


_MISSING = object()
"""Step-cache sentinel: ``None`` is a valid cached value ("cannot degrade")."""


def _best_task_step(
    task: Task,
    assignment: QualityAssignment,
    require_dependencies: bool,
    reward_of: Callable[[Task, QualityAssignment], float],
) -> Optional[Tuple[float, int, QualityAssignment]]:
    """Steps 2a–2b for one task: its minimum-reward-decrease degradation.

    Returns ``(decrease, attribute index, candidate)`` — first-listed
    attribute wins exact ties, matching the pre-memoization scan order —
    or ``None`` when the task cannot degrade at all (already at ``Q_kn``,
    or every remaining step violates dependencies).
    """
    before = reward_of(task, assignment)
    best: Optional[Tuple[float, int, QualityAssignment]] = None
    for a_index, attr in enumerate(assignment.ladder_set.request.attribute_names):
        if not assignment.can_degrade(attr):
            continue
        candidate = assignment.degrade(attr)
        if require_dependencies and not _dependency_ok(candidate):
            continue
        decrease = before - reward_of(task, candidate)
        if best is None or (decrease, a_index) < best[:2]:
            best = (decrease, a_index, candidate)
    return best


def _repair_dependencies(
    assignment: QualityAssignment,
) -> Tuple[Optional[QualityAssignment], int]:
    """Degrade (least-important attributes first) until ``Deps`` hold.

    The preferred assignment may itself violate a dependency (e.g. heavy
    codec at 30 fps). Walk degradations in reverse importance order —
    sacrificing the least important attribute first — until valid.

    Returns:
        (valid assignment or None, number of degradation steps taken).
    """
    steps = 0
    current = assignment
    # Bounded by the total ladder volume; each iteration degrades once.
    while not _dependency_ok(current):
        order = list(reversed(current.ladder_set.request.attribute_names))
        progressed = False
        for attr in order:
            if current.can_degrade(attr):
                current = current.degrade(attr)
                steps += 1
                progressed = True
                break
        if not progressed:
            return None, steps
    return current, steps

"""Admissible proposals (paper Section 6).

*"A proposal is admissible if it can satisfy all the QoS dimensions
requested by the user."* We operationalize that as four checks:

1. **coverage** — the proposal offers a value for every attribute of
   every requested dimension;
2. **domain** — each offered value lies in its attribute's domain;
3. **acceptability** — each offered value appears among the request's
   acceptable values/intervals for that attribute (a value the user never
   listed cannot "satisfy" the dimension);
4. **dependencies** — the offered assignment respects the spec's ``Deps``.

:func:`admissibility_failures` reports every violated check (for traces
and tests); :func:`is_admissible` is the boolean gate used before eq. 2
scoring.
"""

from __future__ import annotations

from typing import List

from repro.core.proposal import Proposal
from repro.errors import DomainError
from repro.qos.request import ServiceRequest


def admissibility_failures(request: ServiceRequest, proposal: Proposal) -> List[str]:
    """All reasons ``proposal`` fails admissibility (empty = admissible)."""
    failures: List[str] = []
    values = {}
    for dp in request.dimensions:
        for ap in dp.attributes:
            attr_name = ap.attribute
            if attr_name not in proposal.values:
                failures.append(f"missing attribute {attr_name!r}")
                continue
            offered = proposal.values[attr_name]
            attr = request.spec.attribute(attr_name)
            try:
                offered = attr.validate(offered)
            except DomainError as exc:
                failures.append(f"domain violation on {attr_name!r}: {exc}")
                continue
            if not ap.accepts(offered):
                failures.append(
                    f"value {offered!r} for {attr_name!r} is not among the "
                    f"user's acceptable values"
                )
                continue
            values[attr_name] = offered
    for dep in request.spec.dependencies.violated_by(values):
        failures.append(f"dependency violation: {dep.name}")
    return failures


def is_admissible(request: ServiceRequest, proposal: Proposal) -> bool:
    """Whether ``proposal`` satisfies all requested QoS dimensions."""
    return not admissibility_failures(request, proposal)

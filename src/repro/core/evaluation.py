"""Proposal evaluation: eqs. 2–5 (paper Section 6).

.. math::

    \\text{distance} = \\sum_{k=1}^{n} w_k \\cdot \\text{dist}(Q_k)
    \\qquad (eq.\\ 2)

    w_k = \\frac{n - k + 1}{n} \\qquad (eq.\\ 3)

    \\text{dist}(Q_k) = \\sum_{i=1}^{attr_k} w_i \\cdot
        \\text{dif}(Prop_{ki}, Pref_{ki}) \\qquad (eq.\\ 4)

    \\text{dif} = \\begin{cases}
        \\dfrac{Prop_{ki} - Pref_{ki}}{\\max(Q_k) - \\min(Q_k)} &
            \\text{continuous} \\\\[1ex]
        \\dfrac{pos(Prop_{ki}) - pos(Pref_{ki})}{length(Q_k) - 1} &
            \\text{discrete}
        \\end{cases} \\qquad (eq.\\ 5)

Interpretation choices (documented because the paper under-specifies):

* **Attribute weights** ``w_i`` in eq. 4 reuse the positional scheme of
  eq. 3 within the dimension: ``w_i = (attr_k − i + 1)/attr_k``. The paper
  introduces the same relative-importance indexing for attributes and says
  weights encode that order; eq. 3 is the only weight formula it gives.
* **Magnitude of dif**: eq. 5 is signed as written, but a signed value
  would *reward* offers numerically below the preferred one (e.g. 5 fps
  when 10 fps is preferred ⇒ negative "distance"), contradicting the
  paper's "lowest evaluation … closer to the preferred ones". We take the
  absolute value by default; ``signed=True`` restores the literal formula
  for ablation.
* **Normalization set** ``Q_k``: eq. 5 normalizes by the attribute's value
  span/length. ``normalize_by="domain"`` (default) uses the application
  spec's domain — the quality-index reading of Lee et al. [12] that the
  paper cites; ``"request"`` uses the request's acceptable set (Section
  4.1 defines ``Q_kj`` as the requested quality choices). Both are exact
  implementations of defensible readings; E9's sibling ablation compares
  them.
"""

from __future__ import annotations

import enum
from typing import Any, Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import DomainError, NegotiationError
from repro.core.proposal import Proposal
from repro.qos.domain import ContinuousDomain, DiscreteDomain
from repro.qos.levels import build_ladder
from repro.qos.request import ServiceRequest


class WeightScheme(enum.Enum):
    """How positional importance ranks map to numeric weights."""

    LINEAR = "linear"
    """The paper's eq. 3: ``w_k = (n - k + 1) / n``."""

    UNIFORM = "uniform"
    """All ranks weigh 1 — ignores the user's importance order."""

    GEOMETRIC = "geometric"
    """``w_k = 2^-(k-1)`` — sharply front-loaded importance."""

    def weight(self, rank: int, count: int) -> float:
        """Weight of the item at 1-based ``rank`` among ``count`` items."""
        if not (1 <= rank <= count):
            raise NegotiationError(f"rank {rank} out of range 1..{count}")
        if self is WeightScheme.LINEAR:
            return (count - rank + 1) / count
        if self is WeightScheme.UNIFORM:
            return 1.0
        return 2.0 ** (-(rank - 1))


class ProposalEvaluator:
    """Scores proposals against a service request (lower = better).

    Args:
        request: The user's request (supplies preference orders and the
            preferred values ``Pref_ki``).
        weights: Rank→weight scheme for both dimensions and attributes.
        normalize_by: ``"domain"`` or ``"request"`` — the ``Q_k`` set used
            by eq. 5's denominators (see module docs).
        signed: Use eq. 5 literally (signed differences) instead of the
            default absolute magnitude.
        float_steps: Interval expansion granularity when normalizing by
            the request's acceptable set on continuous attributes.
    """

    def __init__(
        self,
        request: ServiceRequest,
        weights: WeightScheme = WeightScheme.LINEAR,
        normalize_by: str = "domain",
        signed: bool = False,
        float_steps: int = 8,
    ) -> None:
        if normalize_by not in ("domain", "request"):
            raise NegotiationError(
                f"normalize_by must be 'domain' or 'request', got {normalize_by!r}"
            )
        self.request = request
        self.weights = weights
        self.normalize_by = normalize_by
        self.signed = signed
        self.float_steps = float_steps
        # Request-ladder cache for "request" normalization of discrete
        # positions and continuous spans.
        self._ladders: Dict[str, tuple] = {}
        if normalize_by == "request":
            for name in request.attribute_names:
                attr = request.spec.attribute(name)
                self._ladders[name] = build_ladder(
                    request.preference_for(name), attr.domain.value_type, float_steps
                )

    # -- eq. 3 ------------------------------------------------------------

    def dimension_weight(self, dimension: str) -> float:
        """``w_k`` for a dimension (eq. 3 under the configured scheme)."""
        n = len(self.request.dimensions)
        k = self.request.dimension_rank(dimension)
        return self.weights.weight(k, n)

    def attribute_weight(self, dimension: str, attribute: str) -> float:
        """``w_i`` for an attribute within its dimension."""
        count = len(self.request.dimension_preference(dimension).attributes)
        i = self.request.attribute_rank(dimension, attribute)
        return self.weights.weight(i, count)

    # -- eq. 5 ------------------------------------------------------------

    def dif(self, attribute: str, proposed: Any) -> float:
        """``dif(Prop_ki, Pref_ki)`` for one attribute."""
        pref = self.request.preference_for(attribute).preferred
        attr = self.request.spec.attribute(attribute)
        domain = attr.domain

        if isinstance(domain, ContinuousDomain):
            proposed_v = float(domain.validate(proposed))
            pref_v = float(pref)
            span = self._continuous_span(attribute, domain)
            raw = (proposed_v - pref_v) / span
        else:
            assert isinstance(domain, DiscreteDomain)
            raw = self._discrete_dif(attribute, domain, proposed, pref)
        return raw if self.signed else abs(raw)

    def _continuous_span(self, attribute: str, domain: ContinuousDomain) -> float:
        if self.normalize_by == "domain":
            return domain.span()
        lo, hi = self.request.preference_for(attribute).bounds()
        width = hi - lo
        return width if width > 0 else 1.0

    def _discrete_dif(
        self, attribute: str, domain: DiscreteDomain, proposed: Any, pref: Any
    ) -> float:
        if self.normalize_by == "domain":
            span = domain.span()
            return (domain.position(proposed) - domain.position(pref)) / span
        ladder = self._ladders[attribute]
        try:
            pos_prop = ladder.index(proposed)
        except ValueError:
            raise DomainError(
                f"proposed value {proposed!r} not among acceptable values of "
                f"{attribute!r}"
            ) from None
        pos_pref = ladder.index(pref)  # always 0 by construction
        span = float(max(len(ladder) - 1, 1))
        return (pos_prop - pos_pref) / span

    # -- eq. 4 ------------------------------------------------------------

    def dimension_distance(self, dimension: str, proposal: Proposal) -> float:
        """``dist(Q_k)``: weighted attribute differences of one dimension."""
        total = 0.0
        for ap in self.request.dimension_preference(dimension).attributes:
            w_i = self.attribute_weight(dimension, ap.attribute)
            total += w_i * self.dif(ap.attribute, proposal.value(ap.attribute))
        return total

    # -- eq. 2 ------------------------------------------------------------

    def distance(self, proposal: Proposal) -> float:
        """The full eq. 2 evaluation of a proposal (lower is better)."""
        total = 0.0
        for dp in self.request.dimensions:
            w_k = self.dimension_weight(dp.dimension)
            total += w_k * self.dimension_distance(dp.dimension, proposal)
        return total

    def max_distance(self) -> float:
        """Upper bound of :meth:`distance` over in-domain proposals.

        With absolute differences every ``|dif|`` is at most 1, so the
        bound is ``Σ_k w_k · Σ_i w_i``. Used to normalize distances into
        [0, 1] for utility reporting.
        """
        total = 0.0
        for dp in self.request.dimensions:
            w_k = self.dimension_weight(dp.dimension)
            inner = sum(
                self.attribute_weight(dp.dimension, ap.attribute)
                for ap in dp.attributes
            )
            total += w_k * inner
        return total


class _CompiledAttribute:
    """One attribute's precompiled eq. 5 state (see BatchProposalEvaluator).

    ``dif_cache`` maps ``(value class, value)`` to the finished dif — the
    class is part of the key so an ``int`` and a numerically equal
    ``float`` cannot alias each other's (type-sensitive) validation.
    """

    __slots__ = (
        "name", "continuous", "domain", "pref_value", "pref_position",
        "span", "ladder", "dif_cache",
    )

    def __init__(
        self,
        name: str,
        continuous: bool,
        domain: Any,
        pref_value: float,
        pref_position: int,
        span: float,
        ladder: Tuple[Any, ...],
    ) -> None:
        self.name = name
        self.continuous = continuous
        self.domain = domain
        self.pref_value = pref_value
        self.pref_position = pref_position
        self.span = span
        self.ladder = ladder
        self.dif_cache: Dict[Tuple[type, Any], float] = {}


class BatchProposalEvaluator:
    """Vectorized eq. 2–5 scoring of a whole proposal list (lower = better).

    :class:`ProposalEvaluator` re-derives ranks, weights and eq. 5
    denominators on every ``distance`` call; in the negotiation hot path
    (one evaluation per proposal per task per service) that per-call
    recomputation dominates. This evaluator **precompiles the request
    once** — dimension weights (eq. 3), attribute weights (eq. 4),
    continuous spans, discrete position tables, and request-ladder
    indices for ``normalize_by="request"`` — and scores an entire
    proposal list in one call, with per-attribute dif values cached per
    distinct offered value and the eq. 4/eq. 2 reductions done as numpy
    array arithmetic across proposals.

    Bit-exactness contract: for every proposal the reduction performs the
    same float operations in the same order as the scalar
    :meth:`ProposalEvaluator.distance` — per dimension, ``w_i · dif``
    terms accumulate in attribute order; across dimensions, ``w_k ·
    dist(Q_k)`` terms accumulate in importance order — so
    ``distances(props)[i] == ProposalEvaluator(...).distance(props[i])``
    holds exactly (``==``, not approximately; asserted in
    ``tests/test_batch_evaluation.py``). Error behaviour matches too:
    out-of-domain or unacceptable values raise the scalar path's
    :class:`~repro.errors.DomainError`, missing attributes its
    ``KeyError``.

    Args:
        request: The user's request (same as :class:`ProposalEvaluator`).
        weights: Rank→weight scheme (eq. 3).
        normalize_by: ``"domain"`` or ``"request"`` (eq. 5 denominators).
        signed: Use eq. 5 literally instead of absolute magnitudes.
        float_steps: Request-ladder expansion granularity for
            ``normalize_by="request"`` on continuous attributes.
    """

    def __init__(
        self,
        request: ServiceRequest,
        weights: WeightScheme = WeightScheme.LINEAR,
        normalize_by: str = "domain",
        signed: bool = False,
        float_steps: int = 8,
    ) -> None:
        if normalize_by not in ("domain", "request"):
            raise NegotiationError(
                f"normalize_by must be 'domain' or 'request', got {normalize_by!r}"
            )
        self.request = request
        self.weights = weights
        self.normalize_by = normalize_by
        self.signed = signed
        self.float_steps = float_steps

        # -- compile: one pass over the request ---------------------------
        n_dims = len(request.dimensions)
        dims: List[Tuple[float, List[Tuple[_CompiledAttribute, float]]]] = []
        dim_weights: List[float] = []
        attr_weights: List[float] = []
        denominators: List[float] = []
        for k, dp in enumerate(request.dimensions, start=1):
            w_k = weights.weight(k, n_dims)
            dim_weights.append(w_k)
            count = len(dp.attributes)
            compiled_attrs: List[Tuple[_CompiledAttribute, float]] = []
            for i, ap in enumerate(dp.attributes, start=1):
                w_i = weights.weight(i, count)
                attr_weights.append(w_i)
                entry = self._compile_attribute(ap.attribute)
                denominators.append(entry.span)
                compiled_attrs.append((entry, w_i))
            dims.append((w_k, compiled_attrs))
        self._dims = dims
        # Read-only introspection mirrors of the compiled state (the
        # reduction itself walks ``_dims``); pinned against the scalar
        # evaluator's weights in tests/test_batch_evaluation.py.
        #: eq. 3 weights per dimension, importance order.
        self.dim_weights = np.asarray(dim_weights)
        #: eq. 4 weights per attribute, dimension-major importance order.
        self.attr_weights = np.asarray(attr_weights)
        #: eq. 5 denominators per attribute, dimension-major order.
        self.denominators = np.asarray(denominators)

    def _compile_attribute(self, name: str) -> _CompiledAttribute:
        pref = self.request.preference_for(name).preferred
        domain = self.request.spec.attribute(name).domain
        if isinstance(domain, ContinuousDomain):
            if self.normalize_by == "domain":
                span = domain.span()
            else:
                lo, hi = self.request.preference_for(name).bounds()
                width = hi - lo
                span = width if width > 0 else 1.0
            return _CompiledAttribute(
                name, True, domain, float(pref), 0, span, (),
            )
        assert isinstance(domain, DiscreteDomain)
        if self.normalize_by == "domain":
            return _CompiledAttribute(
                name, False, domain, 0.0, domain.position(pref),
                domain.span(), (),
            )
        ladder = build_ladder(
            self.request.preference_for(name), domain.value_type,
            self.float_steps,
        )
        return _CompiledAttribute(
            name, False, domain, 0.0, ladder.index(pref),
            float(max(len(ladder) - 1, 1)), ladder,
        )

    # -- eq. 5 (compiled) -------------------------------------------------

    def _dif(self, entry: _CompiledAttribute, proposed: Any) -> float:
        """Scalar-identical ``dif`` from the compiled tables."""
        if entry.continuous:
            raw = (float(entry.domain.validate(proposed)) - entry.pref_value) \
                / entry.span
        elif not entry.ladder:  # discrete, domain-normalized
            raw = (entry.domain.position(proposed) - entry.pref_position) \
                / entry.span
        else:  # discrete, request-normalized
            try:
                pos = entry.ladder.index(proposed)
            except ValueError:
                raise DomainError(
                    f"proposed value {proposed!r} not among acceptable values "
                    f"of {entry.name!r}"
                ) from None
            raw = (pos - entry.pref_position) / entry.span
        return raw if self.signed else abs(raw)

    # -- eq. 2 over a batch -------------------------------------------------

    def distances(self, proposals: Sequence[Proposal]) -> np.ndarray:
        """eq. 2 distances of every proposal, in input order.

        Each element equals the scalar evaluator's ``distance`` for that
        proposal exactly (see the class docs for the op-order argument).
        """
        n = len(proposals)
        total = np.zeros(n)
        if n == 0:
            return total
        column = np.empty(n)
        for w_k, compiled_attrs in self._dims:
            dim_total = np.zeros(n)
            for entry, w_i in compiled_attrs:
                cache = entry.dif_cache
                name = entry.name
                for j, proposal in enumerate(proposals):
                    value = proposal.value(name)
                    key = (value.__class__, value)
                    dif = cache.get(key)
                    if dif is None:
                        dif = self._dif(entry, value)
                        cache[key] = dif
                    column[j] = dif
                dim_total += w_i * column
            total += w_k * dim_total
        return total

    def distance(self, proposal: Proposal) -> float:
        """Single-proposal convenience wrapper around :meth:`distances`."""
        return float(self.distances((proposal,))[0])

"""Reputation tracking (extension).

The paper's related work cites trust-based coalition formation (Breban &
Vassileva [4]) and its own operation phase observes partner failures —
the natural extension is to *feed those observations back into partner
selection*. :class:`ReputationTracker` keeps a Beta-Bernoulli estimate of
each node's task-completion reliability:

    score(node) = (successes + 1) / (successes + failures + 2)

(the Laplace-smoothed posterior mean; unknown nodes score 0.5). The E12
experiment shows reputation-aware selection avoiding flaky nodes after a
few observations.

This is **off by default** — enable via
``SelectionPolicy(use_reputation=True)`` plus passing the tracker to
:func:`repro.core.negotiation.negotiate` — so the paper-faithful protocol
is unchanged unless asked for.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple


@dataclass
class _Record:
    successes: int = 0
    failures: int = 0


class ReputationTracker:
    """Beta-Bernoulli reliability estimates per node.

    Args:
        prior_successes: Pseudo-count of prior successes (default 1).
        prior_failures: Pseudo-count of prior failures (default 1).
            The defaults give unknown nodes a neutral 0.5 score.
    """

    def __init__(self, prior_successes: float = 1.0, prior_failures: float = 1.0) -> None:
        if prior_successes <= 0 or prior_failures <= 0:
            raise ValueError("priors must be positive")
        self.prior_successes = float(prior_successes)
        self.prior_failures = float(prior_failures)
        self._records: Dict[str, _Record] = {}

    def record_success(self, node_id: str) -> None:
        """A task awarded to ``node_id`` completed."""
        self._records.setdefault(node_id, _Record()).successes += 1

    def record_failure(self, node_id: str) -> None:
        """A task awarded to ``node_id`` was lost (crash, refusal, …)."""
        self._records.setdefault(node_id, _Record()).failures += 1

    def observe_operation(self, report, coalition) -> None:
        """Fold an :class:`~repro.core.operation.OperationReport` in.

        Completed tasks credit their final executor. Every ``(node,
        task)`` pair the operation phase recorded as *dropped* — the node
        failed while holding the task — debits that node, **even when
        reconfiguration rescued the task** (the crash happened; rescue
        does not launder it). Tasks lost without a recorded drop debit
        their last award holder.
        """
        dropped_pairs = set(getattr(report, "dropped_awards", ()))
        # Sorted, not raw-set, order: the per-node counters are additive
        # so any order yields the same scores, but the _records dict's
        # *insertion* order must stay seed-deterministic for replay.
        for node_id, _task_id in sorted(dropped_pairs):
            self.record_failure(node_id)
        for outcome in report.outcomes.values():
            if outcome.status == "completed" and outcome.node_id:
                self.record_success(outcome.node_id)
            elif outcome.status == "lost":
                award = coalition.awards.get(outcome.task_id)
                if award is not None and (award.node_id, outcome.task_id) not in dropped_pairs:
                    self.record_failure(award.node_id)

    def score(self, node_id: str) -> float:
        """Posterior-mean reliability in (0, 1); 0.5 for unknown nodes
        under the default neutral prior."""
        rec = self._records.get(node_id, _Record())
        a = rec.successes + self.prior_successes
        b = rec.failures + self.prior_failures
        return a / (a + b)

    def observations(self, node_id: str) -> Tuple[int, int]:
        """(successes, failures) recorded for ``node_id``."""
        rec = self._records.get(node_id, _Record())
        return rec.successes, rec.failures

    def known_nodes(self) -> Tuple[str, ...]:
        return tuple(self._records)

    def __repr__(self) -> str:
        parts = ", ".join(
            f"{n}={self.score(n):.2f}" for n in sorted(self._records)
        )
        return f"<ReputationTracker {parts}>"

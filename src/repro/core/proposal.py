"""Multi-attribute proposals.

Paper Section 4.2: *"Those nodes who are willing to belong to the future
coalition … have to submit their multi-attribute proposals, for each
service's task."* A :class:`Proposal` is one node's offer to execute one
task at a concrete quality level, together with the resource demand that
level implies on the offering node (fixed at formulation time so the award
can be admission-checked against exactly what was promised).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from types import MappingProxyType
from typing import Any, Mapping

from repro.resources.capacity import Capacity


@dataclass(frozen=True)
class Proposal:
    """One node's offer for one task.

    Attributes:
        task_id: The task this proposal targets.
        node_id: The offering node.
        values: Concrete attribute → value assignment (the offered
            quality level, one value per requested attribute).
        demand: Resource demand the offer implies on the offering node.
        formulated_at: Simulated time of formulation (staleness checks
            during the operation phase).
    """

    task_id: str
    node_id: str
    values: Mapping[str, Any]
    demand: Capacity = field(default_factory=Capacity.zero)
    formulated_at: float = 0.0

    def __post_init__(self) -> None:
        # Freeze the mapping so proposals are safely hashable/shareable.
        object.__setattr__(self, "values", MappingProxyType(dict(self.values)))

    def value(self, attribute: str) -> Any:
        """The offered value for ``attribute``."""
        try:
            return self.values[attribute]
        except KeyError:
            raise KeyError(
                f"proposal for task {self.task_id!r} from {self.node_id!r} "
                f"offers no value for attribute {attribute!r}"
            ) from None

    def covers(self, attributes: tuple[str, ...]) -> bool:
        """Whether the proposal offers a value for every listed attribute."""
        return all(a in self.values for a in attributes)

    def __repr__(self) -> str:
        vals = ", ".join(f"{k}={v!r}" for k, v in sorted(self.values.items()))
        return f"<Proposal {self.node_id!r}->{self.task_id!r} {{{vals}}}>"

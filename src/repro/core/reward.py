"""The local reward of eq. 1 (paper Section 5).

.. math::

    r = \\begin{cases}
        n & \\text{if the task is served at } Q_{k1}
            \\text{ for all dimensions} \\\\
        n - \\sum_{j=1}^{n} \\text{penalty}_j & \\text{if } Q_{kj} > Q_{k1}
        \\end{cases}

The paper leaves ``penalty`` open: *"this parameter can be defined
according to user's own criteria and its value increases with the distance
for user's preferred value."* We take ``n`` to be the number of attributes
in the request (each attribute contributes one penalty term; serving every
attribute at its preferred level yields the maximal reward ``n``), and
ship three penalty policies satisfying the paper's monotonicity rule.
``distance`` below is the attribute's degradation-ladder index (0 = the
user's preferred value).
"""

from __future__ import annotations

import abc

from repro.errors import ReproError
from repro.qos.levels import QualityAssignment


class PenaltyPolicy(abc.ABC):
    """Maps an attribute's ladder distance to a penalty value.

    Implementations must satisfy ``penalty(0) == 0`` and monotone
    non-decreasing penalties in distance (the paper's only constraints).
    """

    @abc.abstractmethod
    def penalty(self, distance: int, depth: int) -> float:
        """Penalty for an attribute ``distance`` steps below preferred.

        Args:
            distance: Ladder index of the current level (0 = preferred).
            depth: Total ladder length for the attribute (>= 1), allowing
                depth-normalized policies.
        """

    def __call__(self, distance: int, depth: int) -> float:
        if distance < 0:
            raise ReproError(f"negative ladder distance: {distance}")
        if depth < 1:
            raise ReproError(f"ladder depth must be >= 1: {depth}")
        if distance >= depth:
            raise ReproError(f"distance {distance} beyond ladder depth {depth}")
        return self.penalty(distance, depth)


class LinearPenalty(PenaltyPolicy):
    """``penalty = scale * distance / (depth - 1)`` — the default.

    Normalizing by ladder depth makes one full degradation of any
    attribute cost the same (``scale``) regardless of how many levels the
    user listed, so attribute importance comes only from the request
    order, not from ladder granularity.
    """

    def __init__(self, scale: float = 1.0) -> None:
        if scale < 0:
            raise ReproError(f"penalty scale must be >= 0: {scale}")
        self.scale = scale

    def penalty(self, distance: int, depth: int) -> float:
        if depth == 1:
            return 0.0
        return self.scale * distance / (depth - 1)


class QuadraticPenalty(PenaltyPolicy):
    """``penalty = scale * (distance / (depth-1))**2`` — gentle near the
    preferred value, steep near the acceptability floor."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale < 0:
            raise ReproError(f"penalty scale must be >= 0: {scale}")
        self.scale = scale

    def penalty(self, distance: int, depth: int) -> float:
        if depth == 1:
            return 0.0
        frac = distance / (depth - 1)
        return self.scale * frac * frac


class ConstantPenalty(PenaltyPolicy):
    """``penalty = scale`` for any degradation at all — models users who
    only care whether they get their first choice."""

    def __init__(self, scale: float = 1.0) -> None:
        if scale < 0:
            raise ReproError(f"penalty scale must be >= 0: {scale}")
        self.scale = scale

    def penalty(self, distance: int, depth: int) -> float:
        return self.scale if distance > 0 else 0.0


def local_reward(
    assignment: QualityAssignment, policy: PenaltyPolicy | None = None
) -> float:
    """Evaluate eq. 1 for a quality assignment.

    Args:
        assignment: The quality level under evaluation.
        policy: Penalty policy; defaults to :class:`LinearPenalty`.

    Returns:
        ``n`` (the attribute count) when the assignment is at the top
        level everywhere, otherwise ``n - Σ penalty_j``.
    """
    policy = policy if policy is not None else LinearPenalty()
    ladders = assignment.ladder_set.ladders
    n = len(ladders)
    if assignment.at_top:
        return float(n)
    total_penalty = 0.0
    for attr in ladders:
        distance = assignment.index(attr)
        depth = len(ladders[attr])
        total_penalty += policy(distance, depth)
    return float(n) - total_penalty

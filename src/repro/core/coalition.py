"""Coalitions and their life cycle (paper Section 4).

*"A coalition's life cycle can be decomposed in three phases: Formation …
Operation … Dissolution."* A :class:`Coalition` is the temporary group of
nodes awarded a service's tasks, tracked through those phases with the
transitions enforced.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.core.proposal import Proposal
from repro.errors import CoalitionStateError
from repro.resources.capacity import Capacity
from repro.resources.reservation import Reservation
from repro.services.service import Service


class CoalitionPhase(enum.Enum):
    """Life-cycle phases of a coalition."""

    FORMING = "forming"
    OPERATING = "operating"
    DISSOLVED = "dissolved"


@dataclass
class TaskAward:
    """The outcome of allocating one task.

    Attributes:
        task_id: The allocated task.
        node_id: The winning node.
        proposal: The winning proposal (quality level actually promised).
        distance: eq. 2 evaluation of the winning proposal.
        comm_cost: Communication cost requester ↔ winner at award time.
        demand: Admitted resource demand on the winner.
        reservation: The Resource-Manager receipt (``None`` for dry runs).
    """

    task_id: str
    node_id: str
    proposal: Proposal
    distance: float
    comm_cost: float
    demand: Capacity
    reservation: Optional[Reservation] = None


class Coalition:
    """A temporary group of nodes executing one service.

    Args:
        service: The service this coalition executes.
        formed_at: Simulated time of formation.
    """

    def __init__(self, service: Service, formed_at: float = 0.0) -> None:
        self.service = service
        self.formed_at = formed_at
        self.phase = CoalitionPhase.FORMING
        self.awards: Dict[str, TaskAward] = {}
        self.dissolved_at: Optional[float] = None
        self.reconfigurations = 0

    # -- formation ----------------------------------------------------------

    def add_award(self, award: TaskAward) -> None:
        """Record a task award during formation (or reconfiguration)."""
        if self.phase is CoalitionPhase.DISSOLVED:
            raise CoalitionStateError("cannot award tasks to a dissolved coalition")
        self.awards[award.task_id] = award

    def start_operation(self, now: float = 0.0) -> None:
        """Transition FORMING → OPERATING."""
        if self.phase is not CoalitionPhase.FORMING:
            raise CoalitionStateError(
                f"cannot start operation from phase {self.phase.value}"
            )
        self.phase = CoalitionPhase.OPERATING

    def dissolve(self, now: float = 0.0) -> None:
        """Terminate the coalition (any phase except already dissolved)."""
        if self.phase is CoalitionPhase.DISSOLVED:
            raise CoalitionStateError("coalition already dissolved")
        self.phase = CoalitionPhase.DISSOLVED
        self.dissolved_at = now

    # -- queries ------------------------------------------------------------

    @property
    def members(self) -> frozenset[str]:
        """Distinct node ids currently holding awards."""
        return frozenset(a.node_id for a in self.awards.values())

    @property
    def size(self) -> int:
        """The paper's third criterion: number of distinct members."""
        return len(self.members)

    @property
    def complete(self) -> bool:
        """Whether every task of the service has an award."""
        return set(self.awards) == {t.task_id for t in self.service.tasks}

    def tasks_on(self, node_id: str) -> Tuple[str, ...]:
        """Task ids currently awarded to ``node_id``."""
        return tuple(tid for tid, a in self.awards.items() if a.node_id == node_id)

    def total_distance(self) -> float:
        """Sum of award distances — the coalition's evaluation value."""
        return sum(a.distance for a in self.awards.values())

    def total_comm_cost(self) -> float:
        """Sum of award communication costs."""
        return sum(a.comm_cost for a in self.awards.values())

    def __repr__(self) -> str:
        return (
            f"<Coalition service={self.service.name!r} phase={self.phase.value} "
            f"members={sorted(self.members)} awards={len(self.awards)}>"
        )

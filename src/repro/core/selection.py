"""Winner selection with the paper's tie-breaking triple (Section 4.2).

*"The coalition is formed based on the set of proposals that presents:
lowest evaluation value … lowest communication cost … lowest number of
distinct nodes in coalition."*

:class:`SelectionPolicy` ranks the admissible proposals for one task
lexicographically by

1. eq. 2 distance (quantized to ``distance_resolution`` so that
   numerically indistinguishable offers fall through to the secondary
   criteria — with exact floats the tie-breaks would almost never fire);
2. communication cost between requester and offering node;
3. whether the node would be a *new* coalition member (preferring reuse
   keeps the member count low — the greedy per-task analogue of the
   paper's coalition-level "lowest number of distinct nodes");
4. node id (pure determinism, no semantic content).

Each criterion can be disabled for the E6 ablation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence, Set, Tuple

from repro.core.proposal import Proposal
from repro.errors import NoAdmissibleProposalError
from repro.sim.rng import derive_seed

CommCost = Callable[[str], float]
"""Maps an offering node id to the cost of talking to the requester."""


@dataclass(frozen=True)
class ScoredProposal:
    """A proposal with its selection-relevant scores attached.

    Attributes:
        proposal: The underlying offer.
        distance: eq. 2 evaluation (lower = better).
        comm_cost: Communication cost to the requester (lower = better).
        new_member: Whether awarding it would grow the coalition.
        reputation: Reliability estimate of the offering node in [0, 1]
            (extension; 0.5 = unknown, higher = better).
        battery_fraction: Remaining battery of the offering node in
            [0, 1] (extension; higher = better).
    """

    proposal: Proposal
    distance: float
    comm_cost: float
    new_member: bool
    reputation: float = 0.5
    battery_fraction: float = 1.0


class SelectionPolicy:
    """Configurable lexicographic winner selection.

    Two extension criteria, both **off by default** (the paper's triple):

    * ``use_reputation`` — after distance, prefer nodes with a higher
      task-completion reliability estimate (quantized to
      ``reputation_resolution`` so that small estimate noise does not
      override the operational tie-breaks);
    * ``use_battery`` — after reputation but before the operational
      tie-breaks, prefer nodes with more remaining battery (quantized to
      ``battery_resolution`` buckets; within a bucket comm cost still
      decides). Placing it above comm cost is deliberate: its purpose is
      *network lifetime*, which a cheaper link cannot buy back once the
      nearest helper's battery is gone.

    Args:
        use_comm_cost: Apply tie-break (2). Disabled in ablations.
        use_coalition_size: Apply tie-break (3). Disabled in ablations.
        use_reputation: Apply the reliability extension criterion.
        use_battery: Apply the battery extension criterion.
        distance_resolution: Quantum for distance comparison; distances
            within the same quantum are considered tied.
        reputation_resolution: Quantum for reputation comparison.
        battery_resolution: Quantum for battery comparison.
    """

    def __init__(
        self,
        use_comm_cost: bool = True,
        use_coalition_size: bool = True,
        use_reputation: bool = False,
        use_battery: bool = False,
        distance_resolution: float = 1e-6,
        reputation_resolution: float = 0.1,
        battery_resolution: float = 0.2,
    ) -> None:
        if distance_resolution <= 0:
            raise ValueError("distance_resolution must be positive")
        if reputation_resolution <= 0 or battery_resolution <= 0:
            raise ValueError("resolutions must be positive")
        self.use_comm_cost = use_comm_cost
        self.use_coalition_size = use_coalition_size
        self.use_reputation = use_reputation
        self.use_battery = use_battery
        self.distance_resolution = distance_resolution
        self.reputation_resolution = reputation_resolution
        self.battery_resolution = battery_resolution

    def _key(self, scored: ScoredProposal) -> Tuple:
        quantized = round(scored.distance / self.distance_resolution)
        key: list = [quantized]
        if self.use_reputation:
            # Negated (higher reliability first), quantized.
            key.append(-round(scored.reputation / self.reputation_resolution))
        if self.use_battery:
            key.append(-round(scored.battery_fraction / self.battery_resolution))
        if self.use_comm_cost:
            key.append(scored.comm_cost)
        if self.use_coalition_size:
            key.append(1 if scored.new_member else 0)
        # Final determinism tie-break: a stable hash of (task, node) rather
        # than the bare node id — a lexicographic node-id break would
        # systematically concentrate all residual ties on one node, which
        # is an artifact, not a policy.
        key.append(derive_seed(0, f"{scored.proposal.task_id}:{scored.proposal.node_id}"))
        key.append(scored.proposal.node_id)
        return tuple(key)

    def rank(self, scored: Sequence[ScoredProposal]) -> Tuple[ScoredProposal, ...]:
        """All proposals, best first."""
        return tuple(sorted(scored, key=self._key))

    def select(self, scored: Sequence[ScoredProposal]) -> ScoredProposal:
        """The winning proposal.

        Raises:
            NoAdmissibleProposalError: If ``scored`` is empty.
        """
        if not scored:
            raise NoAdmissibleProposalError("no admissible proposals to select from")
        return min(scored, key=self._key)

    @staticmethod
    def score(
        proposals: Iterable[Proposal],
        distance: Optional[Callable[[Proposal], float]],
        comm_cost: CommCost,
        members: Set[str],
        reputation: Optional[Callable[[str], float]] = None,
        battery: Optional[Callable[[str], float]] = None,
        distances: Optional[Sequence[float]] = None,
    ) -> Tuple[ScoredProposal, ...]:
        """Attach scores to raw proposals.

        Args:
            proposals: Admissible proposals for one task.
            distance: eq. 2 evaluator, proposal → distance. May be
                ``None`` when ``distances`` is given.
            comm_cost: node id → communication cost to the requester.
            members: Node ids already in the forming coalition.
            reputation: Optional node id → reliability estimate.
            battery: Optional node id → remaining battery fraction.
            distances: Precomputed eq. 2 distances aligned with
                ``proposals`` (the batched-evaluation path); overrides
                ``distance``.
        """
        if distances is None:
            if distance is None:
                raise ValueError("score needs either distance or distances")
            proposals = tuple(proposals)
            distances = [distance(p) for p in proposals]
        return tuple(
            ScoredProposal(
                proposal=p,
                distance=d,
                comm_cost=comm_cost(p.node_id),
                new_member=p.node_id not in members,
                reputation=reputation(p.node_id) if reputation else 0.5,
                battery_fraction=battery(p.node_id) if battery else 1.0,
            )
            for p, d in zip(proposals, distances)
        )

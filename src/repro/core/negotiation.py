"""The Section 4.2 negotiation algorithm — synchronous driver.

The paper's four steps:

1. *The Negotiation Organizer broadcasts the description of each service,
   as well as user's preferences on each QoS dimension.*
2. *Each QoS Provider contacts its Resource Managers and replies with a
   multi-attribute proposal.*
3. *The Negotiation Organizer, using a multi-attribute function, evaluates
   all received proposals and selects the one that offers the best
   utility.*
4. *Relevant data for task execution is sent to winning node.*

This module runs those steps directly over
:class:`~repro.resources.provider.QoSProvider` objects and a
:class:`~repro.network.topology.Topology` — no message passing, no
latency. It is the reference implementation used by baselines, unit tests
and algorithm-level benchmarks; :mod:`repro.agents` runs the identical
logic as an asynchronous message protocol over the simulated network.

Award semantics: providers formulate per-task proposals *independently*
(a provider does not know which subset of tasks it will win), so the
organizer re-checks admission at award time; if the winner can no longer
serve the level it proposed (its headroom went to an earlier award), the
organizer falls through to the next-ranked proposal. This mirrors the
reservation-at-award behaviour the paper assigns to Resource Managers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.admissibility import is_admissible
from repro.core.coalition import Coalition, TaskAward
from repro.core.evaluation import (
    BatchProposalEvaluator,
    ProposalEvaluator,
    WeightScheme,
)
from repro.core.formulation import formulate
from repro.core.proposal import Proposal
from repro.core.reputation import ReputationTracker
from repro.core.reward import PenaltyPolicy
from repro.core.selection import ScoredProposal, SelectionPolicy
from repro.errors import (
    CapacityExceededError,
    NotConnectedError,
    UnknownReservationError,
)
from repro.network.topology import Topology
from repro.qos.levels import QualityAssignment
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.provider import QoSProvider
from repro.services.service import Service
from repro.services.task import Task

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector

#: Feature switch for the batched step-3 evaluation path. The scalar
#: per-proposal path is kept so tests can assert both paths produce
#: bit-identical outcomes (``tests/test_batch_evaluation.py``); leave
#: this ``True`` outside of those A/B comparisons.
USE_BATCH_EVALUATION = True


@dataclass
class NegotiationOutcome:
    """Everything a negotiation run produced.

    Attributes:
        service: The negotiated service.
        coalition: The formed coalition (phase FORMING; empty on failure).
        unallocated: Task ids no admissible+servable proposal covered.
        candidates: Node ids that were asked for proposals.
        proposals_received: Count of proposals received across tasks.
        message_count: Radio messages the run would have cost: 1 CFP copy
            per provider-backed candidate other than the requester, 1
            reply per remote node that proposes (a PROPOSE bundles all of
            that node's per-task proposals), and 1 per award to a remote
            node — matching what the agent-based organizer sends (its
            own node answers the CFP and receives awards locally,
            costing no radio traffic).
        award_retries: Award-handshake retransmissions spent recovering
            lost AWARD/ACK rounds (0 without fault injection).
        retry_delay: Total simulated backoff delay those retries cost.
    """

    service: Service
    coalition: Coalition
    unallocated: List[str] = field(default_factory=list)
    candidates: Tuple[str, ...] = ()
    proposals_received: int = 0
    message_count: int = 0
    award_retries: int = 0
    retry_delay: float = 0.0

    @property
    def success(self) -> bool:
        """Whether every task was allocated."""
        return not self.unallocated and self.coalition.complete

    def award(self, task_id: str) -> TaskAward:
        return self.coalition.awards[task_id]

    def total_distance(self) -> float:
        return self.coalition.total_distance()

    def summary(self) -> str:
        """One-line human-readable result."""
        state = "OK" if self.success else f"FAILED({len(self.unallocated)} unallocated)"
        return (
            f"{self.service.name}: {state} members={sorted(self.coalition.members)} "
            f"distance={self.total_distance():.4f} msgs={self.message_count}"
        )


class _Ledger:
    """Scratch admission accounting for dry runs (``commit=False``).

    Tracks hypothetical demand per node on top of the real Resource
    Manager state without mutating it, including the battery constraint
    on the ENERGY component.
    """

    def __init__(self, providers: Mapping[str, QoSProvider]) -> None:
        self.providers = providers
        self.extra: Dict[str, Capacity] = {}

    def can_admit(self, node_id: str, demand: Capacity) -> bool:
        provider = self.providers[node_id]
        if not provider.node.alive or not provider.node.willing:
            return False
        booked = self.extra.get(node_id, Capacity.zero())
        if not provider.headroom().covers(booked + demand):
            return False
        energy = (booked + demand).get(ResourceKind.ENERGY)
        return energy <= provider.node.battery

    def admit(self, node_id: str, demand: Capacity) -> None:
        self.extra[node_id] = self.extra.get(node_id, Capacity.zero()) + demand


def candidate_nodes(
    service: Service, topology: Topology, max_hops: int = 1
) -> Tuple[str, ...]:
    """Step 1's audience: the requester plus its live k-hop neighborhood.

    The paper's coalitions are opportunistic — formed from whoever is in
    range when the request happens ("may include the node that starts the
    negotiation"). ``max_hops=1`` is the paper's one-hop broadcast;
    larger values model the relayed-CFP extension (the fixed-cluster
    scope of §1).

    A dead requester cannot broadcast a CFP at all, so its audience is
    empty — previously its (possibly stale) neighborhood was still
    polled, letting a crashed node negotiate.
    """
    requester = service.requester
    if not topology.node(requester).alive:
        return ()
    ids = [requester]
    if max_hops <= 1:
        ids.extend(topology.neighbors(requester))
    else:
        ids.extend(topology.khop_neighbors(requester, max_hops))
    return tuple(dict.fromkeys(ids))  # preserve order, dedupe


def collect_proposals(
    service: Service,
    audience: Sequence[str],
    providers: Mapping[str, QoSProvider],
    penalty: Optional[PenaltyPolicy] = None,
    now: float = 0.0,
    float_steps: int = 8,
) -> Tuple[Dict[str, List[Proposal]], int]:
    """Steps 1–2 bookkeeping shared by :func:`negotiate` and the
    baselines: gather every audience node's proposals per task and count
    the radio messages so far — one CFP copy per provider-backed
    candidate other than the requester, one bundled reply per responding
    remote node (the single home of those counting rules; step 4's
    remote-award count lives in :func:`remote_award_messages`).
    """
    requester = service.requester
    messages = sum(
        1 for nid in audience if nid != requester and nid in providers
    )
    by_task: Dict[str, List[Proposal]] = {t.task_id: [] for t in service.tasks}
    for node_id in audience:
        provider = providers.get(node_id)
        if provider is None:
            continue
        node_proposals = formulate_node_proposals(
            provider, service.tasks, penalty=penalty, now=now,
            float_steps=float_steps,
        )
        if node_id != requester and node_proposals:
            messages += 1
        for proposal in node_proposals:
            by_task[proposal.task_id].append(proposal)
    return by_task, messages


def remote_award_messages(coalition: Coalition, requester: str) -> int:
    """Step 4's radio messages: one per award to a remote node (an award
    to the requester itself is local and costs nothing)."""
    return sum(
        1 for award in coalition.awards.values() if award.node_id != requester
    )


def formulate_node_proposals(
    provider: QoSProvider,
    tasks: Sequence[Task],
    penalty: Optional[PenaltyPolicy] = None,
    now: float = 0.0,
    float_steps: int = 8,
) -> List[Proposal]:
    """Step 2 for one node: formulate proposals for the servable tasks.

    Faithful to Section 5, the node first runs the heuristic over *the
    set of tasks* jointly ("while the set of tasks is not schedulable
    ..."), so its proposals are guaranteed co-awardable on its current
    headroom. When even the fully degraded set does not fit, the node
    falls back to independent per-task formulation — it can still
    usefully offer the subset of tasks it could carry individually, and
    the organizer's award-time admission check resolves conflicts.
    Tasks the node cannot serve even alone produce no proposal (the node
    stays silent for them).
    """
    proposals: List[Proposal] = []
    if not provider.node.alive or not provider.node.willing:
        return proposals

    by_id = {task.task_id: task for task in tasks}

    def joint_servable(assignments: Mapping[str, QualityAssignment]) -> bool:
        total: Optional[Capacity] = None
        for tid, assignment in assignments.items():
            demand = by_id[tid].demand_at(assignment.values())
            total = demand if total is None else total + demand
        return True if total is None else provider.can_serve(total)

    joint = formulate(
        list(tasks), joint_servable, penalty=penalty, float_steps=float_steps
    )
    if joint.feasible:
        for task in tasks:
            values = joint.values(task.task_id)
            proposals.append(
                Proposal(
                    task_id=task.task_id,
                    node_id=provider.node.node_id,
                    values=values,
                    demand=task.demand_at(values),
                    formulated_at=now,
                )
            )
        return proposals

    for task in tasks:

        def solo_servable(assignments: Mapping[str, QualityAssignment]) -> bool:
            demand = task.demand_at(assignments[task.task_id].values())
            return provider.can_serve(demand)

        result = formulate(
            [task], solo_servable, penalty=penalty, float_steps=float_steps
        )
        if not result.feasible:
            continue
        values = result.values(task.task_id)
        proposals.append(
            Proposal(
                task_id=task.task_id,
                node_id=provider.node.node_id,
                values=values,
                demand=task.demand_at(values),
                formulated_at=now,
            )
        )
    return proposals


def score_admissible(
    request,
    admissible: Sequence[Proposal],
    weights: WeightScheme,
    evaluator_cache: Dict[int, BatchProposalEvaluator],
    comm_cost,
    members: set,
    reputation=None,
    battery=None,
    evaluator_kwargs: Optional[dict] = None,
    use_batch: Optional[bool] = None,
) -> Tuple[ScoredProposal, ...]:
    """Step-3 scoring of one task's admissible proposals (both drivers).

    With :data:`USE_BATCH_EVALUATION` on (the default), distances come
    from a :class:`BatchProposalEvaluator` compiled once per request —
    ``evaluator_cache`` is keyed by request identity and owned by the
    caller (one negotiation run / one organizer session), so tasks
    sharing a request reuse the compiled arrays. With the switch off the
    scalar evaluator reproduces the pre-batching path; both paths score
    bit-identically (``tests/test_batch_evaluation.py``).

    ``use_batch`` lets a caller pin the path for its whole run —
    :func:`negotiate` snapshots the switch once at entry, so one
    negotiation never mixes paths even if the global flips mid-run
    (the construction-time-snapshot semantics of :mod:`repro.features`).
    ``None`` reads the global per call.
    """
    kwargs = evaluator_kwargs or {}
    if USE_BATCH_EVALUATION if use_batch is None else use_batch:
        evaluator = evaluator_cache.get(id(request))
        if evaluator is None:
            evaluator = BatchProposalEvaluator(request, weights=weights, **kwargs)
            evaluator_cache[id(request)] = evaluator
        return SelectionPolicy.score(
            admissible, None, comm_cost, members,
            reputation=reputation, battery=battery,
            distances=[float(d) for d in evaluator.distances(admissible)],
        )
    scalar = ProposalEvaluator(request, weights=weights, **kwargs)
    return SelectionPolicy.score(
        admissible, scalar.distance, comm_cost, members,
        reputation=reputation, battery=battery,
    )


def negotiate(
    service: Service,
    topology: Topology,
    providers: Mapping[str, QoSProvider],
    selection: Optional[SelectionPolicy] = None,
    weights: WeightScheme = WeightScheme.LINEAR,
    penalty: Optional[PenaltyPolicy] = None,
    commit: bool = True,
    now: float = 0.0,
    candidates: Optional[Sequence[str]] = None,
    evaluator_options: Optional[dict] = None,
    max_hops: int = 1,
    reputation: Optional["ReputationTracker"] = None,
    faults: Optional["FaultInjector"] = None,
) -> NegotiationOutcome:
    """Run the full Section 4.2 negotiation for one service.

    Args:
        service: The service (tasks + requester) to allocate.
        topology: Current network topology (audience + comm costs).
        providers: node id → QoS Provider for every node in the topology.
        selection: Winner-selection policy (default: the paper's triple).
        weights: eq. 3 weight scheme for the evaluator.
        penalty: eq. 1 penalty policy for formulation.
        commit: When ``True`` award-time admission reserves real
            resources; when ``False`` a scratch ledger is used and no
            state is mutated (dry run for baselines/what-ifs).
        now: Simulated time stamped on proposals/reservations.
        candidates: Override the audience (default:
            :func:`candidate_nodes`).
        evaluator_options: Extra kwargs for
            :class:`~repro.core.evaluation.ProposalEvaluator`
            (``normalize_by``, ``signed``, ``float_steps``).
        max_hops: CFP reach in hops. 1 = the paper's one-hop broadcast;
            > 1 enables the relayed extension, with communication costs
            computed over the best multi-hop route.
        reputation: Optional reliability tracker; its scores reach the
            selection policy (only used when the policy enables
            ``use_reputation``).
        faults: Optional fault injector
            (:class:`~repro.faults.injector.FaultInjector`): PROPOSE
            bundles may be dropped or arrive stale, and committed remote
            awards run the hardened AWARD/ACK handshake — lost rounds
            retry with bounded deterministic exponential backoff before
            the organizer falls through down the ranking. ``None`` (the
            default) is the exact pre-fault path, draw for draw.

    Returns:
        A :class:`NegotiationOutcome`; the coalition is left in phase
        FORMING so callers can start the operation phase.
    """
    selection = selection if selection is not None else SelectionPolicy()
    evaluator_options = dict(evaluator_options or {})
    coalition = Coalition(service, formed_at=now)
    # Snapshot the feature switch once: one run scores every task down
    # the same path, even if the global is flipped mid-negotiation.
    use_batch = USE_BATCH_EVALUATION
    audience = (
        tuple(candidates) if candidates is not None
        else candidate_nodes(service, topology, max_hops)
    )
    # Steps 1–2: broadcast the CFP and collect per-task proposals; the
    # helper also tallies the radio messages those steps cost.
    by_task, messages = collect_proposals(
        service, audience, providers, penalty=penalty, now=now,
        float_steps=evaluator_options.get("float_steps", 8),
    )
    stale: frozenset = frozenset()
    if faults is not None:
        # Link/agent faults hit the PROPOSE leg: dropped bundles vanish
        # before evaluation, stale ones are scored but refused at award.
        by_task, stale = faults.filter_proposals(
            service.requester, audience, by_task
        )
    proposals_received = sum(len(v) for v in by_task.values())
    ledger = _Ledger(providers) if not commit else None

    # The synchronous driver never advances the engine, so the topology
    # cannot change mid-run: memoize the per-node cost on top of the
    # topology's own per-epoch route cache (scoring consults it once per
    # proposal, and popular providers propose for every task).
    comm_cache: Dict[str, float] = {}

    def comm_cost(node_id: str) -> float:
        cached = comm_cache.get(node_id)
        if cached is not None:
            return cached
        try:
            if max_hops > 1:
                cost = topology.multihop_cost(service.requester, node_id)
            else:
                cost = topology.communication_cost(service.requester, node_id)
        except NotConnectedError:
            # No direct link: the offer is unreachable, not erroneous.
            # Anything else (unknown node ids, ...) is a caller bug and
            # propagates instead of masquerading as "unreachable".
            cost = float("inf")
        comm_cache[node_id] = cost
        return cost

    # Step 3 + 4: evaluate, select, award with admission re-check.
    # Evaluators compile per *request*, not per task: tasks sharing a
    # request (common in generated workloads) reuse one compiled set of
    # weights/denominators and its dif caches.
    evaluators: Dict[int, BatchProposalEvaluator] = {}
    evaluator_kwargs = {
        k: v for k, v in evaluator_options.items() if k != "float_steps"
    }
    unallocated: List[str] = []
    handshake_stats = {"retries": 0, "delay": 0.0}
    for task in service.tasks:
        admissible = [
            p for p in by_task[task.task_id] if is_admissible(task.request, p)
        ]

        def battery(node_id: str) -> float:
            provider = providers.get(node_id)
            return provider.node.battery_fraction if provider else 0.0

        scored = score_admissible(
            task.request, admissible, weights, evaluators, comm_cost,
            set(coalition.members),
            reputation=reputation.score if reputation is not None else None,
            battery=battery,
            evaluator_kwargs=evaluator_kwargs,
            use_batch=use_batch,
        )
        ranked = selection.rank(scored)
        awarded = _try_award(
            task, ranked, coalition, providers, ledger, commit, now,
            faults=faults, stale=stale, stats=handshake_stats,
        )
        if awarded is None:
            unallocated.append(task.task_id)
        else:
            coalition.add_award(awarded)

    messages += remote_award_messages(coalition, service.requester)
    return NegotiationOutcome(
        service=service,
        coalition=coalition,
        unallocated=unallocated,
        candidates=audience,
        proposals_received=proposals_received,
        message_count=messages,
        award_retries=handshake_stats["retries"],
        retry_delay=handshake_stats["delay"],
    )


def _try_award(
    task: Task,
    ranked: Sequence[ScoredProposal],
    coalition: Coalition,
    providers: Mapping[str, QoSProvider],
    ledger: Optional[_Ledger],
    commit: bool,
    now: float,
    faults: Optional["FaultInjector"] = None,
    stale: frozenset = frozenset(),
    stats: Optional[Dict[str, float]] = None,
) -> Optional[TaskAward]:
    """Walk the ranked proposals; first one that passes admission wins.

    Under fault injection, nodes whose PROPOSE arrived stale are refused
    here (their offer no longer reflects their state), and a committed
    remote award must survive the AWARD/ACK handshake — an unacked award
    releases its reservation (idempotently: the winner may have crashed
    and released already) and the walk falls through down the ranking.
    """
    holder = f"{coalition.service.name}:{task.task_id}"
    requester = coalition.service.requester
    for scored in ranked:
        proposal = scored.proposal
        if proposal.node_id in stale:
            continue
        provider = providers.get(proposal.node_id)
        if provider is None:
            continue
        if commit:
            try:
                reservation, demand = provider.reserve_for(
                    holder, task.demand_model, proposal.values, now
                )
            except CapacityExceededError:
                continue
            if faults is not None and proposal.node_id != requester:
                acked, retries, delay = faults.award_handshake(
                    requester, proposal.node_id
                )
                if stats is not None:
                    stats["retries"] += retries
                    stats["delay"] += delay
                if not acked:
                    release_award(
                        providers,
                        TaskAward(
                            task_id=task.task_id,
                            node_id=proposal.node_id,
                            proposal=proposal,
                            distance=scored.distance,
                            comm_cost=scored.comm_cost,
                            demand=demand,
                            reservation=reservation,
                        ),
                        now,
                        missing_ok=True,
                    )
                    continue
            return TaskAward(
                task_id=task.task_id,
                node_id=proposal.node_id,
                proposal=proposal,
                distance=scored.distance,
                comm_cost=scored.comm_cost,
                demand=demand,
                reservation=reservation,
            )
        else:
            assert ledger is not None
            demand = task.demand_at(proposal.values)
            if not ledger.can_admit(proposal.node_id, demand):
                continue
            ledger.admit(proposal.node_id, demand)
            return TaskAward(
                task_id=task.task_id,
                node_id=proposal.node_id,
                proposal=proposal,
                distance=scored.distance,
                comm_cost=scored.comm_cost,
                demand=demand,
                reservation=None,
            )
    return None


def release_award(
    providers: Mapping[str, QoSProvider],
    award: TaskAward,
    now: float = 0.0,
    missing_ok: bool = False,
) -> bool:
    """Release one award's reservation; returns whether anything was
    released.

    With ``missing_ok`` the release is *idempotent*: a reservation the
    manager no longer knows (already released by a crash sweep, a
    duplicate RELEASE after a lost ack, ...) is absorbed instead of
    raising :class:`~repro.errors.UnknownReservationError`. Managers
    raise that error from a single guarded lookup before mutating, so
    absorbing it cannot mask partial state changes; genuinely malformed
    releases (``ValueError``) still propagate either way.
    """
    if award.reservation is None or not award.reservation.live:
        return False
    try:
        providers[award.node_id].release(award.reservation, now)
    except UnknownReservationError:
        if not missing_ok:
            raise
        return False
    return True


def release_coalition(
    coalition: Coalition,
    providers: Mapping[str, QoSProvider],
    now: float = 0.0,
    missing_ok: bool = False,
) -> int:
    """Release every live reservation held by a coalition's awards.

    Returns the number of reservations released. Used at dissolution and
    by tests to restore manager state. ``missing_ok`` makes each
    per-award release idempotent (see :func:`release_award`); dissolution
    keeps the strict default so double-releases stay loud.
    """
    released = 0
    for award in coalition.awards.values():
        if release_award(providers, award, now, missing_ok=missing_ok):
            released += 1
    return released

"""Baseline allocators for the evaluation suite.

The paper names no quantitative comparators, so the experiments use the
standard ladder every allocation paper is judged against:

* :func:`single_node` — no cooperation: the requester serves everything
  itself (the paper's "by default, the responsibility associated with
  data processing is on the mobile device");
* :func:`random_admissible` — cooperation without intelligence: each task
  goes to a uniformly random candidate whose offer is admissible and
  servable;
* :func:`greedy_centralized` — an omniscient greedy allocator minimizing
  eq. 2 distance only (no comm-cost / coalition-size tie-breaks);
* :func:`exhaustive_optimal` — exact minimum-total-distance allocation by
  enumeration (small instances only), the quality upper bound.

All return :class:`~repro.core.negotiation.NegotiationOutcome` and run as
dry runs by default (``commit=False``) so they can be compared on the same
initial state without mutating it.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.core.admissibility import is_admissible
from repro.core.coalition import Coalition, TaskAward
from repro.core.evaluation import ProposalEvaluator
from repro.core.formulation import formulate
from repro.core.negotiation import (
    NegotiationOutcome,
    _Ledger,
    candidate_nodes,
    collect_proposals,
    formulate_node_proposals,
    negotiate,
    remote_award_messages,
)
from repro.core.proposal import Proposal
from repro.core.selection import SelectionPolicy
from repro.errors import NotConnectedError
from repro.network.topology import Topology
from repro.qos.levels import QualityAssignment
from repro.resources.provider import QoSProvider
from repro.services.service import Service


def single_node(
    service: Service,
    topology: Topology,
    providers: Mapping[str, QoSProvider],
    now: float = 0.0,
) -> NegotiationOutcome:
    """Allocate every task to the requester alone (no coalition).

    The requester formulates all tasks *jointly* (they must be
    schedulable together on the one device — exactly the Section 5 "while
    the set of tasks is not schedulable" loop).
    """
    requester = service.requester
    provider = providers[requester]
    coalition = Coalition(service, formed_at=now)
    unallocated: List[str] = [t.task_id for t in service.tasks]

    def jointly_servable(assignments: Mapping[str, QualityAssignment]) -> bool:
        total = None
        for task in service.tasks:
            demand = task.demand_at(assignments[task.task_id].values())
            total = demand if total is None else total + demand
        return provider.can_serve(total) if total is not None else True

    if provider.node.alive:
        result = formulate(list(service.tasks), jointly_servable)
        if result.feasible:
            unallocated = []
            for task in service.tasks:
                values = result.values(task.task_id)
                evaluator = ProposalEvaluator(task.request)
                proposal = Proposal(
                    task_id=task.task_id, node_id=requester,
                    values=values, demand=task.demand_at(values),
                    formulated_at=now,
                )
                coalition.add_award(
                    TaskAward(
                        task_id=task.task_id,
                        node_id=requester,
                        proposal=proposal,
                        distance=evaluator.distance(proposal),
                        comm_cost=0.0,
                        demand=proposal.demand,
                        reservation=None,
                    )
                )

    return NegotiationOutcome(
        service=service,
        coalition=coalition,
        unallocated=unallocated,
        candidates=(requester,),
        proposals_received=len(service.tasks) - len(unallocated),
        message_count=0,
    )


def random_admissible(
    service: Service,
    topology: Topology,
    providers: Mapping[str, QoSProvider],
    rng: np.random.Generator,
    now: float = 0.0,
) -> NegotiationOutcome:
    """Each task to a uniformly random admissible+servable offer."""
    audience = candidate_nodes(service, topology)
    requester = service.requester
    coalition = Coalition(service, formed_at=now)
    ledger = _Ledger(providers)
    unallocated: List[str] = []

    # Same radio-message bookkeeping as negotiate (shared helpers), so
    # baseline-vs-protocol message comparisons stay apples to apples.
    by_task, messages = collect_proposals(service, audience, providers, now=now)
    proposals_received = sum(len(v) for v in by_task.values())

    for task in service.tasks:
        evaluator = ProposalEvaluator(task.request)
        pool = [p for p in by_task[task.task_id] if is_admissible(task.request, p)]
        # Random order, then first that fits — uniform among feasible.
        order = list(rng.permutation(len(pool)))
        awarded = False
        for idx in order:
            proposal = pool[int(idx)]
            demand = task.demand_at(proposal.values)
            if not ledger.can_admit(proposal.node_id, demand):
                continue
            ledger.admit(proposal.node_id, demand)
            try:
                comm = topology.communication_cost(service.requester, proposal.node_id)
            except NotConnectedError:
                comm = float("inf")  # out of range, not an error
            coalition.add_award(
                TaskAward(
                    task_id=task.task_id,
                    node_id=proposal.node_id,
                    proposal=proposal,
                    distance=evaluator.distance(proposal),
                    comm_cost=comm,
                    demand=demand,
                    reservation=None,
                )
            )
            awarded = True
            break
        if not awarded:
            unallocated.append(task.task_id)

    messages += remote_award_messages(coalition, requester)
    return NegotiationOutcome(
        service=service,
        coalition=coalition,
        unallocated=unallocated,
        candidates=audience,
        proposals_received=proposals_received,
        message_count=messages,
    )


def greedy_centralized(
    service: Service,
    topology: Topology,
    providers: Mapping[str, QoSProvider],
    now: float = 0.0,
) -> NegotiationOutcome:
    """Omniscient greedy: pure distance minimization per task.

    Equivalent to the paper's protocol with both tie-breaks disabled and
    no messaging — isolates the value of the distance function itself.
    """
    outcome = negotiate(
        service,
        topology,
        providers,
        selection=SelectionPolicy(use_comm_cost=False, use_coalition_size=False),
        commit=False,
        now=now,
    )
    outcome.message_count = 0  # centralized: no protocol traffic
    return outcome


def exhaustive_optimal(
    service: Service,
    topology: Topology,
    providers: Mapping[str, QoSProvider],
    now: float = 0.0,
    max_combinations: int = 200_000,
) -> Optional[NegotiationOutcome]:
    """Exact minimum-total-distance allocation by enumeration.

    Enumerates every task→node mapping over the candidate set, using each
    node's per-task formulated proposal, and keeps the feasible mapping
    with (lowest total distance, fewest members, lowest comm cost) — the
    paper's triple applied globally instead of greedily.

    Returns ``None`` if the instance exceeds ``max_combinations``
    (exponential blow-up guard).
    """
    audience = candidate_nodes(service, topology)
    n_tasks = len(service.tasks)
    if len(audience) ** n_tasks > max_combinations:
        return None

    # Pre-formulate every (node, task) proposal once.
    offers: Dict[Tuple[str, str], Proposal] = {}
    proposals_received = 0
    for node_id in audience:
        provider = providers.get(node_id)
        if provider is None:
            continue
        for proposal in formulate_node_proposals(provider, service.tasks, now=now):
            if is_admissible(service.task(proposal.task_id).request, proposal):
                offers[(node_id, proposal.task_id)] = proposal
                proposals_received += 1

    evaluators = {
        t.task_id: ProposalEvaluator(t.request) for t in service.tasks
    }

    best_key: Optional[Tuple[float, int, float]] = None
    best_awards: Optional[List[TaskAward]] = None

    for mapping in itertools.product(audience, repeat=n_tasks):
        ledger = _Ledger(providers)
        awards: List[TaskAward] = []
        feasible = True
        for task, node_id in zip(service.tasks, mapping):
            proposal = offers.get((node_id, task.task_id))
            if proposal is None:
                feasible = False
                break
            demand = task.demand_at(proposal.values)
            if not ledger.can_admit(node_id, demand):
                feasible = False
                break
            ledger.admit(node_id, demand)
            try:
                comm = topology.communication_cost(service.requester, node_id)
            except NotConnectedError:
                feasible = False  # out of range, not an error
                break
            awards.append(
                TaskAward(
                    task_id=task.task_id, node_id=node_id, proposal=proposal,
                    distance=evaluators[task.task_id].distance(proposal),
                    comm_cost=comm, demand=demand, reservation=None,
                )
            )
        if not feasible:
            continue
        total_distance = sum(a.distance for a in awards)
        members = len({a.node_id for a in awards})
        total_comm = sum(a.comm_cost for a in awards)
        key = (total_distance, members, total_comm)
        if best_key is None or key < best_key:
            best_key = key
            best_awards = awards

    coalition = Coalition(service, formed_at=now)
    unallocated = [t.task_id for t in service.tasks]
    if best_awards is not None:
        unallocated = []
        for award in best_awards:
            coalition.add_award(award)

    return NegotiationOutcome(
        service=service,
        coalition=coalition,
        unallocated=unallocated,
        candidates=audience,
        proposals_received=proposals_received,
        message_count=0,
    )

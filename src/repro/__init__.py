"""repro — Dynamic QoS-Aware Coalition Formation (Nogueira & Pinho, IPPS 2005).

A faithful, simulation-backed reproduction of the paper's QoS-aware
coalition-formation system for wireless ad-hoc networks:

* **QoS model** (:mod:`repro.qos`): the ``{Dim, Attr, Val, DAr, AVr,
  Deps}`` requirements scheme and preference-ordered service requests;
* **Resources** (:mod:`repro.resources`): nodes, Resource Managers with
  admission control, QoS Providers, QoS→resource demand mapping;
* **Network** (:mod:`repro.network`): mobility, disc-radio connectivity,
  lossy messaging over a deterministic discrete-event engine
  (:mod:`repro.sim`);
* **Coalition formation** (:mod:`repro.core`): proposal formulation
  (Section 5 heuristic, eq. 1 reward), proposal evaluation (eqs. 2–5),
  the Section 4.2 negotiation protocol, coalition life cycle, and
  baseline allocators;
* **Agents** (:mod:`repro.agents`): the protocol as asynchronous message
  passing;
* **Sessions** (:mod:`repro.sessions`): the streaming-session life
  cycle (NEGOTIATING → OPERATING → DEGRADED → RENEGOTIATING →
  CLOSED/DROPPED) and the :class:`~repro.sessions.SessionDriver` that
  runs admitted coalitions' operation phases *inside* contention;
* **Workloads** (:mod:`repro.workloads`): service families, arrival
  processes and the multi-requester contention runner
  (:func:`~repro.workloads.run_contention`);
* **Experiments** (:mod:`repro.experiments`): the E1–E20 evaluation
  suite.

Determinism contract: every run is a pure function of its seed — all
randomness flows through named :class:`~repro.sim.rng.RngRegistry`
streams, and event ordering is the engine's deterministic
(time, priority, seq) order, so serial and parallel experiment
executions are bit-identical.

Quickstart::

    from repro import (
        AgentSystem, Node, NodeClass, workload,
    )

    nodes = [Node("me", NodeClass.PHONE)] + [
        Node(f"n{i}", NodeClass.LAPTOP) for i in range(3)
    ]
    system = AgentSystem(nodes, seed=42)
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    print(outcome.summary())
"""

from repro.qos import (
    Attribute,
    AttributePreference,
    ContinuousDomain,
    Dependency,
    DependencySet,
    DimensionPreference,
    DiscreteDomain,
    DomainKind,
    QoSDimension,
    QoSSpec,
    ServiceRequest,
    ValueInterval,
    ValueType,
    catalog,
)
from repro.resources import (
    Capacity,
    Node,
    NodeClass,
    QoSProvider,
    ResourceKind,
    ResourceManager,
)
from repro.network import DiscRadio, RandomWaypoint, StaticPlacement, Topology
from repro.services import Service, Task, workload
from repro.core import (
    Coalition,
    CoalitionPhase,
    NegotiationOutcome,
    Proposal,
    ProposalEvaluator,
    SelectionPolicy,
    WeightScheme,
    baselines,
    formulate,
    is_admissible,
    local_reward,
    negotiate,
    run_operation_phase,
)
from repro.agents import AgentSystem, OrganizerAgent, ProviderAgent
from repro.core.operation import OperationReport
from repro.metrics import outcome_utility
from repro.sessions import Session, SessionDriver, SessionPolicy, SessionState
from repro.shard import (
    ShardedCluster,
    ShardedDriver,
    ShardGrid,
    run_sharded_contention,
)
from repro.sim import Engine
from repro.workloads import ContentionConfig, ContentionResult, run_contention

__version__ = "1.0.0"

__all__ = [
    # qos
    "ValueType",
    "DomainKind",
    "ContinuousDomain",
    "DiscreteDomain",
    "Attribute",
    "QoSDimension",
    "QoSSpec",
    "Dependency",
    "DependencySet",
    "ServiceRequest",
    "DimensionPreference",
    "AttributePreference",
    "ValueInterval",
    "catalog",
    # resources
    "ResourceKind",
    "Capacity",
    "ResourceManager",
    "Node",
    "NodeClass",
    "QoSProvider",
    # network
    "DiscRadio",
    "Topology",
    "RandomWaypoint",
    "StaticPlacement",
    # services
    "Task",
    "Service",
    "workload",
    # core
    "Proposal",
    "ProposalEvaluator",
    "WeightScheme",
    "SelectionPolicy",
    "formulate",
    "local_reward",
    "is_admissible",
    "negotiate",
    "NegotiationOutcome",
    "Coalition",
    "CoalitionPhase",
    "run_operation_phase",
    "baselines",
    # agents
    "AgentSystem",
    "OrganizerAgent",
    "ProviderAgent",
    # sessions / workloads
    "OperationReport",
    "Session",
    "SessionDriver",
    "SessionPolicy",
    "SessionState",
    "ContentionConfig",
    "ContentionResult",
    "run_contention",
    # shard
    "ShardGrid",
    "ShardedCluster",
    "ShardedDriver",
    "run_sharded_contention",
    # metrics / sim
    "outcome_utility",
    "Engine",
    "__version__",
]

"""The session driver: streaming operation *inside* contention.

:func:`repro.core.operation.run_operation_phase` executes one coalition
to completion by running the engine to quiescence — which is exactly why
it cannot model contention: it owns the event loop, so nothing else can
arrive while a coalition streams. :class:`SessionDriver` inverts that
control. It is a purely event-driven organizer pool sharing one
:class:`~repro.sim.engine.Engine`: every admitted coalition's operation
phase — keepalive ticks, upkeep drain, crash detection, in-place
renegotiation — interleaves with later requesters' admission
negotiations on the same event queue, so renegotiations compete for the
*currently contended* cluster rather than an idle one.

Protocol shape (request → response, then a keepalive loop, mirroring
streaming-control protocols): a crash is *detected* at the victim
session's next keepalive tick, not at the instant of death. Between
death and detection the orphaned tasks stream nothing (their utility
contribution is zero from detection; the admission reservation on the
dead node is released at detection).

Determinism: the driver draws no randomness of its own. All RNG
(arrival times, crash draws, waypoints) is consumed by the *caller*
from named :class:`~repro.sim.rng.RngRegistry` streams before or
between events; the driver's behaviour is a pure function of the event
schedule, and event ordering is the engine's (time, priority, seq)
order — fixed by submission order. Same seed, same trace.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Sequence

from repro.core.negotiation import negotiate, release_award, release_coalition
from repro.core.reputation import ReputationTracker
from repro.core.selection import SelectionPolicy
from repro.metrics.utility import allocation_utility
from repro.network.mobility import MobilityModel
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.resources.provider import QoSProvider
from repro.services.service import Service
from repro.sessions.lifecycle import Session, SessionState
from repro.sessions.policy import SessionPolicy
from repro.sim.engine import Engine, EventHandle

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.faults.injector import FaultInjector


class SessionDriver:
    """Runs streaming sessions' whole life cycle on a shared engine.

    Args:
        topology: Live cluster topology (rebuilt after churn).
        providers: node id → QoS provider for every node.
        policy: The :class:`~repro.sessions.policy.SessionPolicy` knobs.
        engine: The shared event engine (a fresh ``Engine()`` if omitted).
        selection: Winner-selection policy for admission *and* in-place
            renegotiation (both run the same Section 4.2 protocol).
        reputation: Optional tracker; mid-session provider failures are
            debited against the dead member and clean closes credited to
            every surviving member, so later negotiations see churn.
    """

    def __init__(
        self,
        topology: Topology,
        providers: Mapping[str, QoSProvider],
        policy: SessionPolicy,
        engine: Optional[Engine] = None,
        selection: Optional[SelectionPolicy] = None,
        reputation: Optional[ReputationTracker] = None,
    ) -> None:
        self.topology = topology
        self.providers = providers
        self.policy = policy
        self.engine = engine if engine is not None else Engine()
        self.selection = selection
        self.reputation = reputation
        self.sessions: List[Session] = []
        self.faults: Optional["FaultInjector"] = None
        """Fault context for negotiation rounds (set by
        :meth:`repro.faults.injector.FaultInjector.install`; ``None`` is
        the exact pre-fault path)."""
        self._active = 0
        self._pending = 0
        self._close_handles: Dict[int, EventHandle] = {}

    # -- submission --------------------------------------------------------

    def submit(
        self,
        service: Service,
        arrival: float,
        duration: Optional[float] = None,
    ) -> Session:
        """Enqueue one streaming request at ``arrival``.

        ``duration`` defaults to the service's longest task duration
        scaled by ``policy.duration_scale`` — the stream outlives its
        slowest component by the configured factor.
        """
        if duration is None:
            nominal = max(t.duration for t in service.tasks)
            duration = nominal * self.policy.duration_scale
        session = Session(service, arrival, duration)
        self.sessions.append(session)
        self._pending += 1
        self.engine.schedule_at(
            arrival, lambda now, s=session: self._admit(s, now)
        )
        return session

    def run(self) -> List[Session]:
        """Run the engine to quiescence; every submitted session ends in
        CLOSED or DROPPED. Returns the sessions in submission order."""
        self.engine.run()
        return self.sessions

    @property
    def active(self) -> int:
        """Sessions currently holding reservations."""
        return self._active

    # -- churn injection ---------------------------------------------------

    def schedule_failure(self, time: float, node_id: str) -> None:
        """Crash ``node_id`` at ``time`` (detected at each victim
        session's next keepalive tick)."""

        def _crash(now: float) -> None:
            node = self.topology.node(node_id)
            if not node.alive:
                return
            node.fail()
            self.topology.rebuild()
            self.engine.tracer.emit(now, "session", "crash", node=node_id)

        self.engine.schedule_at(time, _crash)

    def attach_mobility(
        self,
        mobility: MobilityModel,
        nodes: Sequence[Node],
        tick: Optional[float] = None,
    ) -> None:
        """Advance ``mobility`` every ``tick`` seconds (default: the
        policy's ``mobility_tick``), rebuilding the topology each step.
        Ticking stops once no session is pending or active, so mobility
        never keeps an otherwise-quiescent run alive."""
        dt = self.policy.mobility_tick if tick is None else tick

        def _tick(now: float) -> None:
            if self._pending == 0 and self._active == 0:
                return
            mobility.advance(nodes, dt)
            self.topology.rebuild()
            self.engine.schedule(dt, _tick)

        self.engine.schedule(dt, _tick)

    # -- life cycle --------------------------------------------------------

    def _admit(self, session: Session, now: float) -> None:
        self._pending -= 1
        session.concurrent = self._active
        outcome = negotiate(
            session.service,
            self.topology,
            self.providers,
            selection=self.selection,
            commit=True,
            now=now,
            reputation=self.reputation,
            faults=self.faults,
        )
        session.admission = outcome
        session.award_retries += outcome.award_retries
        session.retry_delay += outcome.retry_delay
        if not outcome.success:
            # Admission refused: release the partial reservations an
            # incomplete negotiation left behind and reject the session.
            release_coalition(outcome.coalition, self.providers, now)
            session.transition(SessionState.DROPPED, now)
            return
        session.coalition = outcome.coalition
        session.coalition.start_operation(now)
        session.live_tasks = set(outcome.coalition.awards)
        self._active += 1
        session.transition(SessionState.OPERATING, now)
        session.set_utility(now, self._utility_of(session))
        self._close_handles[id(session)] = self.engine.schedule(
            session.duration, lambda t, s=session: self._close(s, t)
        )
        self.engine.schedule(
            self.policy.keepalive, lambda t, s=session: self._keepalive(s, t)
        )

    def _keepalive(self, session: Session, now: float) -> None:
        if session.state not in (SessionState.OPERATING, SessionState.DEGRADED):
            return  # closed or dropped since the last tick
        coalition = session.coalition
        assert coalition is not None
        requester = self.topology.node(session.service.requester)
        if not requester.alive:
            # Nobody is left to consume the stream — and a dead
            # requester cannot organize a renegotiation (its CFP
            # audience is empty), so the session drops outright.
            self._drop(session, now)
            return
        if self.policy.drain > 0:
            # Streaming upkeep: each held award draws keepalive-worth of
            # energy from its serving node, on top of the admission
            # reservation. Sorted task order keeps the draw sequence —
            # and therefore any drain-induced deaths — deterministic.
            upkeep = self.policy.drain * self.policy.keepalive
            died = False
            for task_id in sorted(session.live_tasks):
                node = self.topology.node(coalition.awards[task_id].node_id)
                if not node.alive:
                    continue
                node.consume_energy(upkeep)
                died = died or not node.alive
            if died:
                self.topology.rebuild()
        orphans = sorted(
            task_id
            for task_id in session.live_tasks
            if not self.topology.node(coalition.awards[task_id].node_id).alive
        )
        if orphans:
            for task_id in orphans:
                award = coalition.awards[task_id]
                # Idempotent: the dead node's ledger may have reclaimed it.
                release_award(self.providers, award, now, missing_ok=True)
                if self.reputation is not None:
                    self.reputation.record_failure(award.node_id)
                session.live_tasks.discard(task_id)
                session.suspended.pop(task_id, None)
            self.engine.tracer.emit(
                now, "session", "degraded",
                session=session.service.name, orphans=len(orphans),
            )
            if session.state is SessionState.OPERATING:
                session.transition(SessionState.DEGRADED, now)
            session.set_utility(now, self._utility_of(session))
            self._renegotiate(session, now)
        if self.policy.partition_grace > 0 and session.state in (
            SessionState.OPERATING, SessionState.DEGRADED
        ):
            self._probe_partitions(session, now)
        if session.state in (SessionState.OPERATING, SessionState.DEGRADED):
            self.engine.schedule(
                self.policy.keepalive, lambda t, s=session: self._keepalive(s, t)
            )

    def _probe_partitions(self, session: Session, now: float) -> None:
        """The reachability pass of one keepalive tick (partition grace).

        An *alive but unreachable* member (a network partition severed
        every route from the requester) is **suspended**, not lost: its
        task stops streaming (utility 0), the session degrades, and the
        member has ``policy.partition_grace`` seconds to become
        reachable again. A healed partition lifts the suspension — and
        once every task is live and unsuspended the session recovers in
        place (``DEGRADED → OPERATING``, same awards, no renegotiation).
        A suspension outliving the grace window is treated like a crash:
        award released, reputation debited, task renegotiated.
        """
        coalition = session.coalition
        assert coalition is not None
        requester = session.service.requester
        expired: List[str] = []
        for task_id in sorted(session.live_tasks):
            member = coalition.awards[task_id].node_id
            if member == requester:
                continue
            if self.topology.shortest_route(requester, member) is None:
                since = session.suspended.setdefault(task_id, now)
                if now - since > self.policy.partition_grace:
                    expired.append(task_id)
            elif task_id in session.suspended:
                del session.suspended[task_id]
        if expired:
            for task_id in expired:
                award = coalition.awards[task_id]
                release_award(self.providers, award, now, missing_ok=True)
                if self.reputation is not None:
                    self.reputation.record_failure(award.node_id)
                session.live_tasks.discard(task_id)
                session.suspended.pop(task_id, None)
            self.engine.tracer.emit(
                now, "session", "partition-expired",
                session=session.service.name, tasks=len(expired),
            )
        if session.suspended or expired:
            if session.state is SessionState.OPERATING:
                session.transition(SessionState.DEGRADED, now)
                self.engine.tracer.emit(
                    now, "session", "degraded",
                    session=session.service.name,
                    suspended=len(session.suspended),
                )
            session.set_utility(now, self._utility_of(session))
        if expired:
            self._renegotiate(session, now)
            return
        if (
            not session.suspended
            and session.state is SessionState.DEGRADED
            and len(session.live_tasks) == len(session.service.tasks)
        ):
            session.transition(SessionState.OPERATING, now)
            session.set_utility(now, self._utility_of(session))
            self.engine.tracer.emit(
                now, "session", "recovered", session=session.service.name
            )

    def _renegotiate(self, session: Session, now: float) -> None:
        """Re-run the Section 4.2 protocol in place for every task the
        session has lost, against the cluster as it stands *right now*
        (other sessions' reservations included)."""
        session.transition(SessionState.RENEGOTIATING, now)
        service = session.service
        missing = sorted(
            t.task_id for t in service.tasks if t.task_id not in session.live_tasks
        )
        attempt = session.renegotiation_attempts + 1
        sub_service = Service(
            name=f"{service.name}:reneg{attempt}",
            tasks=tuple(service.task(tid) for tid in missing),
            requester=service.requester,
        )
        outcome = negotiate(
            sub_service,
            self.topology,
            self.providers,
            selection=self.selection,
            commit=True,
            now=now,
            reputation=self.reputation,
            faults=self.faults,
        )
        session.award_retries += outcome.award_retries
        session.retry_delay += outcome.retry_delay
        coalition = session.coalition
        assert coalition is not None
        if outcome.success:
            for task_id, award in outcome.coalition.awards.items():
                coalition.add_award(award)
                session.live_tasks.add(task_id)
            coalition.reconfigurations += 1
            session.renegotiations += 1
            # A session with members still suspended behind a partition
            # is not whole: it lands back in DEGRADED and recovers only
            # when the partition heals (or the grace expires).
            if session.suspended:
                session.transition(SessionState.DEGRADED, now)
            else:
                session.transition(SessionState.OPERATING, now)
            session.set_utility(now, self._utility_of(session))
            self.engine.tracer.emit(
                now, "session", "renegotiated",
                session=service.name, tasks=len(missing),
            )
            return
        # Failed attempt: drop the partial reservations it grabbed and
        # spend one unit of the bounded retry budget.
        release_coalition(outcome.coalition, self.providers, now)
        session.failed_renegotiations += 1
        if session.failed_renegotiations >= self.policy.max_renegotiations:
            self._drop(session, now)
        else:
            session.transition(SessionState.DEGRADED, now)

    def _drop(self, session: Session, now: float) -> None:
        """Tear a mid-stream session down: release everything it holds,
        dissolve its coalition, and land in DROPPED."""
        coalition = session.coalition
        if coalition is not None:
            release_coalition(coalition, self.providers, now)
            coalition.dissolve(now)
            self._active -= 1
        handle = self._close_handles.pop(id(session), None)
        if handle is not None:
            handle.cancel()
        # Keep the machine strict: OPERATING reaches DROPPED only
        # through DEGRADED (a drop is always a degradation first).
        if session.state is SessionState.OPERATING:
            session.transition(SessionState.DEGRADED, now)
        session.transition(SessionState.DROPPED, now)
        self.engine.tracer.emit(
            now, "session", "dropped", session=session.service.name
        )

    def _close(self, session: Session, now: float) -> None:
        """The planned streaming span ended: a clean close."""
        if session.state not in (SessionState.OPERATING, SessionState.DEGRADED):
            return  # already dropped
        coalition = session.coalition
        assert coalition is not None
        if self.reputation is not None:
            for task_id in sorted(session.live_tasks):
                self.reputation.record_success(coalition.awards[task_id].node_id)
        release_coalition(coalition, self.providers, now)
        coalition.dissolve(now)
        self._active -= 1
        self._close_handles.pop(id(session), None)
        session.transition(SessionState.CLOSED, now)

    # -- metrics -----------------------------------------------------------

    def _utility_of(self, session: Session) -> float:
        """Instantaneous utility: mean per-task normalized utility of
        the awards the session currently holds (lost tasks count 0) —
        the same eq. 2 normalization as admission utility, so an
        unchurned session's sustained utility equals its admission
        utility."""
        coalition = session.coalition
        if coalition is None:
            return 0.0
        tasks = session.service.tasks
        if not tasks:
            return 0.0
        total = 0.0
        for task in tasks:
            # Suspended tasks (alive member, severed route) stream
            # nothing while the partition lasts.
            if (
                task.task_id in session.live_tasks
                and task.task_id not in session.suspended
            ):
                award = coalition.awards[task.task_id]
                total += allocation_utility(task.request, award.distance)
        return total / len(tasks)

"""The session-lifecycle policy: one frozen knob block for streaming runs.

:class:`SessionPolicy` collects every knob of the streaming-session
lifecycle — whether the operation phase runs in-session at all, the
keepalive cadence, the renegotiation budget, and the churn drivers
(crash hazard, streaming energy drain, mobility) — into one frozen,
purely-primitive dataclass. It rides inside
:class:`~repro.workloads.contention.ContentionConfig` and
:class:`~repro.workloads.registry.ScenarioSpec`, so a scenario's whole
lifecycle behaviour is declarative, printable and ``replace``-sweepable
like every other spec field.

All fields are plain floats/ints/strings: a policy never holds RNG
state, so a run configured by one stays a pure function of its seed
(the determinism contract of :mod:`repro.experiments`).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

#: Mobility models a streaming run can drive its cluster with.
MOBILITY_MODES = ("static", "waypoint")


@dataclass(frozen=True)
class SessionPolicy:
    """Lifecycle knobs for streaming sessions under contention.

    Attributes:
        operate: Run each admitted coalition's operation phase *inside*
            the contention run (the :class:`~repro.sessions.SessionDriver`
            path). ``False`` keeps the PR-3 admission-only semantics:
            sessions just hold their reservations for their duration.
        keepalive: Seconds between a session's keepalive ticks — the
            cadence at which member liveness is checked, streaming
            upkeep energy is drawn, and degradation is detected (a crash
            is noticed at the *next* keepalive, not instantly, matching
            the request/keepalive/renegotiate protocol shape).
        max_renegotiations: Failed in-place renegotiation attempts a
            session tolerates; reaching the bound drops the session.
            Successful renegotiations do not consume the budget.
        failure_rate: Per-helper-node crash hazard (1/s). Each
            non-requester node draws one exponential time-to-crash from
            the run's ``failures`` stream; draws landing inside the
            arrival horizon are scheduled as crashes. ``0`` disables
            crash churn (and consumes no draws).
        drain: Streaming upkeep in joules per second per held award,
            drawn from the serving node's battery at every keepalive
            tick *on top of* the energy reserved at admission. Drained
            batteries kill nodes mid-session. ``0`` disables.
        duration_scale: Multiplier on the nominal session duration
            (the service's longest task duration) — the E20 sweep's
            session-length axis.
        mobility: ``"static"`` (nodes stay put) or ``"waypoint"``
            (random-waypoint motion with a topology rebuild per tick).
        mobility_speed: Maximum waypoint speed (m/s).
        mobility_tick: Seconds between mobility ticks.
        partition_grace: Seconds a session tolerates an *alive but
            unreachable* member (a network partition) before treating it
            as lost. While any member is within grace the session is
            ``DEGRADED``, not dropped; if the partition heals in time it
            recovers in place (``DEGRADED → OPERATING``, same awards, no
            renegotiation). ``0`` (the default) disables the grace
            window entirely — reachability is never probed, preserving
            the pre-fault keepalive path draw for draw.
    """

    operate: bool = False
    keepalive: float = 5.0
    max_renegotiations: int = 2
    failure_rate: float = 0.0
    drain: float = 0.0
    duration_scale: float = 1.0
    mobility: str = "static"
    mobility_speed: float = 4.0
    mobility_tick: float = 1.0
    partition_grace: float = 0.0

    def __post_init__(self) -> None:
        if self.keepalive <= 0:
            raise ValueError(f"keepalive must be positive, got {self.keepalive}")
        if self.max_renegotiations < 0:
            raise ValueError(
                f"max_renegotiations must be >= 0, got {self.max_renegotiations}"
            )
        if self.failure_rate < 0:
            raise ValueError(f"failure_rate must be >= 0, got {self.failure_rate}")
        if self.drain < 0:
            raise ValueError(f"drain must be >= 0, got {self.drain}")
        if self.duration_scale <= 0:
            raise ValueError(
                f"duration_scale must be positive, got {self.duration_scale}"
            )
        if self.mobility not in MOBILITY_MODES:
            raise ValueError(
                f"unknown mobility mode {self.mobility!r}; "
                f"available: {', '.join(MOBILITY_MODES)}"
            )
        if self.mobility_speed < 0:
            raise ValueError(
                f"mobility_speed must be >= 0, got {self.mobility_speed}"
            )
        if self.mobility_tick <= 0:
            raise ValueError(
                f"mobility_tick must be positive, got {self.mobility_tick}"
            )
        if self.partition_grace < 0:
            raise ValueError(
                f"partition_grace must be >= 0, got {self.partition_grace}"
            )

    def replace(self, **changes) -> "SessionPolicy":
        """A copy with fields changed (sweep helper, like
        :meth:`~repro.workloads.registry.ScenarioSpec.replace`)."""
        return dataclasses.replace(self, **changes)

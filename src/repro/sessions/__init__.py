"""Streaming-session life cycle: operation under contention.

The paper's life cycle — formation, operation, dissolution — is modelled
end to end here for *streaming* workloads: a :class:`Session` tracks one
request through the NEGOTIATING → OPERATING → DEGRADED → RENEGOTIATING
→ CLOSED/DROPPED machine, a :class:`SessionPolicy` declares the
lifecycle knobs (keepalive cadence, renegotiation budget, crash hazard,
upkeep drain, mobility), and a :class:`SessionDriver` runs every
session's operation phase *concurrently with later admissions* on one
shared engine — so mid-session renegotiations fight for the same
contended cluster the newcomers do.

Determinism contract: sessions and the driver draw no randomness.
Arrival times, crash draws and waypoints are all pulled from named
:class:`~repro.sim.rng.RngRegistry` streams by the caller
(:func:`repro.workloads.run_contention`); given the same seed the event
trace — and every metric derived from it — is bit-identical, serial or
parallel.
"""

from repro.sessions.driver import SessionDriver
from repro.sessions.lifecycle import (
    ACTIVE_STATES,
    SESSION_TRANSITIONS,
    Session,
    SessionState,
)
from repro.sessions.policy import MOBILITY_MODES, SessionPolicy

__all__ = [
    "ACTIVE_STATES",
    "MOBILITY_MODES",
    "SESSION_TRANSITIONS",
    "Session",
    "SessionDriver",
    "SessionPolicy",
    "SessionState",
]

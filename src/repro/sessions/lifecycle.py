"""The streaming-session state machine.

The paper's coalition life cycle (Section 4) ends at dissolution, but a
*streaming* session — movie playback, conferencing, telemetry — lives
through admission, sustained operation, partial failure and in-place
renegotiation before it dissolves. :class:`Session` tracks one request
through that machine::

    NEGOTIATING ──► OPERATING ◄──► DEGRADED ──► RENEGOTIATING
         │            │    ▲          │   ▲            │
         ▼            ▼    └──────────┼───┼────────────┤
      DROPPED       CLOSED ◄──────────┘   └────────────┤
         ▲                                             ▼
         └──────────────(DEGRADED, RENEGOTIATING)── DROPPED

* ``NEGOTIATING → OPERATING`` — admission succeeded (a complete
  coalition holds reservations); ``NEGOTIATING → DROPPED`` — admission
  was refused.
* ``OPERATING → DEGRADED`` — a keepalive tick found a coalition member
  dead (crash, drained battery) or unreachable behind a network
  partition (within the policy's partition-grace window); the orphaned
  tasks stream nothing.
* ``DEGRADED → OPERATING`` — every suspended member became reachable
  again before its grace expired (a healed partition): the session
  recovers *in place*, same awards, no renegotiation.
* ``DEGRADED → RENEGOTIATING`` — the organizer re-runs the Section 4.2
  protocol for the orphaned tasks against the *currently contended*
  cluster; ``RENEGOTIATING → OPERATING`` on success,
  ``→ DEGRADED`` on a failed attempt with budget left,
  ``→ DROPPED`` once the attempt budget is spent.
* ``OPERATING/DEGRADED → CLOSED`` — the planned streaming span ended.
* ``DEGRADED → DROPPED`` — the requester itself died (nobody is left to
  consume the stream).

``CLOSED`` and ``DROPPED`` are terminal. Illegal transitions raise
:class:`~repro.errors.SessionStateError` — the machine is enforced, not
advisory.

Sustained utility
-----------------
A session integrates its instantaneous utility (mean per-task
normalized utility of the awards it currently holds; orphaned tasks
contribute 0) piecewise-constantly between life-cycle events, and
normalizes by the *planned* streaming span::

    sustained_utility = (1/D) · ∫₀ᴰ u(t) dt

so a session that streamed at admission quality for its whole span
scores its admission utility, one renegotiated to degraded levels
scores less, and one dropped halfway scores at most half. Everything is
event-driven — no sampling — so the value is an exact function of the
event trace (and therefore of the seed).
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Dict, List, Optional, Set, Tuple

from repro.errors import SessionStateError
from repro.services.service import Service

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.coalition import Coalition
    from repro.core.negotiation import NegotiationOutcome


class SessionState(enum.Enum):
    """Life-cycle states of a streaming session."""

    NEGOTIATING = "negotiating"
    OPERATING = "operating"
    DEGRADED = "degraded"
    RENEGOTIATING = "renegotiating"
    CLOSED = "closed"
    DROPPED = "dropped"


#: The legal transition relation; everything else raises.
SESSION_TRANSITIONS: Dict[SessionState, Tuple[SessionState, ...]] = {
    SessionState.NEGOTIATING: (SessionState.OPERATING, SessionState.DROPPED),
    SessionState.OPERATING: (SessionState.DEGRADED, SessionState.CLOSED),
    SessionState.DEGRADED: (
        SessionState.OPERATING,
        SessionState.RENEGOTIATING,
        SessionState.CLOSED,
        SessionState.DROPPED,
    ),
    SessionState.RENEGOTIATING: (
        SessionState.OPERATING,
        SessionState.DEGRADED,
        SessionState.DROPPED,
    ),
    SessionState.CLOSED: (),
    SessionState.DROPPED: (),
}

#: States in which a session holds reservations and counts as active.
ACTIVE_STATES = (
    SessionState.OPERATING,
    SessionState.DEGRADED,
    SessionState.RENEGOTIATING,
)


class Session:
    """One streaming request tracked through the session state machine.

    Sessions are passive records: the
    :class:`~repro.sessions.driver.SessionDriver` drives every
    transition on its engine. All bookkeeping — the transition trace,
    the utility integral, renegotiation counters — is event-driven and
    deterministic given the driver's event order.

    Args:
        service: The service (tasks + requester) the session streams.
        arrival: Simulated arrival time (when negotiation starts).
        duration: Planned streaming span in simulated seconds.
    """

    def __init__(self, service: Service, arrival: float, duration: float) -> None:
        if duration <= 0:
            raise ValueError(f"session duration must be positive, got {duration}")
        self.service = service
        self.arrival = float(arrival)
        self.duration = float(duration)
        self.state = SessionState.NEGOTIATING
        self.transitions: List[Tuple[float, SessionState]] = [
            (self.arrival, SessionState.NEGOTIATING)
        ]
        self.coalition: Optional["Coalition"] = None
        self.admission: Optional["NegotiationOutcome"] = None
        self.live_tasks: Set[str] = set()
        self.concurrent = 0
        """Sessions already active when this one negotiated."""
        self.renegotiations = 0
        """Successful in-place renegotiations."""
        self.failed_renegotiations = 0
        """Failed renegotiation attempts (the bounded budget)."""
        self.suspended: Dict[str, float] = {}
        """Task id → when its (alive) member became unreachable behind a
        partition; cleared when the member is reachable again. Only
        populated when the policy's partition grace is enabled."""
        self.award_retries = 0
        """Award-handshake retransmissions across this session's
        negotiation rounds (admission + renegotiations)."""
        self.retry_delay = 0.0
        """Total simulated backoff delay those retries spent."""
        self.ended_at: Optional[float] = None
        self._integral = 0.0
        self._mark = self.arrival
        self._utility = 0.0

    # -- state machine -----------------------------------------------------

    def transition(self, state: SessionState, now: float) -> None:
        """Move to ``state`` at time ``now``.

        Raises:
            SessionStateError: If the transition is not in
                :data:`SESSION_TRANSITIONS`.
        """
        if state not in SESSION_TRANSITIONS[self.state]:
            raise SessionStateError(
                f"session {self.service.name!r}: illegal transition "
                f"{self.state.value} -> {state.value}"
            )
        self._accrue(now)
        self.state = state
        self.transitions.append((now, state))
        if state in (SessionState.CLOSED, SessionState.DROPPED):
            self.ended_at = now
            self._utility = 0.0  # nothing streams after the end

    @property
    def admitted(self) -> bool:
        """Whether admission ever succeeded (the session operated)."""
        return self.coalition is not None

    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    # -- utility accounting ------------------------------------------------

    def set_utility(self, now: float, value: float) -> None:
        """Record a change of instantaneous utility at ``now`` (awards
        gained, lost, or replaced); the previous value is integrated up
        to this instant."""
        self._accrue(now)
        self._utility = float(value)

    def _accrue(self, now: float) -> None:
        if now > self._mark:
            self._integral += (now - self._mark) * self._utility
            self._mark = now

    @property
    def utility(self) -> float:
        """Current instantaneous utility (mean per-task, in [0, 1])."""
        return self._utility

    @property
    def sustained_utility(self) -> float:
        """Time-integrated utility over the planned streaming span.

        Exact (piecewise-constant integration between life-cycle
        events), normalized by the planned duration, clamped to [0, 1].
        """
        if self.duration <= 0:
            return 0.0
        return max(0.0, min(1.0, self._integral / self.duration))

    @property
    def renegotiation_attempts(self) -> int:
        """All in-place renegotiation attempts, successful or not."""
        return self.renegotiations + self.failed_renegotiations

    def __repr__(self) -> str:
        return (
            f"<Session {self.service.name!r} state={self.state.value} "
            f"arrival={self.arrival:g} renegotiations={self.renegotiations}>"
        )

"""Seeded replication driver."""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.metrics.stats import Summary, describe


def replicate(
    run: Callable[[int], Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, Summary]:
    """Run ``run(seed)`` for every seed and summarize each metric column.

    Every replication must return the same metric keys; missing keys are
    a configuration bug and raise immediately rather than silently
    averaging over different supports.
    """
    rows: List[Dict[str, float]] = []
    keys = None
    for seed in seeds:
        row = run(seed)
        if keys is None:
            keys = set(row)
        elif set(row) != keys:
            raise ValueError(
                f"replication with seed {seed} returned keys {sorted(row)} "
                f"!= expected {sorted(keys)}"
            )
        rows.append(row)
    assert keys is not None, "no seeds provided"
    return {k: describe([r[k] for r in rows]) for k in sorted(keys)}

"""Seeded replication driver (serial and parallel).

:func:`replicate` is the single entry point the suites use: with
``jobs=1`` it runs the seeds in-process; with ``jobs != 1`` it delegates
to the fork-based scheduler in :mod:`repro.experiments.parallel`.

Determinism contract
--------------------
Both paths produce bit-identical summaries because every replication is
a pure function of its seed: all randomness comes from the seed's own
:class:`~repro.sim.rng.RngRegistry`, :func:`run_replication` rewinds the
process-wide id sequences before each run, and rows are always consumed
in seed order by :func:`summarize_replications` no matter which worker
produced them first. See ``docs/architecture.md`` for the full data
flow of a replication.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from repro.experiments.plan import RunFn
from repro.metrics.stats import Summary, describe
from repro.sim.sequences import reset_all_sequences


def run_replication(run: RunFn, seed: int) -> Dict[str, float]:
    """Run one replication from a clean process state.

    Rewinds the process-wide id sequences first, so the replication is a
    pure function of its seed — identical no matter what ran before it
    in the process, or in which worker it executes.
    """
    reset_all_sequences()
    return run(seed)


def key_mismatch_error(
    seed: int, row_keys: Iterable[str], expected: Iterable[str]
) -> ValueError:
    """The error raised when a replication returns inconsistent metrics."""
    return ValueError(
        f"replication with seed {seed} returned keys {sorted(row_keys)} "
        f"!= expected {sorted(expected)}"
    )


def summarize_replications(
    rows: Iterable[Dict[str, float]],
    seeds: Sequence[int],
) -> Dict[str, Summary]:
    """Key-check rows in seed order and summarize each metric column.

    Every replication must return the same metric keys; missing keys are
    a configuration bug and raise rather than silently averaging over
    different supports. ``rows`` may be lazy; it is fully materialized
    here. A row count different from the seed count (a reduce plumbing
    bug) also raises rather than silently summarizing a truncated zip.
    """
    checked: List[Dict[str, float]] = []
    keys = None
    rows = list(rows)
    if len(rows) != len(seeds):
        raise ValueError(
            f"got {len(rows)} replication rows for {len(seeds)} seeds"
        )
    for seed, row in zip(seeds, rows):
        if keys is None:
            keys = set(row)
        elif set(row) != keys:
            raise key_mismatch_error(seed, row, keys)
        checked.append(row)
    assert keys is not None, "no seeds provided"
    return {k: describe([r[k] for r in checked]) for k in sorted(keys)}


def replicate(
    run: RunFn,
    seeds: Sequence[int],
    jobs: Optional[int] = 1,
) -> Dict[str, Summary]:
    """Run ``run(seed)`` for every seed and summarize each metric column.

    Args:
        run: Replication callable; must derive all randomness from its
            seed argument (e.g. via an internal ``RngRegistry(seed)``),
            so that it computes the same floats in any process, in any
            order — the precondition for the determinism contract.
        seeds: Seeds to replicate over.
        jobs: Worker processes. ``1`` runs serially in-process;
            ``None``/``0`` use every core (clamped to ``len(seeds)``).

    Determinism contract: for the same ``run`` and ``seeds``, every
    ``jobs`` value yields bit-identical summaries — parallelism changes
    wall time only, never results.
    """
    if jobs == 1 or len(seeds) <= 1:
        return summarize_replications(
            (run_replication(run, seed) for seed in seeds), seeds
        )
    from repro.experiments.parallel import replicate_rows

    return summarize_replications(replicate_rows(run, seeds, jobs=jobs), seeds)

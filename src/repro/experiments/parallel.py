"""Parallel replication and the suite-level batch runner.

The E-suites replicate every configuration over a seed sweep; this module
fans those replications out over a ``multiprocessing`` worker pool and
runs whole suites back to back, timing each one and persisting the
results through :class:`~repro.experiments.store.ResultsStore`.

Determinism contract
--------------------
Parallel results are **bit-identical** to serial results for the same
seeds. Every replication callable derives *all* of its randomness from
its own seed (via :class:`~repro.sim.rng.RngRegistry`), so a replication
computes the same floats no matter which process runs it. The pool only
changes *where* ``run(seed)`` executes, never *what* it computes, and
rows are re-assembled in seed order before summarizing. Workers share no
mutable state: each forked child re-seeds its own registries per task and
communicates results back over a queue.

The pool uses the ``fork`` start method so the closure-style ``run``
callables the suites build (capturing sweep-point parameters as default
arguments) need not be picklable. On platforms without ``fork`` the
executor degrades to serial execution, preserving results exactly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_module
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import SweepConfig
from repro.experiments.store import ResultsStore, RunRecord, new_run_record
from repro.experiments.suites import ALL_SUITES
from repro.metrics.stats import Summary

RunFn = Callable[[int], Dict[str, float]]


def available_jobs() -> int:
    """Number of usable CPUs (at least 1)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int]) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores"."""
    if jobs is None or jobs <= 0:
        return available_jobs()
    return int(jobs)


def _fork_context() -> Optional[mp.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return None


def _worker(
    run: RunFn,
    tasks: Sequence[Tuple[int, int]],
    results: "mp.Queue",
) -> None:
    """Evaluate ``run(seed)`` for each ``(index, seed)`` task.

    Every outcome — row or exception — is reported back through the
    queue so the parent can re-raise failures deterministically.
    """
    from repro.experiments.runner import run_replication

    for index, seed in tasks:
        try:
            results.put((index, True, run_replication(run, seed)))
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            try:
                pickle.dumps(exc)
            except Exception:
                exc = RuntimeError(
                    f"replication with seed {seed} failed with an "
                    f"unpicklable {type(exc).__name__}:\n"
                    + traceback.format_exc()
                )
            results.put((index, False, exc))


def replicate_rows(
    run: RunFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run ``run(seed)`` for every seed, fanning out over ``jobs`` workers.

    Returns the raw metric rows **in seed order**, regardless of which
    worker finished first. Worker exceptions are re-raised in the parent,
    earliest seed first, matching the serial failure order.
    """
    from repro.experiments.runner import run_replication

    seeds = list(seeds)
    jobs = min(resolve_jobs(jobs), len(seeds))
    ctx = _fork_context()
    if jobs <= 1 or len(seeds) <= 1 or ctx is None:
        return [run_replication(run, seed) for seed in seeds]

    results: "mp.Queue" = ctx.Queue()
    indexed = list(enumerate(seeds))
    workers = [
        ctx.Process(
            target=_worker, args=(run, indexed[w::jobs], results), daemon=True
        )
        for w in range(jobs)
    ]
    outcomes: Dict[int, Tuple[bool, object]] = {}
    try:
        for proc in workers:
            proc.start()
        while len(outcomes) < len(seeds):
            try:
                index, ok, payload = results.get(timeout=1.0)
            except queue_module.Empty:
                if all(not p.is_alive() for p in workers):
                    # Workers may have finished between the timeout and the
                    # liveness check; drain what they already flushed into
                    # the pipe before declaring results lost.
                    try:
                        while len(outcomes) < len(seeds):
                            index, ok, payload = results.get(timeout=0.2)
                            outcomes[index] = (ok, payload)
                    except queue_module.Empty:
                        missing = len(seeds) - len(outcomes)
                        raise RuntimeError(
                            f"{missing} replication(s) lost: a worker "
                            "process died without reporting a result"
                        ) from None
                continue
            outcomes[index] = (ok, payload)
        for proc in workers:
            proc.join()
    finally:
        for proc in workers:
            if proc.is_alive():
                proc.terminate()
                proc.join()

    for index in range(len(seeds)):
        ok, payload = outcomes[index]
        if not ok:
            raise payload  # earliest-seed failure, as the serial path would
    return [outcomes[index][1] for index in range(len(seeds))]  # type: ignore[misc]


def replicate_parallel(
    run: RunFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
) -> Dict[str, Summary]:
    """Parallel :func:`~repro.experiments.runner.replicate`.

    Fans the seeds over ``jobs`` forked workers and summarizes each
    metric column; summaries are bit-identical to the serial path.
    """
    from repro.experiments.runner import summarize_replications

    return summarize_replications(replicate_rows(run, seeds, jobs=jobs), seeds)


# --------------------------------------------------------------------------
# Suite-level batch runner
# --------------------------------------------------------------------------


def run_suite(name: str, sweep: SweepConfig = SweepConfig()) -> RunRecord:
    """Run one E-suite under the sweep settings and time it.

    Seed-level parallelism comes from ``sweep.jobs``; the wall time in
    the returned record is the end-to-end suite duration.
    """
    if name not in ALL_SUITES:
        raise KeyError(
            f"unknown suite {name!r}; available: {', '.join(ALL_SUITES)}"
        )
    start = time.perf_counter()
    table = ALL_SUITES[name](sweep)
    wall_time_s = time.perf_counter() - start
    return new_run_record(name, table, sweep, wall_time_s)


def run_batch(
    names: Sequence[str],
    sweep: SweepConfig = SweepConfig(),
    store: Optional[ResultsStore] = None,
    echo: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Run several suites back to back, persisting each as it finishes.

    Args:
        names: Suite ids (keys of ``ALL_SUITES``) to run, in order.
        sweep: Shared sweep settings (seeds, quick mode, jobs).
        store: Destination for run records and ``BENCH_<suite>.json``
            reports; ``None`` skips persistence.
        echo: Per-record progress callback (e.g. table printing).

    Returns:
        One :class:`~repro.experiments.store.RunRecord` per suite.
    """
    records: List[RunRecord] = []
    for name in names:
        record = run_suite(name, sweep)
        if store is not None:
            store.save(record)
            store.write_bench(record)
        if echo is not None:
            echo(record)
        records.append(record)
    return records

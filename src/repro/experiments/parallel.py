"""The shared work-queue scheduler and the suite-level batch runner.

PR 1 parallelised seeds *within one sweep point*: every ``replicate``
call opened its own pool, so a batch with ``seeds < jobs`` left workers
idle at each point and ran suites strictly one after another. This
module replaces that per-``replicate`` pool with a single fork-based
:class:`Scheduler` that consumes ``(suite, sweep_point, seed)``
:class:`~repro.experiments.plan.WorkUnit` triples across an entire
batch: workers pull units from one shared queue, so ``E1 --jobs 16`` and
full E1–E17 runs saturate every worker regardless of per-point seed
counts.

Determinism contract
--------------------
Parallel results are **bit-identical** to serial results for the same
seeds. Every replication callable derives *all* of its randomness from
its own seed (via :class:`~repro.sim.rng.RngRegistry`) and starts from
rewound id sequences (:func:`~repro.sim.sequences.reset_all_sequences`,
applied per unit by :func:`~repro.experiments.runner.run_replication`),
so a unit computes the same floats no matter which worker runs it or
when. The scheduler only changes *where* and *in what order* units
execute, never *what* they compute: results are keyed by the unit's
deterministic index and re-assembled in (sweep point, seed) order at
reduce time, so out-of-order completion is invisible in the tables.
Workers share no mutable state and communicate results back over a
queue.

The pool uses the ``fork`` start method so the closure-style ``run``
callables the suites build (capturing sweep-point parameters as default
arguments) need not be picklable — only unit *indices* travel through
the task queue. On platforms without ``fork`` the scheduler degrades to
serial execution, preserving results exactly.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_module
import time
import traceback
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.experiments.config import SweepConfig
from repro.experiments.plan import RunFn, SuitePlan, WorkUnit
from repro.experiments.store import ResultsStore, RunRecord, new_run_record
from repro.experiments.suites import SUITE_PLANS
from repro.metrics.stats import Summary


def available_jobs() -> int:
    """Number of usable CPUs (at least 1)."""
    return os.cpu_count() or 1


def resolve_jobs(jobs: Optional[int], pending: Optional[int] = None) -> int:
    """Normalize a ``--jobs`` value: ``None``/``0`` mean "all cores".

    Args:
        jobs: Requested worker count; ``None`` or ``<= 0`` resolve to
            every core.
        pending: Number of pending work units, when known. The result is
            clamped to it (floor 1), so tiny ``--quick`` runs never fork
            workers that would exit without ever receiving a unit.
    """
    resolved = available_jobs() if jobs is None or jobs <= 0 else int(jobs)
    if pending is not None:
        resolved = max(1, min(resolved, pending))
    return resolved


def _fork_context() -> Optional[mp.context.BaseContext]:
    """The ``fork`` multiprocessing context, or ``None`` if unsupported."""
    if "fork" in mp.get_all_start_methods():
        return mp.get_context("fork")
    return None


def _unit_worker(
    units: Sequence[WorkUnit],
    worker_id: int,
    tasks: "mp.Queue",
    results: "mp.Queue",
) -> None:
    """Pull unit indices off the shared queue until the stop sentinel.

    ``units`` is inherited through ``fork`` (closures need no pickling);
    the queue only carries integer indices. Every outcome — row or
    exception — is reported back tagged with the worker id, so the
    parent can re-raise failures deterministically and tests can assert
    that units from different sweep points actually spread over workers.
    """
    from repro.experiments.runner import run_replication

    while True:
        index = tasks.get()
        if index is None:  # stop sentinel, one per worker
            break
        unit = units[index]
        # perf_counter is system-wide monotonic on every fork platform,
        # so worker-side timestamps are comparable with the parent's.
        started = time.perf_counter()
        try:
            row = run_replication(unit.run, unit.seed)
            results.put((index, worker_id, True, row,
                         started, time.perf_counter()))
        except BaseException as exc:  # noqa: BLE001 - relayed to parent
            try:
                # Round-trip: some exceptions pickle but fail to
                # *unpickle* (custom __init__ signatures), which would
                # crash the parent's queue read with an unrelated error.
                # The absorbed types are exactly how a failed round-trip
                # presents: PickleError from the protocol itself,
                # TypeError/AttributeError/ValueError from __reduce__ /
                # re-construction of exotic exception signatures.
                pickle.loads(pickle.dumps(exc))
            except (pickle.PickleError, TypeError, AttributeError, ValueError):
                exc = RuntimeError(
                    f"unit {unit.suite}[point {unit.point_index}] with seed "
                    f"{unit.seed} failed with an unpicklable "
                    f"{type(exc).__name__}:\n" + traceback.format_exc()
                )
            results.put((index, worker_id, False, exc,
                         started, time.perf_counter()))


class Scheduler:
    """A shared fork-based pool over an arbitrary list of work units.

    Workers pull unit indices from one queue, so whenever a sweep point
    has fewer seeds than there are workers, the idle workers immediately
    start on the next point (or the next suite) instead of waiting —
    the batch stays saturated until the global queue drains.

    After :meth:`run` returns, three observability maps are populated:

    * ``worker_of`` — unit index → worker id that executed it (all
      ``0`` on the serial fallback), used by tests to assert that units
      of different sweep points really spread across workers;
    * ``started_at`` / ``completed_at`` — unit index →
      ``time.perf_counter()`` when its execution began / ended (as
      measured by the executing worker), used by the batch runner to
      stamp per-suite wall times.

    Args:
        units: Work units; ``WorkUnit.index`` must equal the unit's
            position in this list (the deterministic reduce order).
        jobs: Worker processes. ``None``/``0`` use every core; the value
            is clamped to ``len(units)``. ``1`` (or platforms without
            ``fork``) runs serially with identical results.
    """

    def __init__(self, units: Sequence[WorkUnit], jobs: Optional[int] = None) -> None:
        self.units = list(units)
        for position, unit in enumerate(self.units):
            if unit.index != position:
                raise ValueError(
                    f"unit at position {position} has index {unit.index}; "
                    "indices must match positions for deterministic reduce"
                )
        self.jobs = resolve_jobs(jobs, pending=len(self.units))
        self.worker_of: Dict[int, int] = {}
        self.started_at: Dict[int, float] = {}
        self.completed_at: Dict[int, float] = {}

    def run(
        self,
        on_result: Optional[Callable[[WorkUnit, Dict[str, float]], None]] = None,
    ) -> List[Dict[str, float]]:
        """Execute every unit and return rows in unit-index order.

        Args:
            on_result: Called in the parent with ``(unit, row)`` as each
                unit's result arrives (completion order, successes
                only). Lets the batch runner persist and print a suite
                as soon as its last unit lands, instead of holding
                everything until the whole batch drains.

        Worker exceptions are re-raised in the parent. The pool fails
        fast: the first failure cancels every not-yet-dispatched unit,
        in-flight units finish and report, and the earliest-index
        failure observed is raised — for a single failing unit that is
        exactly the error the serial loop would have raised, without
        burning the rest of the batch first.
        """
        if not self.units:
            return []
        ctx = _fork_context()
        if self.jobs <= 1 or len(self.units) <= 1 or ctx is None:
            return self._run_serial(on_result)
        return self._run_pool(ctx, on_result)

    # -- serial fallback ----------------------------------------------------

    def _run_serial(
        self,
        on_result: Optional[Callable[[WorkUnit, Dict[str, float]], None]],
    ) -> List[Dict[str, float]]:
        from repro.experiments.runner import run_replication

        rows: List[Dict[str, float]] = []
        for unit in self.units:
            self.started_at[unit.index] = time.perf_counter()
            row = run_replication(unit.run, unit.seed)
            self.worker_of[unit.index] = 0
            self.completed_at[unit.index] = time.perf_counter()
            rows.append(row)
            if on_result is not None:
                on_result(unit, row)
        return rows

    # -- fork pool ----------------------------------------------------------

    def _run_pool(
        self,
        ctx: "mp.context.BaseContext",
        on_result: Optional[Callable[[WorkUnit, Dict[str, float]], None]],
    ) -> List[Dict[str, float]]:
        tasks: "mp.Queue" = ctx.Queue()
        results: "mp.Queue" = ctx.Queue()
        for unit in self.units:
            tasks.put(unit.index)
        for _ in range(self.jobs):
            tasks.put(None)  # one stop sentinel per worker

        workers = [
            ctx.Process(
                target=_unit_worker,
                args=(self.units, worker_id, tasks, results),
                daemon=True,
            )
            for worker_id in range(self.jobs)
        ]
        outcomes: Dict[int, Tuple[bool, object]] = {}

        def record(
            index: int, worker_id: int, ok: bool, payload: object,
            started: float, completed: float,
        ) -> None:
            outcomes[index] = (ok, payload)
            self.worker_of[index] = worker_id
            self.started_at[index] = started
            self.completed_at[index] = completed
            if ok and on_result is not None:
                on_result(self.units[index], payload)  # type: ignore[arg-type]

        try:
            for proc in workers:
                proc.start()
            while len(outcomes) < len(self.units):
                try:
                    arrival = results.get(timeout=1.0)
                except queue_module.Empty:
                    if all(not p.is_alive() for p in workers):
                        # Workers may have finished between the timeout and
                        # the liveness check; drain what they already flushed
                        # into the pipe before declaring results lost.
                        try:
                            while len(outcomes) < len(self.units):
                                record(*results.get(timeout=0.2))
                        except queue_module.Empty:
                            # Prefer a recorded unit failure over the
                            # generic lost-worker error: it is the
                            # diagnostic that explains the batch death.
                            for index in sorted(outcomes):
                                ok, payload = outcomes[index]
                                if not ok:
                                    raise payload
                            missing = len(self.units) - len(outcomes)
                            raise RuntimeError(
                                f"{missing} work unit(s) lost: a worker "
                                "process died without reporting a result"
                            ) from None
                    continue
                record(*arrival)
                if not arrival[2]:  # fail fast: stop feeding the pool
                    self._cancel_pending(tasks)
                    self._drain_in_flight(workers, results, record)
                    break
            for proc in workers:
                proc.join()
        finally:
            for proc in workers:
                if proc.is_alive():
                    proc.terminate()
                    proc.join()

        for index in sorted(outcomes):
            ok, payload = outcomes[index]
            if not ok:
                raise payload  # earliest failed unit, as serial would
        return [outcomes[index][1] for index in range(len(self.units))]  # type: ignore[misc]

    def _cancel_pending(self, tasks: "mp.Queue") -> None:
        """Eat every undispatched unit index, then restock stop sentinels.

        Workers that already pulled a unit finish it; everyone else hits
        a sentinel next and exits. Draining may also consume original
        sentinels, so a full set is re-added (extras are harmless).
        """
        try:
            while True:
                tasks.get_nowait()
        except queue_module.Empty:
            pass
        for _ in range(self.jobs):
            tasks.put(None)

    @staticmethod
    def _drain_in_flight(
        workers: List["mp.process.BaseProcess"],
        results: "mp.Queue",
        record: Callable[..., None],
    ) -> None:
        """Collect results of in-flight units until every worker exits."""
        while any(p.is_alive() for p in workers):
            try:
                record(*results.get(timeout=0.2))
            except queue_module.Empty:
                continue
        try:
            while True:
                record(*results.get_nowait())
        except queue_module.Empty:
            pass


# --------------------------------------------------------------------------
# Seed-level replication on top of the scheduler (PR 1 interface)
# --------------------------------------------------------------------------


def replicate_rows(
    run: RunFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
) -> List[Dict[str, float]]:
    """Run ``run(seed)`` for every seed, fanning out over ``jobs`` workers.

    A thin wrapper turning one replication callable into ad-hoc work
    units for the :class:`Scheduler`. Returns the raw metric rows **in
    seed order**, regardless of which worker finished first; worker
    exceptions re-raise in the parent, earliest seed first, matching the
    serial failure order.
    """
    units = [
        WorkUnit(index=i, suite="<adhoc>", point_index=0,
                 seed_index=i, seed=seed, run=run)
        for i, seed in enumerate(seeds)
    ]
    return Scheduler(units, jobs=jobs).run()


def replicate_parallel(
    run: RunFn,
    seeds: Sequence[int],
    jobs: Optional[int] = None,
) -> Dict[str, Summary]:
    """Parallel :func:`~repro.experiments.runner.replicate`.

    Fans the seeds over ``jobs`` forked workers and summarizes each
    metric column. **Determinism contract:** summaries are bit-identical
    to the serial path for the same seeds — see the module docstring.
    """
    from repro.experiments.runner import summarize_replications

    return summarize_replications(replicate_rows(run, seeds, jobs=jobs), seeds)


# --------------------------------------------------------------------------
# Suite-level batch runner
# --------------------------------------------------------------------------


def _check_names(names: Sequence[str]) -> None:
    unknown = [n for n in names if n not in SUITE_PLANS]
    if unknown:
        raise KeyError(
            f"unknown suite {unknown[0]!r}; available: {', '.join(SUITE_PLANS)}"
        )


def run_suite(name: str, sweep: SweepConfig = SweepConfig()) -> RunRecord:
    """Run one E-suite under the sweep settings and time it.

    The suite's ``(sweep_point, seed)`` work units go through the shared
    :class:`Scheduler`, so with ``sweep.jobs > 1`` all of its sweep
    points replicate concurrently — not just the seeds within one point.
    The wall time in the returned record is the end-to-end suite
    duration, and the record is bit-identical to a ``jobs=1`` run.
    """
    return run_batch([name], sweep)[0]


def run_batch(
    names: Sequence[str],
    sweep: SweepConfig = SweepConfig(),
    store: Optional[ResultsStore] = None,
    echo: Optional[Callable[[RunRecord], None]] = None,
) -> List[RunRecord]:
    """Run several suites through one shared work-unit pool.

    Every ``(suite, sweep_point, seed)`` triple of the whole batch is
    enumerated up front and fed to a single :class:`Scheduler`, so
    workers stay busy across sweep-point and suite boundaries (the
    ROADMAP's "sweep-point-level parallelism"). Results are reduced per
    suite in deterministic (point, seed) order, making each record
    bit-identical to a serial run.

    Suites are persisted and echoed in ``names`` order as they finish:
    the moment a suite's last unit (and every earlier suite) has
    completed, it reduces, saves, and echoes — a mid-batch failure or
    interrupt therefore keeps the records of the suites already
    emitted, as the PR 1 suite-at-a-time loop did.

    Each record's ``wall_time_s`` spans the suite's first unit starting
    → its last unit completing. Under ``jobs = 1`` units run
    back-to-back, so that is exactly the suite's own duration; under
    ``jobs > 1`` suites share the pool and execute interleaved, so
    their spans overlap and do not add up to the batch duration.

    Args:
        names: Suite ids (keys of ``SUITE_PLANS``) to run, in order.
        sweep: Shared sweep settings (seeds, quick mode, jobs).
        store: Destination for run records and ``BENCH_<suite>.json``
            reports; ``None`` skips persistence.
        echo: Per-record progress callback (e.g. table printing).

    Returns:
        One :class:`~repro.experiments.store.RunRecord` per suite, in
        ``names`` order.

    Raises:
        KeyError: If any name is not a known suite id.
    """
    _check_names(names)
    plans: List[SuitePlan] = []
    plan_units: List[List[WorkUnit]] = []
    units: List[WorkUnit] = []
    owner: List[int] = []  # unit index → position of its plan in `names`
    seeds = sweep.effective_seeds
    for position, name in enumerate(names):
        plan = SUITE_PLANS[name](sweep)
        plans.append(plan)
        # Track each plan's own unit slice (not a filter by suite id) so
        # requesting the same suite twice keeps the runs separate.
        plan_units.append(plan.work_units(seeds, start=len(units)))
        units.extend(plan_units[-1])
        owner.extend([position] * len(plan_units[-1]))

    scheduler = Scheduler(units, jobs=sweep.jobs)
    rows_by_unit: Dict[int, Dict[str, float]] = {}
    remaining = [len(plan_unit) for plan_unit in plan_units]
    records: List[RunRecord] = []

    def finalize(position: int) -> None:
        """Reduce, persist, and echo one completed suite."""
        plan, suite_units = plans[position], plan_units[position]
        table = plan.reduce(rows_by_unit, suite_units, seeds)
        span_start = min(scheduler.started_at[u.index] for u in suite_units)
        span_end = max(scheduler.completed_at[u.index] for u in suite_units)
        record = new_run_record(plan.suite, table, sweep, span_end - span_start)
        if store is not None:
            store.save(record)
            store.write_bench(record)
        if echo is not None:
            echo(record)
        records.append(record)

    def on_result(unit: WorkUnit, row: Dict[str, float]) -> None:
        rows_by_unit[unit.index] = row
        remaining[owner[unit.index]] -= 1
        # Emit finished suites in `names` order, as soon as possible.
        while len(records) < len(plans) and remaining[len(records)] == 0:
            finalize(len(records))

    scheduler.run(on_result=on_result)
    return records

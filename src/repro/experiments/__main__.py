"""Command-line experiment runner.

Usage::

    python -m repro.experiments                # run every suite (full sweep)
    python -m repro.experiments E1 E3 E9       # run selected suites
    python -m repro.experiments --quick E5     # fast smoke sweep
    python -m repro.experiments --list         # list available suites

Prints each experiment's table to stdout; exit code 0 on success.
"""

from __future__ import annotations

import argparse
import sys

from repro.experiments.config import SweepConfig
from repro.experiments.suites import ALL_SUITES


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Run the E1-E13 evaluation suites.",
    )
    parser.add_argument(
        "suites", nargs="*", metavar="ID",
        help="experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunken sweeps and fewer seeds (smoke mode)",
    )
    parser.add_argument(
        "--seeds", type=int, default=8,
        help="number of replication seeds (default 8)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available suite ids and exit"
    )
    args = parser.parse_args(argv)

    if args.list:
        for name, fn in ALL_SUITES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:>4}  {doc}")
        return 0

    names = args.suites or list(ALL_SUITES)
    unknown = [n for n in names if n not in ALL_SUITES]
    if unknown:
        print(f"unknown suite id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_SUITES)}", file=sys.stderr)
        return 2

    sweep = SweepConfig(seeds=tuple(range(1, args.seeds + 1)), quick=args.quick)
    for name in names:
        table = ALL_SUITES[name](sweep)
        print(table.render())
        print()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""Command-line experiment runner.

Usage::

    python -m repro.experiments                      # every suite (full sweep)
    python -m repro.experiments E1 E3 E9             # run selected suites
    python -m repro.experiments --quick --jobs 4 E5  # parallel smoke sweep
    python -m repro.experiments --list               # list available suites
    python -m repro.experiments --list-scenarios     # named contention scenarios
    python -m repro.experiments --list-features      # feature-switch registry
    python -m repro.experiments --scenario streaming-mix   # one named scenario

Each suite's table prints to stdout (or one JSON report with ``--json``),
and every invocation persists a run record plus a machine-readable
``BENCH_<suite>.json`` report under ``--out`` (default
``benchmarks/results/``, disable with ``--no-save``); exit code 0 on
success.

``--jobs N`` feeds every ``(suite, sweep point, seed)`` work unit of the
whole invocation to one shared fork-based pool
(:class:`~repro.experiments.parallel.Scheduler`), so workers stay busy
across sweep points and suites — and results stay bit-identical to
``--jobs 1``. The full flag reference lives in ``docs/cli.md``.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from repro.experiments.config import SweepConfig
from repro.experiments.parallel import run_batch
from repro.experiments.store import DEFAULT_ROOT, ResultsStore, RunRecord
from repro.experiments.suites import ALL_SUITES


def _suite_span() -> str:
    """``"E1–EN"``, computed from :data:`ALL_SUITES` so the CLI's
    self-description can never drift when suites are added."""
    ids = list(ALL_SUITES)
    return f"{ids[0]}–{ids[-1]}"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description=f"Run the {_suite_span()} evaluation suites "
                    f"({len(ALL_SUITES)} suites).",
    )
    parser.add_argument(
        "suites", nargs="*", metavar="ID",
        help=f"experiment ids to run ({_suite_span()}; default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="shrunken sweeps and fewer seeds (smoke mode)",
    )
    parser.add_argument(
        "--seeds", type=int, default=8,
        help="number of replication seeds (default 8)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes for the shared (suite, sweep point, seed) "
             "work-unit pool (1 = serial, 0 or less = all cores, clamped "
             "to the pending unit count); results are bit-identical to "
             "serial",
    )
    parser.add_argument(
        "--out", default=str(DEFAULT_ROOT), metavar="DIR",
        help=f"results directory for run records and BENCH_<suite>.json "
             f"reports (default {DEFAULT_ROOT})",
    )
    parser.add_argument(
        "--json", action="store_true",
        help="print one JSON report to stdout instead of tables",
    )
    parser.add_argument(
        "--no-save", action="store_true",
        help="do not persist run records or bench reports",
    )
    parser.add_argument(
        "--list", action="store_true", help="list available suite ids and exit"
    )
    parser.add_argument(
        "--list-scenarios", action="store_true",
        help="list the named contention scenarios of the workload registry "
             "(repro.workloads.registry) and exit",
    )
    parser.add_argument(
        "--list-features", action="store_true",
        help="list the feature switches of the repro.features registry "
             "with their current state and exit",
    )
    parser.add_argument(
        "--scenario", metavar="NAME",
        help="run one named contention scenario over the replication "
             "seeds and print its summarized metrics (instead of suites)",
    )
    parser.add_argument(
        "--disable-feature", action="append", default=[], metavar="NAME",
        dest="disable_features",
        help="disable a feature switch from the repro.features registry "
             "for this invocation (repeatable; see --list-features) — "
             "the CI A/B jobs use this to pin that a disabled subsystem "
             "is bit-identical to an enabled-but-unused one",
    )
    args = parser.parse_args(argv)

    if args.disable_features:
        from repro.features import FEATURES, set_enabled

        unknown_features = [
            n for n in args.disable_features if n not in FEATURES
        ]
        if unknown_features:
            print(
                f"unknown feature switch(es): {', '.join(unknown_features)}",
                file=sys.stderr,
            )
            print(f"available: {', '.join(FEATURES)}", file=sys.stderr)
            return 2
        for name in args.disable_features:
            set_enabled(name, False)

    if args.list:
        print(f"{len(ALL_SUITES)} suites ({_suite_span()}):")
        for name, fn in ALL_SUITES.items():
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"{name:>4}  {doc}")
        return 0

    if args.list_scenarios:
        from repro.workloads.registry import list_scenarios

        scenarios = list_scenarios()
        print(f"{len(scenarios)} scenarios:")
        for spec in scenarios:
            print(f"{spec.name:>18}  {spec.description}")
        return 0

    if args.list_features:
        from repro.features import describe

        print(describe())
        return 0

    if args.scenario is not None:
        from repro.experiments.runner import summarize_replications
        from repro.workloads.registry import get_scenario

        if args.seeds < 1:
            print("--seeds must be at least 1", file=sys.stderr)
            return 2
        try:
            spec = get_scenario(args.scenario)
        except KeyError as exc:
            print(exc.args[0], file=sys.stderr)
            return 2
        seeds = tuple(range(1, args.seeds + 1))
        summary = summarize_replications(
            (spec.metrics_run(seed) for seed in seeds), seeds
        )
        print(f"{spec.name}: {spec.description}")
        print(f"({len(seeds)} seeds)")
        width = max(len(k) for k in summary)
        for key, stat in summary.items():
            print(f"{key:>{width}}  {stat.mean:.3f}±{stat.std:.3f}")
        return 0

    names = args.suites or list(ALL_SUITES)
    unknown = [n for n in names if n not in ALL_SUITES]
    if unknown:
        print(f"unknown suite id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(ALL_SUITES)}", file=sys.stderr)
        return 2
    if args.seeds < 1:
        print("--seeds must be at least 1", file=sys.stderr)
        return 2

    sweep = SweepConfig(
        seeds=tuple(range(1, args.seeds + 1)),
        quick=args.quick,
        jobs=args.jobs,
    )
    store = None if args.no_save else ResultsStore(args.out)

    def echo(record: RunRecord) -> None:
        if args.json:
            return
        print(record.table.render())
        status = f"[{record.suite}: {record.wall_time_s:.2f}s wall, " \
                 f"jobs={record.jobs}"
        if store is not None:
            status += f", bench → {store.bench_path(record.suite)}"
        print(status + "]")
        print()

    records = run_batch(names, sweep, store=store, echo=echo)
    if args.json:
        print(json.dumps([r.to_dict() for r in records], indent=2))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())

"""The E23 suite: fault injection and graceful degradation at 512 nodes.

One suite, one question: when the cluster actually misbehaves — bursty
link loss on the PROPOSE/AWARD legs, network partitions that sever
whole coalitions from their organizers, crash hazards with delayed
recovery — does the hardened protocol (bounded award retry/backoff,
idempotent release, partition-grace keepalive) *degrade* sessions
instead of dropping them, and recover in place when the fault clears?

Each sweep point is one :class:`~repro.faults.plan.FaultPlan` regime on
the same 512-node streaming-contention cluster (constant density, the
E22 workload shape, unsharded so partitions can overlay the global
topology). The axes:

* **loss burstiness** — a calm vs bursty Gilbert–Elliott chain on every
  radio leg of the negotiation (dropped PROPOSE bundles, lost
  AWARD/ACK rounds retried under the bounded backoff policy);
* **partition duration** — none, 10 s (heals *inside* the 15 s
  partition-grace window: sessions degrade, then recover in place
  without renegotiating) or 25 s (outlives the grace window: suspended
  members expire and are renegotiated or dropped);
* **crash hazard** — an inhomogeneous-Poisson crash stream over the
  helpers with 25 s recovery, off or on.

Every column is a pure function of the seed (the injector draws only
from the ``faults:*`` registry streams), so the bit-identical
parallel==serial guarantee holds and CI gates the committed
``BENCH_E23.json`` exactly like every other suite.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

import numpy as np

from repro.experiments.config import SweepConfig
from repro.experiments.plan import SuitePlan, SweepPoint
from repro.experiments.reporting import Table
from repro.faults.plan import (
    AgentFaults,
    CrashHazard,
    FaultPlan,
    GilbertElliott,
    Partition,
)
from repro.sessions.policy import SessionPolicy
from repro.workloads.arrivals import PoissonProcess
from repro.workloads.contention import ContentionConfig, requester_id
from repro.workloads.rates import ConstantRate

#: The sweep's two link regimes: long quiet spells with mild bad-state
#: loss vs frequent long bursts losing most of what they touch.
_CALM = GilbertElliott(p_gb=0.002, p_bg=0.5, loss_good=0.0, loss_bad=0.3)
_BURSTY = GilbertElliott(p_gb=0.02, p_bg=0.1, loss_good=0.01, loss_bad=0.8)

#: Mild agent misbehaviour present in every regime, so award handshakes
#: and stale-proposal rejection are exercised throughout the sweep.
_AGENTS = AgentFaults(drop_propose=0.02, stale_propose=0.02, refuse_award=0.01)

_N_NODES = 512
_N_REQUESTERS = 4
#: Seconds a session tolerates an unreachable member before giving up
#: on the partition healing (the E23 grace window; the 10 s partition
#: heals inside it, the 25 s one does not).
_GRACE = 15.0


def _partition_groups() -> Tuple[Tuple[str, ...], Tuple[str, ...]]:
    """The two sides of every E23 partition: requesters plus the even
    helpers vs the odd helpers — so roughly half of each coalition ends
    up across the cut from its organizer."""
    helpers = _N_NODES - _N_REQUESTERS
    group_a = tuple(requester_id(k) for k in range(_N_REQUESTERS)) + tuple(
        f"n{i}" for i in range(0, helpers, 2)
    )
    group_b = tuple(f"n{i}" for i in range(1, helpers, 2))
    return group_a, group_b


def _e23_plan_for(
    link: GilbertElliott,
    partition_start: float,
    partition_duration: Optional[float],
    crash: bool,
) -> FaultPlan:
    group_a, group_b = _partition_groups()
    partitions = ()
    if partition_duration is not None:
        partitions = (
            Partition(
                start=partition_start,
                duration=partition_duration,
                group_a=group_a,
                group_b=group_b,
            ),
        )
    # ~1 crash/s over 508 helpers keeps ~4% of the fleet down at any
    # instant (25 s reboots) — rare enough that most coalitions never
    # notice, common enough that some lose a member mid-session.
    crashes = (
        CrashHazard(shape=ConstantRate(1.0), recover_after=25.0)
        if crash
        else None
    )
    return FaultPlan(
        link=link, partitions=partitions, crashes=crashes, agents=_AGENTS
    )


def _e23_config(plan: FaultPlan, horizon: float) -> ContentionConfig:
    """One E23 sweep point: the E22 workload shape (constant density,
    K = 4 requesters, streaming sessions) on an unsharded 512-node
    cluster, with the point's fault plan and the partition-grace
    keepalive enabled."""
    return ContentionConfig(
        n_requesters=_N_REQUESTERS,
        families=("movie", "speech", "sensor-fusion", "navigation"),
        # Denser than the default one-per-40 s: several sessions per
        # requester are live at once, so every partition window catches
        # coalitions mid-operation instead of between sessions.
        arrival=PoissonProcess(rate=1.0 / 12.0),
        horizon=horizon,
        n_nodes=_N_NODES,
        area=60.0 * float(np.sqrt(_N_NODES)),
        radio_range=100.0,
        sessions=SessionPolicy(
            operate=True,
            # Probe every 2.5 s so even a short overlap between a
            # session's span and the partition window gets noticed.
            keepalive=2.5,
            partition_grace=_GRACE,
        ),
        faults=plan,
    )


def e23_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Tentpole (ROADMAP: robustness): availability, recovery time and
    the degraded-vs-dropped split under injected faults.

    The headline is the middle of the table: with a partition shorter
    than the grace window, sessions should *degrade and recover in
    place* (recoveries > 0, drop rate near the no-partition regime);
    once the partition outlives the grace window, suspended members
    expire into renegotiations and the drop rate climbs. Availability
    decreases with burstiness and partition length but never collapses
    to zero — the bounded award retries keep admissions landing even on
    lossy links, at a visible retry cost.
    """
    horizon = 60.0 if sweep.quick else 120.0
    partition_start = horizon / 3.0
    regimes = [
        ("calm", _CALM, None, False),
        ("bursty", _BURSTY, None, False),
        ("calm-part10", _CALM, 10.0, False),
        ("bursty-part10", _BURSTY, 10.0, False),
        ("calm-part25", _CALM, 25.0, False),
        ("bursty-part25", _BURSTY, 25.0, False),
        ("calm-part10-crash", _CALM, 10.0, True),
        ("bursty-part25-crash", _BURSTY, 25.0, True),
    ]
    if sweep.quick:
        keep = {"bursty", "calm-part10", "bursty-part25", "bursty-part25-crash"}
        regimes = [r for r in regimes if r[0] in keep]
    table = Table(
        "E23 — fault injection: availability, recovery, degraded vs "
        "dropped (512 nodes)",
        ["fault regime", "availability", "mean recovery (s)",
         "degraded sessions", "drop rate", "award retries"],
        caption="512-node streaming contention (K = 4 requesters, "
                "Poisson arrivals, constant density) under declarative "
                "fault plans: Gilbert–Elliott burst loss on every "
                "negotiation radio leg (calm vs bursty chain), "
                "bidirectional partitions of 10 s (heals inside the "
                "15 s partition-grace window — sessions recover in "
                "place) or 25 s (outlives it — suspended members are "
                "renegotiated), and an optional crash hazard "
                "(1 event/s over the helpers, 25 s reboots). Award "
                "rounds use the "
                "bounded retry/backoff handshake; releases are "
                "idempotent. availability = fraction of admitted-"
                "session time spent OPERATING; recoveries are "
                "DEGRADED→OPERATING episodes. All columns are pure "
                "functions of the seed.",
    )
    points = []
    for label, link, duration, crash in regimes:
        plan = _e23_plan_for(link, partition_start, duration, crash)
        config = _e23_config(plan, horizon)

        def run(seed: int, config=config) -> Dict[str, float]:
            from repro.workloads.contention import run_contention

            result = run_contention(seed, config)
            resilience = result.resilience
            assert resilience is not None  # streaming mode always reports
            row = resilience.metrics()
            row["drop_rate"] = result.metrics()["drop_rate"]
            return row

        points.append(SweepPoint(
            label=label, run=run,
            keys=("availability", "mean_recovery_s", "degraded_sessions",
                  "drop_rate", "award_retries"),
        ))
    return SuitePlan("E23", table, points)

"""The E22 suite: sharded cluster simulation at scale.

One suite, one question: does the :mod:`repro.shard` subsystem carry
the paper's protocol from the 16–128-node clusters of E15/E18 to
**512–4096 nodes** at constant density, with streaming sessions, crash
churn and mobility all running inside the contention window?

Each sweep point is one cluster size. The cluster is partitioned by
:meth:`~repro.shard.partition.ShardGrid.auto` (2 × 2 at 512 up to
4 × 4 at 4096 under the default occupancy target), negotiation stays
shard-local on the per-shard vectorized arenas, mobility ticks take the
delta-rebuild path, and crash churn rebuilds only the victim's shard.
Fleet tables (per-node class + placed position, a pure function of the
seed) are published once per sweep point via
:mod:`repro.shard.sharedmem`, so scheduler workers attach read-only
views instead of re-deriving the fleet — the fork-page/shared-memory
plumbing the ROADMAP's millions-of-users direction needs.

Every metric column except the last is a pure function of the seed —
the bit-identical parallel==serial guarantee holds for them and CI
gates them exactly. The final **sessions/s (wall)** column is
wall-clock throughput (offered sessions over the replication's
measured runtime) and is inherently machine-dependent: it is reported,
trended, and *exempted* from the exact gates via ``tools/bench_diff.py
--wall-columns`` (columns named "(wall)" are excluded from the noise
bands, like the suite's wall time).
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Dict, Optional

import numpy as np

from repro.experiments.config import SweepConfig
from repro.experiments.plan import SuitePlan, SweepPoint
from repro.experiments.reporting import Table
from repro.sessions.policy import SessionPolicy
from repro.workloads.contention import ContentionConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.shard.sharedmem import SharedTables

# repro.shard is imported lazily inside the functions below: the package
# facade (repro/__init__) imports repro.shard, whose runner imports
# repro.workloads, whose registry imports this experiment layer — a
# module-scope import here would close that cycle mid-initialization.


def _e22_config(n_nodes: int, horizon: float) -> ContentionConfig:
    """One E22 sweep point's configuration: constant density (area grows
    with sqrt(nodes), like E18/E19), requester count scaling with the
    cluster, and the streaming-mix churn regime (crash hazard 1/200 s,
    30 J/s streaming drain, random-waypoint mobility)."""
    return ContentionConfig(
        n_requesters=max(2, n_nodes // 128),
        families=("movie", "speech", "sensor-fusion", "navigation"),
        horizon=horizon,
        n_nodes=n_nodes,
        area=60.0 * float(np.sqrt(n_nodes)),
        radio_range=100.0,
        sessions=SessionPolicy(
            operate=True,
            failure_rate=1.0 / 200.0,
            drain=30.0,
            mobility="waypoint",
            mobility_speed=4.0,
        ),
    )


def _tables_name(n_nodes: int, seed: int) -> str:
    return f"e22-{n_nodes}n-s{seed}"


def _attach_tables(n_nodes: int, seed: int) -> Optional["SharedTables"]:
    """The published fleet tables for one replication, or ``None`` when
    they are not reachable (e.g. a spawn-context worker without the
    segment): the runner then re-derives the fleet from the same RNG
    streams, bit-identically — the tables change who pays, never the
    result."""
    from repro.shard.sharedmem import attach

    try:
        return attach(_tables_name(n_nodes, seed))
    except (KeyError, OSError, ValueError):
        return None


def e22_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Tentpole (ROADMAP: spatial sharding): the E15/E20 streaming
    contention workload at 512–4096 nodes on :mod:`repro.shard`.

    Success rate and sustained utility should hold roughly flat across
    sizes — the workload scales with the cluster (K = n/128 requesters,
    constant node density), and negotiation is shard-local, so bigger
    clusters mean *more* neighborhoods, not denser ones. The throughput
    column is the headline: sessions per wall-clock second must stay
    within the same order of magnitude from 512 to 4096 nodes, which is
    exactly what per-shard arenas + delta mobility rebuilds buy (a
    global-arena run would fall off the O(n²)-per-tick cliff; the ≥5×
    delta-rebuild gate is asserted directly by
    ``benchmarks/test_e22_shard.py``).
    """
    from repro.shard import ShardGrid, fleet_tables, publish

    sizes = (512, 1024) if sweep.quick else (512, 1024, 2048, 4096)
    horizon = 120.0 if sweep.quick else 240.0
    table = Table(
        "E22 — sharded cluster simulation at scale "
        "(streaming contention, constant density)",
        ["nodes × shards", "offered sessions", "success rate",
         "sustained utility", "drop rate", "sessions/s (wall)"],
        caption="Spatially sharded clusters (ShardGrid.auto, ~256 nodes "
                "per cell target), K = n/128 requesters with Poisson "
                "arrivals, streaming sessions under crash churn "
                "(hazard 1/200 s), 30 J/s drain and random-waypoint "
                "mobility on the per-shard delta-rebuild path. Area "
                "grows with sqrt(nodes) so density stays constant. "
                "Fleet tables ride repro.shard.sharedmem; workers "
                "attach read-only views. sessions/s (wall) is "
                "wall-clock throughput — machine-dependent by nature, "
                "reported but exempt from the exact CI gates "
                "(bench_diff --wall-columns).",
    )
    points = []
    for n_nodes in sizes:
        config = _e22_config(n_nodes, horizon)
        grid = ShardGrid.auto(config.area, config.radio_range, config.n_nodes)
        # Publish each replication's fleet tables once, in the parent:
        # forked workers inherit the registry (fork-page reuse), spawned
        # ones attach the named shared-memory segment.
        for seed in sweep.effective_seeds:
            publish(_tables_name(n_nodes, seed), fleet_tables(seed, config))

        def run(seed: int, config=config, n_nodes=n_nodes) -> Dict[str, float]:
            from repro.shard import run_sharded_contention

            tables = _attach_tables(n_nodes, seed)
            start = time.perf_counter()
            result = run_sharded_contention(seed, config, tables=tables)
            wall = time.perf_counter() - start
            metrics = result.metrics()
            metrics["sessions_per_sec_wall"] = (
                metrics["offered"] / wall if wall > 0 else 0.0
            )
            return metrics

        points.append(SweepPoint(
            label=f"{n_nodes}n-{grid.n_shards}sh", run=run,
            keys=("offered", "success_rate", "sustained_utility",
                  "drop_rate", "sessions_per_sec_wall"),
        ))
    return SuitePlan("E22", table, points)

"""The E15–E17 and E20 suites: scenario workloads under contention.

Built entirely on :mod:`repro.workloads` — suites *name* scenarios from
the declarative registry and sweep one field via
:meth:`~repro.workloads.registry.ScenarioSpec.replace`, instead of
hand-building clusters and loops:

* **E15** — contention sweep: the ``contention-mix`` scenario with the
  requester count K swept; success, utility, and Jain fairness should
  degrade gracefully as K self-interested requesters share one cluster;
* **E16** — saturation sweep: the ``saturation-trio`` scenario with the
  per-requester Poisson arrival rate swept; concurrency climbs until
  admission control starts refusing sessions;
* **E17** — coalition vs single node for the three **new** service
  families (speech recognition, sensor-fusion telemetry, navigation
  rendering) — the E1 claim re-checked off the paper's beaten path;
* **E20** — streaming sessions under churn: the ``streaming-mix``
  scenario with ``sessions.operate=True``, swept over mobility ×
  arrival rate × session length; admitted coalitions run their
  operation phase *inside* the contention window (crash and battery
  churn, in-place renegotiation — see :mod:`repro.sessions`);
* **E21** — realistic arrival streams: the ``diurnal-mix`` and
  ``flash-crowd`` scenarios (inhomogeneous Poisson arrivals, streaming
  sessions) against a rate-matched homogeneous Poisson control, swept
  over arrival shape × requester count. Same expected offered load —
  different *clustering* in time — so any success/drop-rate separation
  is attributable to burstiness alone.

Each plan builder returns a :class:`~repro.experiments.plan.SuitePlan`
and is registered in :data:`repro.experiments.suites.SUITE_PLANS` /
``ALL_SUITES`` next to E1–E14, so the suites ride the shared work-queue
scheduler with the bit-identical parallel==serial guarantee intact
(every replication is a pure function of its seed; see
:mod:`repro.workloads.contention`).
"""

from __future__ import annotations

from typing import Dict

from repro.core import baselines
from repro.core.negotiation import negotiate
from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.plan import SuitePlan, SweepPoint
from repro.experiments.reporting import Table
from repro.experiments.scenario import build_cluster
from repro.metrics.utility import outcome_utility
from repro.workloads.rates import DiurnalRate
from repro.workloads.registry import get_scenario
from repro.workloads.services import NEW_SERVICE_FAMILIES, build_service


# ==========================================================================
# E15 — contention sweep over requester count
# ==========================================================================


def e15_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension (ROADMAP: multi-requester contention): K self-interested
    requesters with independent Poisson arrival streams share one
    cluster's providers.

    Sweeps the requester count of the ``contention-mix`` scenario
    (movie/speech/sensor-fusion/navigation requesters, 20 nodes). With
    one requester admission hardly ever fails; as K grows, sessions
    overlap, later arrivals see depleted providers, and success/utility
    fall while concurrency rises. Jain fairness over per-requester
    success rates should stay high — the protocol has no requester
    priority, so no one starves.
    """
    counts = (1, 2, 4) if sweep.quick else (1, 2, 4, 8)
    horizon = 120.0 if sweep.quick else 240.0
    base = get_scenario("contention-mix").replace(horizon=horizon)
    table = Table(
        "E15 — multi-requester contention (contention-mix scenario, "
        f"{base.n_nodes} nodes)",
        ["requesters", "offered sessions", "success rate", "mean utility",
         "fairness (Jain)", "mean concurrent"],
        caption="Per-requester Poisson arrivals (one session per 40 s), "
                "families cycling movie/speech/sensor-fusion/navigation; "
                "sessions hold real reservations for their duration. "
                "Fairness = Jain index over per-requester success rates.",
    )
    points = []
    for k in counts:
        spec = base.replace(n_requesters=k)

        def run(seed: int, spec=spec) -> Dict[str, float]:
            return spec.metrics_run(seed)

        points.append(SweepPoint(
            label=k, run=run,
            keys=("offered", "success_rate", "utility", "fairness",
                  "mean_concurrent"),
        ))
    return SuitePlan("E15", table, points)


# ==========================================================================
# E16 — arrival-rate saturation sweep
# ==========================================================================


def e16_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension (ROADMAP: stochastic arrivals): drive one contention
    scenario from a trickle into saturation.

    Sweeps the per-requester Poisson arrival rate of the
    ``saturation-trio`` scenario (speech/movie/navigation on 14 nodes).
    At low rates sessions rarely overlap and nearly all are admitted;
    past the knee the offered load exceeds what the providers can hold
    concurrently and the success rate bends down while peak concurrency
    saturates — the classic admission-control saturation curve.
    """
    rates = (0.01, 0.04) if sweep.quick else (0.005, 0.01, 0.02, 0.04, 0.08)
    horizon = 120.0 if sweep.quick else 240.0
    base = get_scenario("saturation-trio").replace(horizon=horizon)
    table = Table(
        "E16 — arrival-rate saturation (saturation-trio scenario, "
        f"{base.n_nodes} nodes)",
        ["rate (1/s/req)", "offered sessions", "success rate",
         "mean utility", "mean concurrent", "peak concurrent"],
        caption="Homogeneous Poisson arrivals per requester; rate is per "
                "requester, so offered load ≈ 3·rate·horizon sessions. "
                "Sessions hold reservations for 20–30 s each.",
    )
    points = []
    for rate in rates:
        spec = base.replace(arrival_params=(("rate", rate),))

        def run(seed: int, spec=spec) -> Dict[str, float]:
            return spec.metrics_run(seed)

        points.append(SweepPoint(
            label=rate, run=run,
            keys=("offered", "success_rate", "utility", "mean_concurrent",
                  "peak_concurrent"),
        ))
    return SuitePlan("E16", table, points)


# ==========================================================================
# E17 — coalition vs single node on the new service families
# ==========================================================================


def e17_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§1, §4.1) re-checked on the new families: coalitions
    satisfy requests a single weak node cannot — for speech
    recognition, sensor-fusion telemetry, and navigation rendering.

    Mirrors E1's protocol (phone requester, mixed 12-node cluster,
    solo baseline vs coalition negotiation) with the sweep axis being
    the service family instead of the neighborhood size. Each family is
    calibrated so its preferred quality exceeds any handheld
    (coalition necessary) while its worst acceptable quality fits a
    PDA (solo execution possible but heavily degraded).
    """
    families = tuple(NEW_SERVICE_FAMILIES)
    table = Table(
        "E17 — coalition vs single node on the new service families",
        ["family", "single success", "single utility", "coalition success",
         "coalition utility", "coalition size"],
        caption="12-node mixed cluster, phone requester; compare with E1's "
                "movie-playback rows. Calibration targets per family are "
                "documented in docs/workloads.md.",
    )
    points = []
    for family in families:
        def run(seed: int, family=family) -> Dict[str, float]:
            config = ClusterConfig(n_nodes=12)
            topology, providers, _nodes, _registry = build_cluster(config, seed)
            service = build_service(family, requester="requester")
            single = baselines.single_node(service, topology, providers)
            coal = negotiate(service, topology, providers, commit=False)
            return {
                "single_success": float(single.success),
                "single_utility": outcome_utility(single),
                "coal_success": float(coal.success),
                "coal_utility": outcome_utility(coal),
                "coal_size": float(coal.coalition.size),
            }

        points.append(SweepPoint(
            label=family, run=run,
            keys=("single_success", "single_utility", "coal_success",
                  "coal_utility", "coal_size"),
        ))
    return SuitePlan("E17", table, points)


# ==========================================================================
# E20 — streaming sessions under churn
# ==========================================================================


def e20_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension (ROADMAP: operation phase under contention): admitted
    coalitions *stream* — their operation phase runs inside the
    contention window, against crash churn, battery drain and
    (optionally) node mobility.

    Sweeps the ``streaming-mix`` scenario (4 mixed requesters, 20
    nodes, exponential crash hazard 1/200 s per helper, 30 J/s upkeep
    drain per held award) over mobility model × per-requester arrival
    rate × session-length multiplier. Sustained utility — admission
    utility integrated over the planned span — separates from plain
    admission utility as churn rises: renegotiations recover most
    member deaths at a small sustained-utility cost, and longer
    sessions (×2) see more churn per session, pushing the
    renegotiation rate up and dropping the sessions whose retry budget
    runs out.
    """
    mobilities = ("static", "waypoint")
    rates = (1.0 / 60.0,) if sweep.quick else (1.0 / 60.0, 1.0 / 30.0)
    scales = (1.0,) if sweep.quick else (1.0, 2.0)
    horizon = 120.0 if sweep.quick else 240.0
    base = get_scenario("streaming-mix").replace(horizon=horizon)
    table = Table(
        "E20 — streaming sessions under churn (streaming-mix scenario, "
        f"{base.n_nodes} nodes)",
        ["mobility × rate × length", "offered sessions", "success rate",
         "sustained utility", "renegotiation rate", "drop rate"],
        caption="Admitted coalitions run their operation phase inside the "
                "contention window: helper crashes (exp. hazard 1/200 s) and "
                "30 J/s-per-award streaming drain orphan tasks mid-session; "
                "orphans renegotiate in place against the currently contended "
                "cluster (2-attempt budget, 5 s keepalive detection). "
                "Sustained utility integrates delivered utility over the "
                "planned span; renegotiation rate counts attempts per "
                "admitted session; drop rate counts admitted sessions torn "
                "down mid-stream.",
    )
    points = []
    for mobility in mobilities:
        for rate in rates:
            for scale in scales:
                spec = base.replace(
                    arrival_params=(("rate", rate),),
                    sessions=base.sessions.replace(
                        mobility=mobility,
                        mobility_speed=4.0,
                        duration_scale=scale,
                    ),
                )
                label = f"{mobility}-{int(round(1.0 / rate))}s-x{scale:g}"

                def run(seed: int, spec=spec) -> Dict[str, float]:
                    return spec.metrics_run(seed)

                points.append(SweepPoint(
                    label=label, run=run,
                    keys=("offered", "success_rate", "sustained_utility",
                          "renegotiation_rate", "drop_rate"),
                ))
    return SuitePlan("E20", table, points)


# ==========================================================================
# E21 — realistic arrival streams (diurnal / flash crowd vs Poisson)
# ==========================================================================


def e21_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension (ROADMAP: workload realism): does arrival *shape*
    matter, or only the offered load?

    Sweeps arrival shape × requester count over three streaming
    scenarios that share one cluster (20 nodes, movie/speech/
    sensor-fusion/navigation requesters, operation phase on):

    * ``poisson`` — homogeneous control, rate-matched to the diurnal
      shape's mean over the horizon (same expected session count);
    * ``diurnal`` — the ``diurnal-mix`` scenario: a raised-cosine rate
      from one session per 240 s in the trough to one per 30 s at the
      daily peak;
    * ``flash-crowd`` — the ``flash-crowd`` scenario: a quiet baseline
      until ``t = 80 s``, then a 10 s ramp to one session per 8 s that
      decays away exponentially (τ = 30 s).

    Because the diurnal stream offers the same *expected* load as the
    control but concentrates it around the peak, admission failures and
    mid-stream drops cluster there; the flash crowd is the stress case
    — most arrivals land inside one short burst, so success should dip
    well below the Poisson control at equal requester count.
    """
    counts = (2,) if sweep.quick else (2, 4)
    horizon = 120.0 if sweep.quick else 240.0
    diurnal = get_scenario("diurnal-mix").replace(horizon=horizon)
    flash = get_scenario("flash-crowd").replace(horizon=horizon)
    # Rate-matched homogeneous control: equal expected arrivals per
    # requester over the horizon, Λ_diurnal(H) / H.
    dp = dict(diurnal.arrival_params)
    matched = DiurnalRate(
        dp["base_rate"], dp["peak_rate"], dp["period"], dp.get("phase", 0.0)
    ).mean_rate(horizon)
    poisson = diurnal.replace(
        arrival="poisson", arrival_params=(("rate", matched),)
    )
    table = Table(
        "E21 — realistic arrival streams (diurnal / flash crowd vs "
        f"rate-matched Poisson, {diurnal.n_nodes} nodes)",
        ["shape × requesters", "offered sessions", "success rate",
         "sustained utility", "renegotiation rate", "drop rate"],
        caption="Streaming sessions (operation phase inside the contention "
                "window, crash hazard 1/200 s, 30 J/s drain). The Poisson "
                "control is rate-matched to the diurnal shape's mean over "
                "the horizon, so rows at equal requester count offer the "
                "same expected load; differences isolate the effect of "
                "arrival clustering. Flash-crowd arrivals concentrate in "
                "one burst at t = 80 s.",
    )
    points = []
    for shape_name, base in (
        ("poisson", poisson), ("diurnal", diurnal), ("flash-crowd", flash)
    ):
        for k in counts:
            spec = base.replace(n_requesters=k)
            label = f"{shape_name}-{k}req"

            def run(seed: int, spec=spec) -> Dict[str, float]:
                return spec.metrics_run(seed)

            points.append(SweepPoint(
                label=label, run=run,
                keys=("offered", "success_rate", "sustained_utility",
                      "renegotiation_rate", "drop_rate"),
            ))
    return SuitePlan("E21", table, points)

"""Fixed-width result tables, printed the way a paper would.

:class:`Table` accumulates rows of heterogeneous cells (strings, ints,
floats, ``mean±ci`` pairs) and renders an aligned monospace table with a
title and optional caption. The benchmark harness prints these; tests
assert on the underlying ``rows`` data, never on formatting.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from repro.metrics.stats import Summary


def _encode_cell(value: Any) -> Any:
    """A JSON-serializable form of one cell (scalars pass through)."""
    if isinstance(value, Summary):
        return {"__summary__": value.to_dict()}
    return value


def _decode_cell(value: Any) -> Any:
    if isinstance(value, dict) and "__summary__" in value:
        return Summary.from_dict(value["__summary__"])
    return value


def _format_cell(value: Any) -> str:
    if isinstance(value, Summary):
        return f"{value.mean:.3f}±{value.ci_half_width:.3f}"
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


class Table:
    """An experiment result table.

    Args:
        title: Table heading (e.g. ``"E1 — coalition vs single node"``).
        columns: Column headers.
        caption: Optional explanatory footer.
    """

    def __init__(self, title: str, columns: Sequence[str], caption: str = "") -> None:
        if not columns:
            raise ValueError("table needs at least one column")
        self.title = title
        self.columns = tuple(columns)
        self.caption = caption
        self.rows: List[Tuple[Any, ...]] = []

    def add_row(self, *cells: Any) -> None:
        """Append a row; the cell count must match the columns."""
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(tuple(cells))

    def column(self, name: str) -> List[Any]:
        """All raw cells of one column (for test assertions)."""
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise KeyError(f"no column {name!r}") from None
        return [row[idx] for row in self.rows]

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return (
            self.title == other.title
            and self.columns == other.columns
            and self.caption == other.caption
            and self.rows == other.rows
        )

    def to_dict(self) -> Dict[str, Any]:
        """A JSON-serializable form; :meth:`from_dict` round-trips it."""
        return {
            "title": self.title,
            "columns": list(self.columns),
            "caption": self.caption,
            "rows": [[_encode_cell(c) for c in row] for row in self.rows],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Table":
        table = cls(data["title"], data["columns"], caption=data["caption"])
        for row in data["rows"]:
            table.add_row(*(_decode_cell(c) for c in row))
        return table

    def render(self) -> str:
        """The aligned monospace rendering."""
        formatted = [tuple(_format_cell(c) for c in row) for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in formatted)) if formatted
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        sep = "-+-".join("-" * w for w in widths)
        header = " | ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines = [self.title, "=" * max(len(self.title), len(header)), header, sep]
        for row in formatted:
            lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
        if self.caption:
            lines.append("")
            lines.append(self.caption)
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()

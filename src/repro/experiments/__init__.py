"""Experiment harness: scenarios, replication runner, reporting, suites.

Each experiment E1–E14 (see DESIGN.md's per-experiment index) is a
function in :mod:`repro.experiments.suites` returning an
:class:`~repro.experiments.reporting.Table`; the benchmark files under
``benchmarks/`` call them and print the tables, and EXPERIMENTS.md records
the measured shapes.
"""

from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.scenario import build_cluster, build_agent_system, mixed_fleet
from repro.experiments.runner import replicate
from repro.experiments.reporting import Table
from repro.experiments import suites

__all__ = [
    "ClusterConfig",
    "SweepConfig",
    "build_cluster",
    "build_agent_system",
    "mixed_fleet",
    "replicate",
    "Table",
    "suites",
]

"""Experiment harness: scenarios, replication runner, reporting, suites.

Each experiment E1–E14 (see DESIGN.md's per-experiment index) is a
function in :mod:`repro.experiments.suites` returning an
:class:`~repro.experiments.reporting.Table`; the benchmark files under
``benchmarks/`` call them and print the tables, and EXPERIMENTS.md records
the measured shapes.

Batch infrastructure: :func:`~repro.experiments.parallel.replicate_parallel`
fans seed replications over a fork-based worker pool (bit-identical to
serial), :func:`~repro.experiments.parallel.run_batch` runs whole suites
back to back, and :class:`~repro.experiments.store.ResultsStore` persists
each run's config, seeds, wall time, and metric summaries as JSON under
``benchmarks/results/`` — including the ``BENCH_<suite>.json`` reports CI
uploads.
"""

from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.scenario import build_cluster, build_agent_system, mixed_fleet
from repro.experiments.runner import replicate
from repro.experiments.parallel import replicate_parallel, run_batch, run_suite
from repro.experiments.reporting import Table
from repro.experiments.store import Comparison, ResultsStore, RunRecord
from repro.experiments import suites

__all__ = [
    "ClusterConfig",
    "SweepConfig",
    "build_cluster",
    "build_agent_system",
    "mixed_fleet",
    "replicate",
    "replicate_parallel",
    "run_batch",
    "run_suite",
    "Table",
    "Comparison",
    "ResultsStore",
    "RunRecord",
    "suites",
]

"""Experiment harness: scenarios, replication runner, reporting, suites.

Each experiment suite (E1–E14 in :mod:`repro.experiments.suites`,
E15–E17 in :mod:`repro.experiments.workload_suites` — see
``docs/experiments.md`` for the per-suite index) is a
function registered in :data:`repro.experiments.suites.ALL_SUITES` returning an
:class:`~repro.experiments.reporting.Table`; the benchmark files under
``benchmarks/`` call them and print the tables, and EXPERIMENTS.md records
the measured shapes.

Batch infrastructure: each suite decomposes into a
:class:`~repro.experiments.plan.SuitePlan` of ``(sweep point, seed)``
work units; :func:`~repro.experiments.parallel.run_batch` feeds the
units of all requested suites to one shared fork-based
:class:`~repro.experiments.parallel.Scheduler` (bit-identical to
serial), and :class:`~repro.experiments.store.ResultsStore` persists
each run's config, seeds, wall time, and metric summaries as JSON under
``benchmarks/results/`` — including the ``BENCH_<suite>.json`` reports CI
uploads. The full pipeline is documented in ``docs/architecture.md``.
"""

from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.scenario import build_cluster, build_agent_system, mixed_fleet
from repro.experiments.runner import replicate
from repro.experiments.plan import SuitePlan, SweepPoint, WorkUnit
from repro.experiments.parallel import (
    Scheduler,
    replicate_parallel,
    run_batch,
    run_suite,
)
from repro.experiments.reporting import Table
from repro.experiments.store import Comparison, ResultsStore, RunRecord
from repro.experiments import suites

__all__ = [
    "ClusterConfig",
    "SweepConfig",
    "build_cluster",
    "build_agent_system",
    "mixed_fleet",
    "replicate",
    "SuitePlan",
    "SweepPoint",
    "WorkUnit",
    "Scheduler",
    "replicate_parallel",
    "run_batch",
    "run_suite",
    "Table",
    "Comparison",
    "ResultsStore",
    "RunRecord",
    "suites",
]

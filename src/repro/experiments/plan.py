"""Suite plans and work units — the scheduler's unit of parallelism.

PR 1 parallelised *seeds within one sweep point*: each suite looped over
its sweep points and fanned the seeds of the current point over a pool.
With ``seeds < jobs`` that leaves workers idle at every point, and a
multi-suite batch runs its suites strictly one after another.

This module makes the finer structure explicit. A suite is described by
a :class:`SuitePlan`: the (still empty) result :class:`Table` plus an
ordered list of :class:`SweepPoint` entries, one per table row. Each
sweep point carries its replication callable, so the whole batch can be
flattened into ``(suite, sweep_point, seed)`` :class:`WorkUnit` triples
and fed to one shared pool (:class:`repro.experiments.parallel.Scheduler`)
that keeps every worker busy across point and suite boundaries.

Determinism contract
--------------------
Work units only move *where* a replication executes. Reduction happens
in the parent in deterministic order — for every sweep point, rows are
re-assembled in seed order before :func:`summarize_replications` — so
tables built from out-of-order unit results are bit-identical to the
serial loop's.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Sequence, Tuple

from repro.experiments.reporting import Table
from repro.metrics.stats import Summary

#: A replication callable: all randomness must derive from the seed.
#: Canonical home of the alias — runner.py and parallel.py import it.
RunFn = Callable[[int], Dict[str, float]]


@dataclass(frozen=True)
class SweepPoint:
    """One sweep point of a suite — one future table row.

    Attributes:
        label: The row's first cell (neighborhood size, speed, policy
            name, ...), identifying the sweep point.
        run: The replication callable for this point. Must be a pure
            function of its seed (sweep parameters are captured as
            default arguments, PR 1 style, so ``fork`` inherits them
            without pickling).
        keys: Metric keys of ``run``'s result dict, in the order the
            corresponding summaries appear as row cells after the label.
    """

    label: Any
    run: RunFn
    keys: Tuple[str, ...]


@dataclass(frozen=True)
class WorkUnit:
    """One ``(suite, sweep_point, seed)`` replication for the scheduler.

    ``index`` is the unit's position in the deterministic batch
    enumeration (suite order, then point order, then seed order); the
    scheduler reduces results by this index, which is what makes
    out-of-order completion invisible in the output.
    """

    index: int
    suite: str
    point_index: int
    seed_index: int
    seed: int
    run: RunFn


class SuitePlan:
    """A suite decomposed into an empty table plus its sweep points.

    Args:
        suite: Suite id (a :data:`repro.experiments.suites.SUITE_PLANS`
            key, ``"E1"``, ``"E15"``, ...).
        table: The result table, with title/columns/caption set and no
            rows; :meth:`add_point_row` fills it point by point.
        points: The sweep points, in table-row order.
    """

    def __init__(self, suite: str, table: Table, points: Sequence[SweepPoint]) -> None:
        self.suite = suite
        self.table = table
        self.points: List[SweepPoint] = list(points)

    def work_units(self, seeds: Sequence[int], start: int = 0) -> List[WorkUnit]:
        """Flatten the plan into work units, numbered from ``start``.

        Units are enumerated point-major, seed-minor — the exact order
        the serial loop would execute them — so unit indices double as
        the deterministic reduce order.
        """
        units: List[WorkUnit] = []
        index = start
        for point_index, point in enumerate(self.points):
            for seed_index, seed in enumerate(seeds):
                units.append(
                    WorkUnit(
                        index=index,
                        suite=self.suite,
                        point_index=point_index,
                        seed_index=seed_index,
                        seed=seed,
                        run=point.run,
                    )
                )
                index += 1
        return units

    def add_point_row(self, point_index: int, summaries: Dict[str, Summary]) -> None:
        """Append the row for one sweep point from its metric summaries."""
        point = self.points[point_index]
        self.table.add_row(point.label, *(summaries[k] for k in point.keys))

    def reduce(
        self,
        rows_by_unit: Dict[int, Dict[str, float]],
        units: Sequence[WorkUnit],
        seeds: Sequence[int],
    ) -> Table:
        """Assemble the table from (possibly out-of-order) unit results.

        Args:
            rows_by_unit: Raw metric rows keyed by ``WorkUnit.index``.
            units: Exactly this plan's own units (the slice returned by
                its :meth:`work_units` call), in any order. Do not pass
                another plan's units — suite ids are not unique when a
                batch requests the same suite twice.
            seeds: The seed sweep, for the key-consistency check.

        Rows are re-ordered by ``(point_index, seed_index)`` before
        summarizing, so the summaries are bit-identical to a serial run.
        A plan reduces once: reducing again (or after :func:`run_plan`)
        raises instead of appending duplicate rows to the table.
        """
        from repro.experiments.runner import summarize_replications

        if self.table.rows:
            raise RuntimeError(
                f"plan {self.suite} already reduced: its table has rows"
            )
        by_point: Dict[int, List[Tuple[int, Dict[str, float]]]] = {}
        for unit in units:
            by_point.setdefault(unit.point_index, []).append(
                (unit.seed_index, rows_by_unit[unit.index])
            )
        for point_index in range(len(self.points)):
            ordered = [
                row for _, row in
                sorted(by_point[point_index], key=lambda pair: pair[0])
            ]
            self.add_point_row(
                point_index, summarize_replications(ordered, seeds)
            )
        return self.table


def run_plan(plan: SuitePlan, sweep) -> Table:
    """Execute a plan point by point (PR 1 semantics) and fill its table.

    This is the path behind the public ``Table``-returning suite
    callables in :mod:`repro.experiments.suites`: each point's seeds are
    replicated via :func:`repro.experiments.runner.replicate` (serial or
    seed-parallel per ``sweep.jobs``). Batch-level scheduling across
    points and suites lives in :func:`repro.experiments.parallel.run_batch`.

    Plans are single-use (rows append to the plan's own table); build a
    fresh plan per run rather than re-running one.
    """
    from repro.experiments.runner import replicate

    if plan.table.rows:
        raise RuntimeError(
            f"plan {plan.suite} already executed: its table has rows"
        )
    for point_index, point in enumerate(plan.points):
        summary = replicate(point.run, sweep.effective_seeds, jobs=sweep.jobs)
        plan.add_point_row(point_index, summary)
    return plan.table

"""Experiment configuration dataclasses."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Tuple

from repro.resources.node import NodeClass

#: Default device mix of a heterogeneous neighborhood: mostly handhelds,
#: some laptops — the paper's "telephones, PDAs, laptops" population.
DEFAULT_MIX: Mapping[NodeClass, float] = {
    NodeClass.PHONE: 0.3,
    NodeClass.PDA: 0.4,
    NodeClass.LAPTOP: 0.3,
}

#: A laptop-heavier mix for multi-requester contention scenarios: with
#: several phone-class requesters competing, an all-handheld helper pool
#: would make every high-K point fail outright instead of exhibiting the
#: graceful degradation the contention suites measure.
CONTENTION_MIX: Mapping[NodeClass, float] = {
    NodeClass.PHONE: 0.2,
    NodeClass.PDA: 0.35,
    NodeClass.LAPTOP: 0.45,
}

#: Named fleet mixes, so declarative scenario specs
#: (:class:`repro.workloads.registry.ScenarioSpec`) can stay primitive
#: and reference a mix by name instead of carrying an unhashable dict.
FLEET_MIXES: Mapping[str, Mapping[NodeClass, float]] = {
    "default": DEFAULT_MIX,
    "contention": CONTENTION_MIX,
}


@dataclass(frozen=True)
class ClusterConfig:
    """One simulated neighborhood.

    Attributes:
        n_nodes: Total node count, including the requester.
        requester_class: Device class of the requesting node (weak by
            default — the paper's motivating client).
        mix: Class mix for the remaining nodes (weights, normalized).
        area: Side length of the square deployment area (m).
        radio_range: Disc-radio range (m). The default area/range keep a
            neighborhood mostly within one hop, as the paper's one-hop
            broadcast assumes.
    """

    n_nodes: int = 8
    requester_class: NodeClass = NodeClass.PHONE
    mix: Mapping[NodeClass, float] = field(default_factory=lambda: dict(DEFAULT_MIX))
    area: float = 120.0
    radio_range: float = 100.0


@dataclass(frozen=True)
class SweepConfig:
    """Replication settings shared by the experiment suites.

    Attributes:
        seeds: Seeds to replicate each configuration over.
        quick: Shrinks sweeps for smoke tests (used by the test suite).
        jobs: Worker processes. ``1`` runs serially; ``0`` uses every
            core. In a batch run the value sizes the *shared* work-unit
            pool spanning all sweep points and suites; in a direct suite
            call it fans out the seeds of each point. Either way,
            parallel runs are bit-identical to serial ones (see
            :mod:`repro.experiments.parallel`).
    """

    seeds: Tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8)
    quick: bool = False
    jobs: int = 1

    @property
    def effective_seeds(self) -> Tuple[int, ...]:
        return self.seeds[:3] if self.quick else self.seeds

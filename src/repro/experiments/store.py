"""Persistent JSON results store for experiment runs.

Every suite invocation produces a :class:`RunRecord` — the sweep config,
seeds, wall time, and the full result table with per-metric summaries —
which :class:`ResultsStore` persists under a results directory:

* ``<root>/runs/<suite>/<run_id>.json`` — the append-only run archive;
* ``<root>/BENCH_<suite>.json`` — the latest machine-readable bench
  report per suite, the artifact CI uploads and perf tracking diffs.

Records round-trip losslessly (``save`` → ``load`` → ``compare`` reports
*identical*), which is how the determinism guarantee of the parallel
runner is checked: run a suite serially and in parallel, then compare
the two records cell by cell.

Under the shared work-queue scheduler
(:mod:`repro.experiments.parallel`), a record's table is assembled from
work-unit results that may have completed out of order on any worker;
the reduce step re-orders them by (sweep point, seed) first, so the
persisted tables — and therefore ``compare`` — never see scheduling
effects. Only ``wall_time_s`` reflects scheduling: it spans the suite's
first unit starting → its last unit completing, and since suites in a
``jobs > 1`` batch share the pool and interleave, those spans overlap
rather than add up.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from datetime import datetime, timezone
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.experiments.config import SweepConfig
from repro.experiments.reporting import Table
from repro.metrics.stats import Summary

#: Default results root, relative to the *current working directory*
#: (run the CLI from the repo root — or pass ``--out`` — so artifacts
#: land in the checkout's ``benchmarks/results/``).
DEFAULT_ROOT = Path("benchmarks") / "results"

#: Schema version stamped into every persisted record. Version 2 added
#: per-seed ``samples`` and the percentile-bootstrap ``boot_lo`` /
#: ``boot_hi`` fields to every summary cell (see
#: :mod:`repro.metrics.bootstrap`); version-1 records still load, their
#: summaries just carry ``None`` for the new fields.
SCHEMA_VERSION = 2


@dataclass(frozen=True)
class RunRecord:
    """One suite invocation: config, timing, and the result table.

    ``wall_time_s`` spans the suite's first work unit starting → its
    last unit completing. Serially that is exactly the suite's own
    duration; in a shared-pool batch
    (:func:`repro.experiments.parallel.run_batch`) suites execute
    interleaved, so spans overlap across suites. Timing is *excluded*
    from :meth:`ResultsStore.compare`, which only judges results.
    """

    suite: str
    run_id: str
    timestamp: str
    seeds: Tuple[int, ...]
    quick: bool
    jobs: int
    wall_time_s: float
    table: Table

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SCHEMA_VERSION,
            "suite": self.suite,
            "run_id": self.run_id,
            "timestamp": self.timestamp,
            "seeds": list(self.seeds),
            "quick": self.quick,
            "jobs": self.jobs,
            "wall_time_s": self.wall_time_s,
            "table": self.table.to_dict(),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RunRecord":
        return cls(
            suite=data["suite"],
            run_id=data["run_id"],
            timestamp=data["timestamp"],
            seeds=tuple(int(s) for s in data["seeds"]),
            quick=bool(data["quick"]),
            jobs=int(data["jobs"]),
            wall_time_s=float(data["wall_time_s"]),
            table=Table.from_dict(data["table"]),
        )

    def summaries(self) -> Dict[str, Dict[str, Summary]]:
        """Per-row metric summaries, keyed by the first cell of each row.

        The first column of every E-suite table is the sweep point
        (size, speed, policy name, ...), so this is "sweep point →
        metric column → summary".
        """
        out: Dict[str, Dict[str, Summary]] = {}
        for row in self.table.rows:
            point = str(row[0])
            out[point] = {
                column: cell
                for column, cell in zip(self.table.columns[1:], row[1:])
                if isinstance(cell, Summary)
            }
        return out


def new_run_record(
    suite: str,
    table: Table,
    sweep: SweepConfig,
    wall_time_s: float,
) -> RunRecord:
    """Stamp a freshly produced table into a persistable record."""
    now = datetime.now(timezone.utc)
    return RunRecord(
        suite=suite,
        run_id=f"{suite}-{now.strftime('%Y%m%dT%H%M%S%f')}",
        timestamp=now.isoformat(),
        seeds=tuple(sweep.effective_seeds),
        quick=sweep.quick,
        jobs=sweep.jobs,
        wall_time_s=wall_time_s,
        table=table,
    )


@dataclass(frozen=True)
class Comparison:
    """Outcome of comparing two run records' results."""

    identical: bool
    differences: Tuple[str, ...]


class ResultsStore:
    """Directory-backed store of experiment run records.

    The store is the determinism contract's referee: ``BENCH_<suite>.json``
    written by a ``--jobs N`` run must load back equal (per
    :meth:`compare`) to the one written by a serial run, which CI
    asserts on every push.

    Args:
        root: Results directory (created on first write). Defaults to
            ``benchmarks/results`` relative to the current directory.
    """

    def __init__(self, root: Union[Path, str] = DEFAULT_ROOT) -> None:
        self.root = Path(root)

    @property
    def runs_dir(self) -> Path:
        return self.root / "runs"

    # -- persistence --------------------------------------------------------

    def save(self, record: RunRecord) -> Path:
        """Archive a record under ``runs/<suite>/<run_id>.json``."""
        path = self.runs_dir / record.suite / f"{record.run_id}.json"
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record.to_dict(), indent=2) + "\n")
        return path

    def load(self, path: Union[Path, str]) -> RunRecord:
        """Load a record previously written by :meth:`save`."""
        return RunRecord.from_dict(json.loads(Path(path).read_text()))

    def list_runs(self, suite: Optional[str] = None) -> List[Path]:
        """Archived record paths, oldest first (run ids sort by time)."""
        if not self.runs_dir.is_dir():
            return []
        pattern = f"{suite}/*.json" if suite else "*/*.json"
        return sorted(self.runs_dir.glob(pattern))

    def latest(self, suite: str) -> Optional[RunRecord]:
        """The most recent archived record for a suite, if any."""
        paths = self.list_runs(suite)
        return self.load(paths[-1]) if paths else None

    # -- bench reports ------------------------------------------------------

    def bench_path(self, suite: str) -> Path:
        return self.root / f"BENCH_{suite}.json"

    def write_bench(self, record: RunRecord) -> Path:
        """Write/overwrite the suite's ``BENCH_<suite>.json`` report."""
        path = self.bench_path(record.suite)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(record.to_dict(), indent=2) + "\n")
        return path

    def load_bench(self, suite: str) -> RunRecord:
        """Load the suite's latest bench report."""
        return self.load(self.bench_path(suite))

    # -- comparison ---------------------------------------------------------

    @staticmethod
    def compare(a: RunRecord, b: RunRecord) -> Comparison:
        """Compare two records' *results*, ignoring timing and identity.

        Two runs are identical when they cover the same suite, seeds,
        and sweep points with exactly equal metric summaries — the
        criterion for the parallel-vs-serial determinism guarantee.
        Wall time, run id, timestamp, and job count may differ.
        """
        diffs: List[str] = []
        if a.suite != b.suite:
            diffs.append(f"suite: {a.suite!r} != {b.suite!r}")
        if a.seeds != b.seeds:
            diffs.append(f"seeds: {a.seeds} != {b.seeds}")
        ta, tb = a.table, b.table
        if ta.columns != tb.columns:
            diffs.append(f"columns: {ta.columns} != {tb.columns}")
        if len(ta.rows) != len(tb.rows):
            diffs.append(f"row count: {len(ta.rows)} != {len(tb.rows)}")
        if not diffs:
            for i, (row_a, row_b) in enumerate(zip(ta.rows, tb.rows)):
                for column, cell_a, cell_b in zip(ta.columns, row_a, row_b):
                    if cell_a != cell_b:
                        diffs.append(
                            f"row {i} [{column}]: {cell_a} != {cell_b}"
                        )
        return Comparison(identical=not diffs, differences=tuple(diffs))

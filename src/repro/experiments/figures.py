"""ASCII figure rendering for experiment series.

The paper has no figures; the evaluation harness nevertheless renders its
sweep series as monospace line charts (F1–F3) so trends are visible
directly in terminal output and archived artifacts — the closest
equivalent of a paper's figures in a text-only pipeline.

:class:`AsciiChart` plots one or more named series over a shared x-axis
on a character grid with axis labels and a legend.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

#: Plot glyphs assigned to series in order.
_GLYPHS = "*o+x#@%"


class AsciiChart:
    """A monospace line chart.

    Args:
        title: Chart heading.
        x_label: X-axis label.
        y_label: Y-axis label.
        width: Plot-area width in characters.
        height: Plot-area height in rows.
    """

    def __init__(
        self,
        title: str,
        x_label: str = "x",
        y_label: str = "y",
        width: int = 60,
        height: int = 16,
    ) -> None:
        if width < 10 or height < 4:
            raise ValueError("chart area too small")
        self.title = title
        self.x_label = x_label
        self.y_label = y_label
        self.width = width
        self.height = height
        self._series: Dict[str, List[Tuple[float, float]]] = {}

    def add_series(self, name: str, xs: Sequence[float], ys: Sequence[float]) -> None:
        """Add one named series (points sorted by x)."""
        if len(xs) != len(ys):
            raise ValueError("xs and ys must have equal length")
        if len(xs) == 0:
            raise ValueError(f"series {name!r} is empty")
        if name in self._series:
            raise ValueError(f"duplicate series {name!r}")
        points = sorted(zip((float(x) for x in xs), (float(y) for y in ys)))
        self._series[name] = list(points)

    def _bounds(self) -> Tuple[float, float, float, float]:
        all_x = [x for pts in self._series.values() for x, _ in pts]
        all_y = [y for pts in self._series.values() for _, y in pts]
        x_lo, x_hi = min(all_x), max(all_x)
        y_lo, y_hi = min(all_y), max(all_y)
        if x_hi == x_lo:
            x_hi = x_lo + 1.0
        if y_hi == y_lo:
            y_hi = y_lo + 1.0
        return x_lo, x_hi, y_lo, y_hi

    def render(self) -> str:
        """Render the chart to a multi-line string."""
        if not self._series:
            raise ValueError("no series to plot")
        x_lo, x_hi, y_lo, y_hi = self._bounds()
        grid = [[" "] * self.width for _ in range(self.height)]

        def to_cell(x: float, y: float) -> Tuple[int, int]:
            col = round((x - x_lo) / (x_hi - x_lo) * (self.width - 1))
            row = round((y - y_lo) / (y_hi - y_lo) * (self.height - 1))
            return self.height - 1 - row, col

        # Draw linear interpolation between consecutive points so trends
        # read as lines, then overdraw the data points with the glyph.
        for idx, (name, points) in enumerate(self._series.items()):
            glyph = _GLYPHS[idx % len(_GLYPHS)]
            for (x0, y0), (x1, y1) in zip(points, points[1:]):
                steps = max(
                    abs(to_cell(x1, y1)[1] - to_cell(x0, y0)[1]),
                    abs(to_cell(x1, y1)[0] - to_cell(x0, y0)[0]),
                    1,
                )
                for s in range(steps + 1):
                    t = s / steps
                    r, c = to_cell(x0 + (x1 - x0) * t, y0 + (y1 - y0) * t)
                    if grid[r][c] == " ":
                        grid[r][c] = "."
            for x, y in points:
                r, c = to_cell(x, y)
                grid[r][c] = glyph

        lines = [self.title, "=" * max(len(self.title), self.width + 10)]
        y_labels = [f"{y_hi:.3g}", f"{(y_lo + y_hi) / 2:.3g}", f"{y_lo:.3g}"]
        label_width = max(len(s) for s in y_labels) + 1
        for r, row in enumerate(grid):
            if r == 0:
                label = y_labels[0]
            elif r == self.height // 2:
                label = y_labels[1]
            elif r == self.height - 1:
                label = y_labels[2]
            else:
                label = ""
            lines.append(f"{label:>{label_width}} |" + "".join(row))
        lines.append(f"{'':>{label_width}} +" + "-" * self.width)
        x_axis = f"{x_lo:.3g}".ljust(self.width - 8) + f"{x_hi:.3g}"
        lines.append(f"{'':>{label_width}}  {x_axis}   ({self.x_label})")
        legend = "   ".join(
            f"{_GLYPHS[i % len(_GLYPHS)]} {name}"
            for i, name in enumerate(self._series)
        )
        lines.append(f"  y: {self.y_label}    {legend}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()


def figure_from_table(
    table,
    x_column: str,
    y_columns: Sequence[str],
    title: str = "",
    y_label: str = "value",
) -> AsciiChart:
    """Build a chart from a :class:`~repro.experiments.reporting.Table`.

    Mean values are extracted from :class:`~repro.metrics.stats.Summary`
    cells; plain numeric cells pass through.
    """
    from repro.metrics.stats import Summary

    def value(cell) -> float:
        if isinstance(cell, Summary):
            return cell.mean
        return float(cell)

    xs = [value(c) for c in table.column(x_column)]
    chart = AsciiChart(
        title or table.title, x_label=x_column, y_label=y_label
    )
    for name in y_columns:
        chart.add_series(name, xs, [value(c) for c in table.column(name)])
    return chart

"""Scenario builders: node fleets, clusters, agent systems."""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.agents.system import AgentSystem
from repro.experiments.config import ClusterConfig
from repro.network.mobility import MobilityModel, StaticPlacement
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.kinds import ResourceKind
from repro.resources.node import NODE_CLASS_PROFILES, Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.sim.rng import RngRegistry


def _append_mixed_helpers(
    nodes: List[Node], config: ClusterConfig, rng: np.random.Generator
) -> List[Node]:
    """Fill ``nodes`` up to ``config.n_nodes`` with class-mix draws.

    The single home of the weighted class draw, so the per-draw rng
    consumption of every fleet builder is identical by construction.
    """
    classes = list(config.mix)  # insertion order == FLEET_MIXES declaration order
    weights = np.asarray([config.mix[c] for c in classes], dtype=float)
    weights = weights / weights.sum()
    for i in range(config.n_nodes - len(nodes)):
        cls = classes[int(rng.choice(len(classes), p=weights))]
        nodes.append(Node(f"n{i}", node_class=cls))
    return nodes


def mixed_fleet(
    config: ClusterConfig,
    rng: np.random.Generator,
    requester_id: str = "requester",
) -> List[Node]:
    """Build a heterogeneous node fleet per the cluster config.

    The first node is the requester (its device class fixed by the
    config); the rest are drawn from the class mix.
    """
    if config.n_nodes < 1:
        raise ValueError("need at least one node")
    return _append_mixed_helpers(
        [Node(requester_id, node_class=config.requester_class)], config, rng
    )


def multi_requester_fleet(
    config: ClusterConfig,
    rng: np.random.Generator,
    n_requesters: int,
    requester_prefix: str = "req",
) -> List[Node]:
    """:func:`mixed_fleet` generalized to several requester nodes.

    The first ``n_requesters`` nodes are requesters (``req0`` ...,
    all of the config's requester class); the rest are drawn from the
    class mix exactly as :func:`mixed_fleet` draws them (both delegate
    to the same helper loop). Used by the contention scenarios
    (:mod:`repro.workloads.contention`).
    """
    if not (1 <= n_requesters <= config.n_nodes):
        raise ValueError(
            f"n_requesters must be in [1, {config.n_nodes}], got {n_requesters}"
        )
    requesters = [
        Node(f"{requester_prefix}{k}", node_class=config.requester_class)
        for k in range(n_requesters)
    ]
    return _append_mixed_helpers(requesters, config, rng)


def assemble_cluster(
    nodes: List[Node],
    config: ClusterConfig,
    registry: RngRegistry,
) -> Tuple[Topology, Dict[str, QoSProvider]]:
    """Place a fleet and wrap it in a topology plus per-node providers.

    The shared back half of :func:`build_cluster` and the contention
    builder (:func:`repro.workloads.contention.build_contention_cluster`):
    placement draws from the registry's ``placement`` stream, radios use
    the config's disc range.
    """
    placement = StaticPlacement(config.area, config.area, registry.stream("placement"))
    placement.place(nodes)
    topology = Topology(nodes, DiscRadio(range_m=config.radio_range))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    return topology, providers


def build_cluster(
    config: ClusterConfig,
    seed: int,
    requester_id: str = "requester",
) -> Tuple[Topology, Dict[str, QoSProvider], List[Node], RngRegistry]:
    """A static one-hop-ish neighborhood for synchronous experiments.

    Returns the topology, a provider per node, the node list (requester
    first), and the RNG registry for further draws.
    """
    registry = RngRegistry(seed)
    nodes = mixed_fleet(config, registry.stream("fleet"), requester_id)
    topology, providers = assemble_cluster(nodes, config, registry)
    return topology, providers, nodes, registry


def build_agent_system(
    config: ClusterConfig,
    seed: int,
    mobility: Optional[MobilityModel] = None,
    reliable_channel: bool = False,
    requester_id: str = "requester",
    **system_kwargs,
) -> AgentSystem:
    """A full agent deployment for protocol-level experiments."""
    registry = RngRegistry(seed)
    nodes = mixed_fleet(config, registry.stream("fleet"), requester_id)
    return AgentSystem(
        nodes,
        seed=seed,
        radio=DiscRadio(range_m=config.radio_range),
        mobility=mobility,
        reliable_channel=reliable_channel,
        **system_kwargs,
    )


def uniform_fleet(
    n_nodes: int,
    cpu_mean: float,
    cpu_spread: float,
    rng: np.random.Generator,
    requester_id: str = "requester",
) -> List[Node]:
    """Fleet with controlled CPU heterogeneity (for E7).

    Node CPU capacities are drawn uniformly from
    ``[cpu_mean·(1−spread), cpu_mean·(1+spread)]``; ``spread=0`` gives a
    homogeneous fleet of identical total compute. Other resources follow
    the PDA profile scaled by the same factor.
    """
    if not (0.0 <= cpu_spread <= 1.0):
        raise ValueError("cpu_spread must be in [0, 1]")
    base = NODE_CLASS_PROFILES[NodeClass.PDA]
    base_cpu = base.get(ResourceKind.CPU)
    nodes = []
    for i in range(n_nodes):
        node_id = requester_id if i == 0 else f"n{i - 1}"
        factor = float(
            rng.uniform(1.0 - cpu_spread, 1.0 + cpu_spread)
        ) * (cpu_mean / base_cpu)
        nodes.append(
            Node(node_id, node_class=NodeClass.PDA, capacity=base.scaled(factor))
        )
    return nodes

"""The experiment suites (the paper’s missing evaluation section).

E1–E14 and the E18/E19 scale sweeps live in this module; the
scenario-generation suites E15–E17
(:mod:`repro.experiments.workload_suites`, built on
:mod:`repro.workloads`) are imported and registered at the bottom so
:data:`SUITE_PLANS` and :data:`ALL_SUITES` stay the single sources of
truth for "every suite".

Each suite is written as a *plan builder*: a function taking a
:class:`~repro.experiments.config.SweepConfig` and returning a
:class:`~repro.experiments.plan.SuitePlan` — the empty result table plus
one :class:`~repro.experiments.plan.SweepPoint` per row, each carrying
its replication callable. Two consumers exist:

* the public ``Table``-returning callables in :data:`ALL_SUITES`
  (``e1_coalition_vs_single`` ...), which run the plan point by point —
  the interface the benchmarks and tests call directly;
* the shared work-queue scheduler
  (:func:`~repro.experiments.parallel.run_batch`), which flattens the
  plans of a whole batch into ``(suite, sweep_point, seed)`` work units
  and fans them over one pool, filling idle workers across sweep points
  and suites.

Both paths produce bit-identical tables. Benchmarks print the tables,
and ``docs/experiments.md`` documents what each suite measures, its
sweep axis, and the paper claim it checks.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

import numpy as np

from repro.core import baselines
from repro.core.evaluation import ProposalEvaluator, WeightScheme
from repro.core.formulation import formulate
from repro.core.negotiation import negotiate, release_coalition
from repro.core.operation import run_operation_phase
from repro.core.proposal import Proposal
from repro.core.reward import local_reward
from repro.core.selection import SelectionPolicy
from repro.experiments.config import ClusterConfig, SweepConfig
from repro.experiments.plan import SuitePlan, SweepPoint, run_plan
from repro.experiments.reporting import Table
from repro.experiments.scenario import (
    build_agent_system,
    build_cluster,
    uniform_fleet,
)
from repro.metrics.utility import assignment_utility, outcome_utility
from repro.network.mobility import GroupMobility, RandomWaypoint
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.qos import catalog
from repro.qos.levels import DegradationLadder
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.experiments.fault_suites import e23_plan
from repro.experiments.shard_suites import e22_plan
from repro.experiments.workload_suites import (
    e15_plan,
    e16_plan,
    e17_plan,
    e20_plan,
    e21_plan,
)
from repro.services import workload
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def _table_suite(
    builder: Callable[[SweepConfig], SuitePlan], name: str
) -> Callable[[SweepConfig], Table]:
    """The public ``Table``-returning callable for a plan builder.

    Keeps the PR 1 interface (``suite(sweep) -> Table``) working for
    benchmarks and tests while the scheduler consumes the plans.
    """

    def suite(sweep: SweepConfig = SweepConfig()) -> Table:
        return run_plan(builder(sweep), sweep)

    suite.__name__ = name
    suite.__qualname__ = name
    suite.__doc__ = builder.__doc__
    return suite


# ==========================================================================
# E1 — coalition vs single node across neighborhood sizes
# ==========================================================================


def e1_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§1, §4.1): coalitions satisfy requests a single node cannot.

    A weak (phone-class) requester asks for full-quality movie playback.
    We sweep the neighborhood size and compare the coalition allocator
    against the requester working alone, on success rate and utility.
    """
    sizes = (2, 4, 8, 16) if sweep.quick else (2, 4, 8, 16, 24)
    table = Table(
        "E1 — coalition vs single node (movie playback, phone requester)",
        ["nodes", "single success", "single utility", "coalition success",
         "coalition utility", "coalition size"],
        caption="Mean over seeds; utility in [0,1], 1 = every attribute at "
                "the user's preferred value.",
    )
    points = []
    for n in sizes:
        def run(seed: int, n=n) -> Dict[str, float]:
            config = ClusterConfig(n_nodes=n)
            topology, providers, nodes, _ = build_cluster(config, seed)
            service = workload.movie_playback_service(requester="requester")
            single = baselines.single_node(service, topology, providers)
            coal = negotiate(service, topology, providers, commit=False)
            return {
                "single_success": float(single.success),
                "single_utility": outcome_utility(single),
                "coal_success": float(coal.success),
                "coal_utility": outcome_utility(coal),
                "coal_size": float(coal.coalition.size),
            }

        points.append(SweepPoint(
            label=n, run=run,
            keys=("single_success", "single_utility", "coal_success",
                  "coal_utility", "coal_size"),
        ))
    return SuitePlan("E1", table, points)


# ==========================================================================
# E2 — the eq. 2–5 evaluator picks proposals closest to preferences
# ==========================================================================


def _random_admissible_proposal(
    request, rng: np.random.Generator, task_id: str = "t", node_id: str = "n"
) -> Proposal:
    """A uniformly random proposal over the request's acceptable ladders."""
    ladder = DegradationLadder.from_request(request)
    values = {}
    for attr in request.attribute_names:
        options = ladder.ladder(attr)
        values[attr] = options[int(rng.integers(len(options)))]
    return Proposal(task_id=task_id, node_id=node_id, values=values)


def e2_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§6): the distance evaluator selects the proposal whose
    values are closest to the user's preferences.

    For pools of random admissible proposals, compare the utility of the
    eq. 2 winner against a random pick and the pool's true best/worst.
    """
    pool_sizes = (2, 5, 10) if sweep.quick else (2, 5, 10, 20, 50)
    request = catalog.surveillance_request()
    table = Table(
        "E2 — evaluator selection quality (surveillance request)",
        ["pool size", "eq.2 winner utility", "random pick utility",
         "pool best utility", "pool worst utility", "regret vs best"],
        caption="eq.2 winner should track the pool best (zero regret): the "
                "evaluator is exactly the utility metric's argmin.",
    )
    evaluator = ProposalEvaluator(request)
    points = []
    for pool_size in pool_sizes:
        def run(seed: int, pool_size=pool_size) -> Dict[str, float]:
            rng = RngRegistry(seed).stream("e2")
            pool = [
                _random_admissible_proposal(request, rng, node_id=f"n{i}")
                for i in range(pool_size)
            ]
            utilities = [
                assignment_utility(request, dict(p.values)) for p in pool
            ]
            winner = min(pool, key=evaluator.distance)
            winner_u = assignment_utility(request, dict(winner.values))
            random_u = utilities[int(rng.integers(len(pool)))]
            return {
                "winner": winner_u,
                "random": random_u,
                "best": max(utilities),
                "worst": min(utilities),
                "regret": max(utilities) - winner_u,
            }

        points.append(SweepPoint(
            label=pool_size, run=run,
            keys=("winner", "random", "best", "worst", "regret"),
        ))
    return SuitePlan("E2", table, points)


# ==========================================================================
# E3 — degradation heuristic: reward under rising load
# ==========================================================================


def _degrade_until_schedulable(
    task, capacity_fraction: float, strategy: str, rng: np.random.Generator
) -> Tuple[float, float, bool]:
    """One degradation run on a single node with scaled-down capacity.

    The node's capacity interpolates between the demand of the worst
    acceptable level (fraction 0) and the preferred level (fraction 1),
    so ``capacity_fraction`` is exactly "how much of the quality-dependent
    headroom exists" and every fraction admits *some* acceptable level.

    Returns (eq.1 reward, utility, feasible).
    """
    ladder = task.ladder()
    top_demand = task.demand_at(ladder.top().values())
    bottom_demand = task.demand_at(ladder.bottom().values())
    span = top_demand.minus_clamped(bottom_demand)
    node = Node(
        "solo",
        capacity=bottom_demand + span.scaled(capacity_fraction)
        + Capacity.of(energy=1e9),  # isolate rate-resource pressure
    )
    provider = QoSProvider(node)

    if strategy == "paper":
        result = formulate(
            [task],
            lambda a: provider.can_serve(task.demand_at(a[task.task_id].values())),
        )
        assignment = result.assignments[task.task_id]
        feasible = result.feasible
    else:
        assignment = ladder.top()
        feasible = True
        while not provider.can_serve(task.demand_at(assignment.values())):
            options = [
                a for a in assignment.degradable_attributes()
                if assignment.degrade(a).respects_dependencies()
            ]
            if not options:
                feasible = False
                break
            if strategy == "random":
                attr = options[int(rng.integers(len(options)))]
            else:  # round-robin: rotate by current total degradation
                attr = options[assignment.total_degradation() % len(options)]
            assignment = assignment.degrade(attr)

    reward = local_reward(assignment)
    utility = assignment_utility(task.request, assignment.values())
    return reward, utility, feasible


def e3_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§5, eq. 1): minimum-reward-decrease degradation retains more
    reward/utility than uninformed degradation under the same load.
    """
    fractions = (1.0, 0.7, 0.5) if sweep.quick else (1.0, 0.8, 0.6, 0.5, 0.4, 0.3)
    service = workload.movie_playback_service(requester="r")
    task = service.tasks[0]
    table = Table(
        "E3 — degradation strategies under load (video decode task)",
        ["capacity fraction", "paper reward", "random reward", "round-robin reward",
         "paper utility", "random utility"],
        caption="Capacity fraction = share of the quality-dependent resource "
                "headroom available (1.0 admits the preferred level, 0.0 "
                "only the worst acceptable one); lower = more degradation "
                "forced.",
    )
    points = []
    for fraction in fractions:
        def run(seed: int, fraction=fraction) -> Dict[str, float]:
            rng = RngRegistry(seed).stream("e3")
            paper_r, paper_u, _ = _degrade_until_schedulable(task, fraction, "paper", rng)
            rand_r, rand_u, _ = _degrade_until_schedulable(task, fraction, "random", rng)
            rr_r, _, _ = _degrade_until_schedulable(task, fraction, "round-robin", rng)
            return {
                "paper_reward": paper_r,
                "random_reward": rand_r,
                "rr_reward": rr_r,
                "paper_utility": paper_u,
                "random_utility": rand_u,
            }

        points.append(SweepPoint(
            label=fraction, run=run,
            keys=("paper_reward", "random_reward", "rr_reward",
                  "paper_utility", "random_utility"),
        ))
    return SuitePlan("E3", table, points)


# ==========================================================================
# E4 — protocol scalability with neighborhood size
# ==========================================================================


def _agent_protocol_points(sizes: Tuple[int, ...]) -> List[SweepPoint]:
    """One sweep point per node count of the agent-based movie-playback
    protocol run — the measurement body shared by E4 and its E18 scale
    sweep, so the two suites can never drift apart in what they measure.
    """
    points = []
    for n in sizes:
        def run(seed: int, n=n) -> Dict[str, float]:
            config = ClusterConfig(n_nodes=n, area=100.0)
            system = build_agent_system(config, seed, reliable_channel=True)
            service = workload.movie_playback_service(requester="requester")
            start = system.engine.now
            outcome = system.negotiate(service)
            elapsed = system.engine.now - start
            assert outcome is not None
            return {
                "messages": float(system.network.sent_count),
                "time": elapsed,
                "success": float(outcome.success),
                "proposals": float(outcome.proposals_received),
            }

        points.append(SweepPoint(
            label=n, run=run,
            keys=("messages", "time", "success", "proposals"),
        ))
    return points


def e4_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§1, §4.2): the distributed protocol scales with node count.

    Agent-based negotiation on the simulated network; messages should grow
    linearly in the audience and negotiation time stays bounded by the
    proposal window + award round-trips.
    """
    sizes = (4, 8, 16) if sweep.quick else (4, 8, 16, 32, 64)
    table = Table(
        "E4 — protocol scalability (agent-based, movie playback)",
        ["nodes", "messages", "sim time (s)", "success", "proposals"],
        caption="Messages = every radio transmission the protocol makes "
                "(CFP copies, bundled PROPOSE replies, awards, "
                "confirmations); sim time = CFP broadcast to outcome "
                "delivery.",
    )
    return SuitePlan("E4", table, _agent_protocol_points(sizes))


# ==========================================================================
# E5 — mobility: success under topology churn
# ==========================================================================


def e5_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§1): coalitions form opportunistically "as nodes move in
    range of each other".

    Nodes follow random waypoint in an area larger than one radio disc,
    so the requester's neighborhood is partial and keeps changing. Two
    opposing effects are measured across speeds:

    * **opportunity** — moving nodes bring fresh candidates into range
      between requests (distinct partners / mean candidates grow);
    * **churn risk** — nodes drifting away mid-negotiation lose
      messages (award timeouts, fall-throughs).

    Between consecutive requests the run idles 30 s of simulated time, so
    the topology at each request is genuinely resampled.
    """
    speeds = (0.0, 5.0) if sweep.quick else (0.0, 1.0, 3.0, 6.0, 12.0)
    table = Table(
        "E5 — mobility and opportunism (random waypoint, 12 nodes)",
        ["speed (m/s)", "success rate", "mean utility", "mean candidates",
         "distinct partners", "messages lost"],
        caption="8 sequential movie requests per run, 30 s apart, mobility "
                "ticking at 1 s. Static isolated requesters stay isolated; "
                "mobility brings candidates into range (opportunism) but "
                "loses more messages in flight (churn).",
    )
    n_requests = 4 if sweep.quick else 8
    points = []
    for speed in speeds:
        def run(seed: int, speed=speed) -> Dict[str, float]:
            registry = RngRegistry(seed)
            config = ClusterConfig(n_nodes=12, area=220.0)
            mobility = RandomWaypoint(
                width=220.0, height=220.0,
                speed_min=0.0, speed_max=speed, pause=1.0,
                rng=registry.stream("mobility"),
            )
            system = build_agent_system(config, seed, mobility=mobility)
            system.start_mobility_process(tick=1.0, until=n_requests * 40.0)
            outcomes = []
            partners: set = set()
            for r in range(n_requests):
                service = workload.movie_playback_service(
                    requester="requester", name=f"movie-{r}"
                )
                outcome = system.negotiate(service)
                if outcome is not None:
                    outcomes.append(outcome)
                    partners |= set(outcome.coalition.members)
                    release_coalition(outcome.coalition, system.providers,
                                      system.engine.now)
                # Idle until the next request so mobility resamples range.
                system.engine.run(until=system.engine.now + 30.0)
            if not outcomes:
                return {"success": 0.0, "utility": 0.0, "candidates": 0.0,
                        "partners": 0.0,
                        "lost": float(system.network.lost_count)}
            return {
                "success": float(np.mean([o.success for o in outcomes])),
                "utility": float(np.mean([outcome_utility(o) for o in outcomes])),
                "candidates": float(np.mean([len(o.candidates) for o in outcomes])),
                "partners": float(len(partners)),
                "lost": float(system.network.lost_count),
            }

        points.append(SweepPoint(
            label=speed, run=run,
            keys=("success", "utility", "candidates", "partners", "lost"),
        ))
    return SuitePlan("E5", table, points)


# ==========================================================================
# E6 — tie-breaking ablation
# ==========================================================================


def e6_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§4.2): the comm-cost and coalition-size tie-breaks cut
    operational overhead without sacrificing QoS distance.
    """
    table = Table(
        "E6 — selection tie-break ablation (16-node cluster, 2 services)",
        ["policy", "total distance", "comm cost", "coalition size", "success"],
        caption="Same proposals, different selection. Distance should be "
                "equal (tie-breaks only fire on distance ties); comm cost "
                "and size should favour the full triple.",
    )
    policies = {
        "distance only": SelectionPolicy(use_comm_cost=False, use_coalition_size=False),
        "+ comm cost": SelectionPolicy(use_comm_cost=True, use_coalition_size=False),
        "+ size only": SelectionPolicy(use_comm_cost=False, use_coalition_size=True),
        "full triple (paper)": SelectionPolicy(use_comm_cost=True, use_coalition_size=True),
    }
    # Coarser distance resolution makes ties frequent enough to observe
    # the tie-breaks with a synthetic workload (equal capacities → many
    # nodes propose identical levels).
    points = []
    for name, policy in policies.items():
        def run(seed: int, policy=policy) -> Dict[str, float]:
            config = ClusterConfig(n_nodes=16, requester_class=NodeClass.PDA, area=140.0)
            topology, providers, nodes, registry = build_cluster(config, seed)
            service = workload.synthetic_service(
                "requester", registry.stream("workload"),
                n_tasks=4, cpu_scale=30.0,
            )
            outcome = negotiate(service, topology, providers,
                                selection=policy, commit=False)
            comm = outcome.coalition.total_comm_cost()
            return {
                "distance": outcome.total_distance(),
                "comm": comm if comm != float("inf") else 99.0,
                "size": float(outcome.coalition.size),
                "success": float(outcome.success),
            }

        points.append(SweepPoint(
            label=name, run=run,
            keys=("distance", "comm", "size", "success"),
        ))
    return SuitePlan("E6", table, points)


# ==========================================================================
# E7 — heterogeneity: groups differ in efficiency
# ==========================================================================


def e7_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§7): groups of different capability mixes differ in service
    efficiency; coalitions exploit heterogeneity.

    Fleets share the same mean CPU but differ in spread. With zero spread
    every node equals the requester; with large spread some nodes are far
    stronger, and the coalition's utility advantage over solo execution
    should widen.
    """
    spreads = (0.0, 0.5) if sweep.quick else (0.0, 0.25, 0.5, 0.75, 1.0)
    table = Table(
        "E7 — capacity heterogeneity (fixed mean CPU, varying spread)",
        ["cpu spread", "solo utility", "coalition utility", "gain",
         "coalition success"],
        caption="10 nodes, mean CPU 200 (PDA-level); the movie workload "
                "needs ~340 CPU at full quality.",
    )
    points = []
    for spread in spreads:
        def run(seed: int, spread=spread) -> Dict[str, float]:
            registry = RngRegistry(seed)
            nodes = uniform_fleet(10, cpu_mean=200.0, cpu_spread=spread,
                                  rng=registry.stream("fleet"))
            from repro.network.mobility import StaticPlacement

            placement = StaticPlacement(100.0, 100.0, registry.stream("placement"))
            placement.place(nodes)
            topology = Topology(nodes, DiscRadio(range_m=150.0))
            providers = {n.node_id: QoSProvider(n) for n in nodes}
            service = workload.movie_playback_service(requester="requester")
            solo = baselines.single_node(service, topology, providers)
            coal = negotiate(service, topology, providers, commit=False)
            solo_u = outcome_utility(solo)
            coal_u = outcome_utility(coal)
            return {
                "solo": solo_u,
                "coal": coal_u,
                "gain": coal_u - solo_u,
                "success": float(coal.success),
            }

        points.append(SweepPoint(
            label=spread, run=run,
            keys=("solo", "coal", "gain", "success"),
        ))
    return SuitePlan("E7", table, points)


# ==========================================================================
# E8 — failure recovery via reconfiguration
# ==========================================================================


def e8_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§4): the operation phase reconfigures coalitions on partial
    failures.

    Form a coalition, crash 0–3 members mid-operation, and compare task
    completion with reconfiguration enabled vs disabled.
    """
    failure_counts = (0, 1, 2) if sweep.quick else (0, 1, 2, 3)
    table = Table(
        "E8 — failure recovery (16 nodes, movie + surveillance)",
        ["failures", "completed (reconfig)", "completed (none)",
         "reconfigurations", "recovery rate"],
        caption="Completed = fraction of tasks finishing; failures hit the "
                "busiest coalition members halfway through execution.",
    )
    points = []
    for n_failures in failure_counts:
        def run(seed: int, n_failures=n_failures) -> Dict[str, float]:
            results = {}
            for mode in ("reconfig", "none"):
                config = ClusterConfig(n_nodes=16, area=110.0)
                topology, providers, nodes, registry = build_cluster(config, seed)
                service = workload.movie_playback_service(requester="requester")
                engine = Engine(seed=seed)
                outcome = negotiate(service, topology, providers, commit=True)
                members = sorted(
                    outcome.coalition.members - {"requester"}
                ) or sorted(outcome.coalition.members)
                victims = members[:n_failures]
                failures = [(5.0 + i, v) for i, v in enumerate(victims)]
                report = run_operation_phase(
                    outcome.coalition, topology, providers, engine,
                    failures=failures,
                    allow_reconfiguration=(mode == "reconfig"),
                )
                total = len(service.tasks)
                results[mode] = (report.completed / total, report)
                for node in nodes:  # heal for the second mode's fresh build
                    node.recover()
            reconfig_frac, reconfig_report = results["reconfig"]
            none_frac, _ = results["none"]
            return {
                "completed_reconfig": reconfig_frac,
                "completed_none": none_frac,
                "reconfigs": float(reconfig_report.reconfigurations),
                "recovery": reconfig_report.recovery_rate,
            }

        points.append(SweepPoint(
            label=n_failures, run=run,
            keys=("completed_reconfig", "completed_none", "reconfigs",
                  "recovery"),
        ))
    return SuitePlan("E8", table, points)


# ==========================================================================
# E9 — weight-scheme ablation (eq. 3)
# ==========================================================================


def e9_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§6, eq. 3): positional weights make the evaluator respect
    the user's importance order.

    The same random proposal pools are judged under the paper's linear
    weights, uniform weights, and geometric weights; we report how well
    the winner serves the *most important* dimension vs the least
    important one.
    """
    # A perfectly symmetric two-dimension spec: both dimensions have the
    # same attributes/domains, so a k-step degradation has *identical*
    # raw dif on either dimension — the weight scheme is the only thing
    # that can break the symmetry.
    spec = catalog.synthetic_spec(n_dimensions=2, attrs_per_dimension=2,
                                  levels_per_attribute=5, name="e9-spec")
    request = catalog.synthetic_request(spec, name="e9-request")
    evaluators = {
        "linear (paper)": ProposalEvaluator(request, weights=WeightScheme.LINEAR),
        "uniform": ProposalEvaluator(request, weights=WeightScheme.UNIFORM),
        "geometric": ProposalEvaluator(request, weights=WeightScheme.GEOMETRIC),
    }
    top_dim = request.dimensions[0].dimension
    bottom_dim = request.dimensions[-1].dimension
    ladder = DegradationLadder.from_request(request)
    table = Table(
        "E9 — eq. 3 weight-scheme ablation (symmetric antagonistic pairs)",
        ["scheme", "protects top dim %", "winner top-dim dist",
         "winner bottom-dim dist", "winner distance"],
        caption="Each trial pits a proposal degraded k steps on the most "
                "important dimension against its exact mirror degraded k "
                "steps on the least important one. 'protects top dim %' = "
                "how often the winner keeps the most important dimension "
                "at preference. Positional weights must protect it (100%); "
                "uniform weights are indifferent and fall to the node-id "
                "tie-break, here arranged to pick the wrong one (0%).",
    )

    def antagonistic_pair(depth: int) -> Tuple[Proposal, Proposal]:
        def degraded(dim_name: str) -> Dict[str, object]:
            a = ladder.top()
            budget = depth
            attrs = list(request.dimension_preference(dim_name).attributes)
            while budget > 0:
                progressed = False
                for ap in attrs:
                    if budget > 0 and a.can_degrade(ap.attribute):
                        a = a.degrade(ap.attribute)
                        budget -= 1
                        progressed = True
                if not progressed:
                    break
            return a.values()

        # Node ids chosen so the uniform scheme's tie-break lands on the
        # top-dimension-degrading proposal, exposing its indifference.
        bad_top = Proposal(task_id="t", node_id="a-bad-top",
                           values=degraded(top_dim))
        bad_bottom = Proposal(task_id="t", node_id="b-bad-bottom",
                              values=degraded(bottom_dim))
        return bad_top, bad_bottom

    points = []
    for name, evaluator in evaluators.items():
        def run(seed: int, evaluator=evaluator) -> Dict[str, float]:
            rng = RngRegistry(seed).stream("e9")
            protected = 0
            tops: List[float] = []
            bottoms: List[float] = []
            dists: List[float] = []
            trials = 10
            for _ in range(trials):
                depth = int(rng.integers(1, 7))
                bad_top, bad_bottom = antagonistic_pair(depth)
                d_top = evaluator.distance(bad_top)
                d_bottom = evaluator.distance(bad_bottom)
                if d_bottom < d_top:
                    winner = bad_bottom
                elif d_top < d_bottom:
                    winner = bad_top
                else:  # exact tie: the selection policy's node-id break
                    winner = min((bad_top, bad_bottom), key=lambda p: p.node_id)
                if winner is bad_bottom:
                    protected += 1
                tops.append(evaluator.dimension_distance(top_dim, winner))
                bottoms.append(evaluator.dimension_distance(bottom_dim, winner))
                dists.append(evaluator.distance(winner))
            return {
                "protects_pct": 100.0 * protected / trials,
                "top": float(np.mean(tops)),
                "bottom": float(np.mean(bottoms)),
                "distance": float(np.mean(dists)),
            }

        points.append(SweepPoint(
            label=name, run=run,
            keys=("protects_pct", "top", "bottom", "distance"),
        ))
    return SuitePlan("E9", table, points)


# ==========================================================================
# E10 — offloading saves requester energy and time
# ==========================================================================

#: Radio energy per kB transferred (joules), for the requester-side cost
#: of shipping task data to a remote executor. Calibrated so that
#: offloading a movie decode (≈550 kB) costs ~2% of a phone battery while
#: executing it locally (≈2800 J at full quality) would cost ~90%.
TRANSFER_ENERGY_PER_KB = 0.1


def e10_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Claim (§1, §7): offloading to nearby stronger nodes saves the weak
    device time and battery, net of the extra data communication.
    """
    neighbor_counts = (1, 3) if sweep.quick else (0, 1, 3, 6)
    table = Table(
        "E10 — offloading economics (phone requester, laptop neighbors)",
        ["laptop neighbors", "local energy (J)", "coalition energy (J)",
         "energy saved %", "local utility", "coalition utility"],
        caption="Requester-side energy: execution energy if local, radio "
                "transfer energy for offloaded tasks. Local infeasible "
                "runs spend the fully-degraded energy (when even that "
                "fits) or mark the service failed.",
    )
    points = []
    for k in neighbor_counts:
        def run(seed: int, k=k) -> Dict[str, float]:
            registry = RngRegistry(seed)
            nodes = [Node("requester", NodeClass.PHONE)]
            nodes += [Node(f"lap{i}", NodeClass.LAPTOP) for i in range(k)]
            from repro.network.mobility import StaticPlacement

            placement = StaticPlacement(60.0, 60.0, registry.stream("placement"))
            placement.place(nodes)
            topology = Topology(nodes, DiscRadio(range_m=100.0))
            providers = {n.node_id: QoSProvider(n) for n in nodes}
            service = workload.surveillance_service(requester="requester")

            local = baselines.single_node(service, topology, providers)
            local_energy = sum(
                a.demand.get(ResourceKind.ENERGY)
                for a in local.coalition.awards.values()
            )
            coal = negotiate(service, topology, providers, commit=False)
            coal_energy = 0.0
            for task in service.tasks:
                award = coal.coalition.awards.get(task.task_id)
                if award is None:
                    continue
                if award.node_id == "requester":
                    coal_energy += award.demand.get(ResourceKind.ENERGY)
                else:
                    coal_energy += task.transfer_kb() * TRANSFER_ENERGY_PER_KB
            saved = (
                100.0 * (local_energy - coal_energy) / local_energy
                if local_energy > 0 else 0.0
            )
            return {
                "local_energy": local_energy,
                "coal_energy": coal_energy,
                "saved_pct": saved if local.success else 100.0,
                "local_utility": outcome_utility(local),
                "coal_utility": outcome_utility(coal),
            }

        points.append(SweepPoint(
            label=k, run=run,
            keys=("local_energy", "coal_energy", "saved_pct",
                  "local_utility", "coal_utility"),
        ))
    return SuitePlan("E10", table, points)


# ==========================================================================
# E11 — relayed CFP: coverage vs hop budget (extension)
# ==========================================================================


def e11_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension of §1's scope ("encompass fixed set of nodes, even
    clusters"): the paper's CFP is one-hop; relaying it k hops reaches
    nodes beyond radio range of the requester.

    A sparse network (area ≫ radio range) is swept over the hop budget;
    success and utility should rise with reach, messages with the flood.
    """
    hop_budgets = (1, 2) if sweep.quick else (1, 2, 3, 4)
    table = Table(
        "E11 — relayed CFP in a sparse network (16 nodes, 420 m area)",
        ["max hops", "candidates", "success rate", "utility", "messages"],
        caption="Synchronous protocol with k-hop audiences; communication "
                "cost uses the best multi-hop route. One hop is the "
                "paper's broadcast.",
    )
    points = []
    for hops in hop_budgets:
        def run(seed: int, hops=hops) -> Dict[str, float]:
            config = ClusterConfig(n_nodes=16, area=420.0)
            topology, providers, nodes, _ = build_cluster(config, seed)
            service = workload.movie_playback_service(requester="requester")
            outcome = negotiate(service, topology, providers, commit=False,
                                max_hops=hops)
            return {
                "candidates": float(len(outcome.candidates)),
                "success": float(outcome.success),
                "utility": outcome_utility(outcome),
                "messages": float(outcome.message_count),
            }

        points.append(SweepPoint(
            label=hops, run=run,
            keys=("candidates", "success", "utility", "messages"),
        ))
    return SuitePlan("E11", table, points)


# ==========================================================================
# E12 — reputation-aware selection vs flaky nodes (extension)
# ==========================================================================


def e12_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension (paper cites trust-based coalition formation [4]): feed
    operation-phase failure observations back into partner selection.

    Half the helper nodes are flaky (crash during execution with
    probability ``p_fail`` whenever they hold a task). Over repeated
    service rounds, reputation-aware selection should learn to avoid
    them, raising first-try completion above the memoryless protocol.
    """
    from repro.core.reputation import ReputationTracker

    modes = ("paper (no memory)", "reputation-aware")
    table = Table(
        "E12 — reputation vs flaky nodes (12 nodes, 50% flaky, 12 rounds)",
        ["policy", "first-try completion", "late-round completion",
         "flaky awards %"],
        caption="Flaky nodes crash with p=0.6 while executing. First-try "
                "completion counts tasks finishing without reconfiguration; "
                "late-round = last 6 rounds only (after learning). "
                "'flaky awards %' = share of awards given to flaky nodes.",
    )
    n_rounds = 6 if sweep.quick else 12
    points = []
    for mode in modes:
        def run(seed: int, mode=mode) -> Dict[str, float]:
            registry = RngRegistry(seed)
            flaky_rng = registry.stream("flaky")
            nodes = [Node("requester", NodeClass.PHONE)]
            flaky_ids = set()
            for i in range(11):
                node = Node(f"n{i}", NodeClass.LAPTOP)
                if i % 2 == 0:
                    flaky_ids.add(node.node_id)
                nodes.append(node)
            from repro.network.mobility import StaticPlacement

            placement = StaticPlacement(100.0, 100.0, registry.stream("place"))
            placement.place(nodes)
            topology = Topology(nodes, DiscRadio(range_m=150.0))
            providers = {n.node_id: QoSProvider(n) for n in nodes}
            tracker = ReputationTracker()
            selection = SelectionPolicy(use_reputation=(mode != "paper (no memory)"))

            first_try = []
            late = []
            flaky_awards = 0
            total_awards = 0
            for rnd in range(n_rounds):
                service = workload.movie_playback_service(
                    requester="requester", name=f"r{rnd}"
                )
                outcome = negotiate(
                    service, topology, providers, commit=True,
                    selection=selection,
                    reputation=tracker if mode != "paper (no memory)" else None,
                )
                for award in outcome.coalition.awards.values():
                    total_awards += 1
                    if award.node_id in flaky_ids:
                        flaky_awards += 1
                # Flaky members crash mid-run with probability 0.6.
                failures = [
                    (2.0 + i, member)
                    for i, member in enumerate(sorted(outcome.coalition.members))
                    if member in flaky_ids and flaky_rng.random() < 0.6
                ]
                engine = Engine(seed=seed * 1000 + rnd)
                report = run_operation_phase(
                    outcome.coalition, topology, providers, engine,
                    failures=failures,
                )
                tracker.observe_operation(report, outcome.coalition)
                frac_first = sum(
                    1 for o in report.outcomes.values()
                    if o.status == "completed" and o.reallocations == 0
                ) / len(service.tasks)
                first_try.append(frac_first)
                if rnd >= n_rounds // 2:
                    late.append(frac_first)
                # Crashed nodes reboot between rounds.
                for node in nodes:
                    node.recover()
                topology.rebuild()
            return {
                "first_try": float(np.mean(first_try)),
                "late": float(np.mean(late)),
                "flaky_pct": 100.0 * flaky_awards / max(total_awards, 1),
            }

        points.append(SweepPoint(
            label=mode, run=run,
            keys=("first_try", "late", "flaky_pct"),
        ))
    return SuitePlan("E12", table, points)


# ==========================================================================
# E13 — battery-aware selection and network lifetime (extension)
# ==========================================================================


def e13_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension of the §1/§7 energy motivation: spread energy drain
    across batteries.

    Total service extracted is energy-conserved (both policies serve a
    similar number of rounds), so the benefit of battery-awareness is
    *balance*: after a fixed number of rounds the residual batteries are
    far more even, keeping every helper available for future demands
    instead of a dead nearest neighbor and untouched far ones. We report
    Jain's fairness index over the residual helper batteries and the
    minimum residual fraction at a mid-experiment checkpoint.
    """
    modes = ("paper triple", "battery-aware")
    checkpoint = 12
    table = Table(
        "E13 — battery-aware selection (6 equal helpers, graded distances)",
        ["policy", "fairness @12 rounds", "min battery @12 rounds",
         "total rounds served"],
        caption="Identical helpers (800 J) at graded distances; all "
                "proposals tie on eq. 2 distance. Jain's fairness index "
                "over residual helper batteries: 1.0 = perfectly even, "
                "1/6 = one node carried everything. Total rounds is "
                "energy-conserved and should match across policies.",
    )
    points = []
    for mode in modes:
        def run(seed: int, mode=mode) -> Dict[str, float]:
            helper_cap = Capacity.of(
                cpu=400.0, memory=256.0, bus_bandwidth=100.0,
                net_bandwidth=4000.0, energy=800.0,
            )
            nodes = [Node("requester", NodeClass.PHONE, position=(0.0, 0.0))]
            # Graded distances: comm cost strictly prefers h0 > h1 > ...
            # (bandwidth falls off beyond half range = 75 m).
            nodes += [
                Node(f"h{i}", capacity=helper_cap,
                     position=(80.0 + 10.0 * i, 0.0))
                for i in range(6)
            ]
            topology = Topology(nodes, DiscRadio(range_m=150.0))
            providers = {n.node_id: QoSProvider(n) for n in nodes}
            selection = SelectionPolicy(use_battery=(mode == "battery-aware"))

            def fairness() -> Tuple[float, float]:
                residuals = [n.battery_fraction for n in nodes[1:]]
                total = sum(residuals)
                if total == 0:
                    return 1.0, 0.0
                jain = total ** 2 / (len(residuals) * sum(r * r for r in residuals))
                return jain, min(residuals)

            served = 0
            jain_at_checkpoint, min_at_checkpoint = 1.0, 1.0
            for rnd in range(60):
                service = workload.surveillance_service(
                    requester="requester", name=f"b{rnd}"
                )
                outcome = negotiate(service, topology, providers,
                                    commit=True, selection=selection)
                release_coalition(outcome.coalition, providers)
                if not outcome.success:
                    break
                served += 1
                if served == checkpoint:
                    jain_at_checkpoint, min_at_checkpoint = fairness()
                topology.rebuild()
            return {
                "jain": jain_at_checkpoint,
                "min_battery": min_at_checkpoint,
                "served": float(served),
            }

        points.append(SweepPoint(
            label=mode, run=run,
            keys=("jain", "min_battery", "served"),
        ))
    return SuitePlan("E13", table, points)


# ==========================================================================
# E14 — precedence pipelines: makespan and mid-pipeline failures (extension)
# ==========================================================================


def e14_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Extension of §4.1's "(for now) independent tasks": a three-stage
    media pipeline with precedence edges, executed by a coalition.

    Expected shape: without failures, makespan equals the critical path
    (three sequential stages) even though four tasks were allocated;
    failing the middle stage's executor mid-run triggers reconfiguration
    and extends the makespan by roughly one stage restart, while
    completion stays at 1.0.
    """
    table = Table(
        "E14 — precedence pipeline (fetch→decode→enhance ∥ audio)",
        ["mid-stage failures", "completed", "makespan (s)",
         "critical path (s)", "reconfigurations"],
        caption="Stage duration 8 s; critical path = 24 s. A failure hits "
                "the decode stage's executor 4 s after the stage starts.",
    )
    points = []
    for n_failures in (0, 1):
        def run(seed: int, n_failures=n_failures) -> Dict[str, float]:
            config = ClusterConfig(n_nodes=10, area=100.0)
            topology, providers, nodes, _ = build_cluster(config, seed)
            service = workload.pipeline_service(requester="requester")
            outcome = negotiate(service, topology, providers, commit=True)
            engine = Engine(seed=seed)
            decode_tid = service.tasks[1].task_id
            failures = []
            if outcome.success and n_failures > 0:
                executor = outcome.coalition.awards[decode_tid].node_id
                # The decode stage starts at t=8 (after fetch completes);
                # crash its executor 4 s into the stage.
                failures = [(12.0, executor)]
            report = run_operation_phase(
                outcome.coalition, topology, providers, engine,
                failures=failures,
            )
            return {
                "completed": report.completed / len(service.tasks),
                "makespan": report.makespan,
                "critical": service.critical_path_length(),
                "reconfigs": float(report.reconfigurations),
            }

        points.append(SweepPoint(
            label=n_failures, run=run,
            keys=("completed", "makespan", "critical", "reconfigs"),
        ))
    return SuitePlan("E14", table, points)


# ==========================================================================
# E18 — scale sweep: the negotiation hot path at large audiences
# ==========================================================================


def e18_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Perf trajectory (ROADMAP: scale the simulator itself): E4's
    agent-based movie-playback scenario pushed to large audiences.

    Same protocol and metrics as E4, swept to 16/32/64/128 nodes — the
    regime where the pre-batching simulator spent most of its wall time
    in per-proposal evaluation and per-node reformulation. The table's
    metrics are deterministic (bit-identical serial vs parallel, like
    every suite); the *wall time* recorded in ``BENCH_E18.json`` is the
    speedup gauge. CI re-runs the full sweep and diffs it against the
    committed ``benchmarks/results/BENCH_E18.json`` with
    ``tools/bench_diff.py --rtol 0 --wall-rtol 4.0`` — exact on
    metrics, coarse on wall time (see ``docs/performance.md``).
    """
    sizes = (16, 32) if sweep.quick else (16, 32, 64, 128)
    table = Table(
        "E18 — scale sweep (agent-based, movie playback, 16–128 nodes)",
        ["nodes", "messages", "sim time (s)", "success", "proposals"],
        caption="E4's scenario at E4-and-beyond audiences. Messages = "
                "every radio transmission (CFP copies, bundled PROPOSE "
                "replies, awards, confirmations); wall time lives in "
                "the bench report, not the table, so the determinism "
                "gate stays exact.",
    )
    return SuitePlan("E18", table, _agent_protocol_points(sizes))


# ==========================================================================
# E19 — mobility at scale: the vectorized network layer under churn
# ==========================================================================


def e19_plan(sweep: SweepConfig = SweepConfig()) -> SuitePlan:
    """Perf trajectory (ROADMAP: as fast as the hardware allows): E5's
    mobility scenario pushed to large fleets, swept over node count ×
    mobility model, with relayed two-hop CFPs.

    Every simulated second the whole fleet moves and the topology is
    rebuilt — the dense pairwise-recompute workload the numpy arena
    vectorizes — and every CFP prices its candidates over best multi-hop
    routes, hitting the per-epoch route cache. Metrics are deterministic
    (bit-identical serial vs parallel); wall time lives in
    ``BENCH_E19.json`` and CI gates the quick sweep serial-vs-parallel
    with ``tools/bench_diff.py --rtol 0`` like E18. The ≥5× topology
    maintenance gate at 128 nodes is asserted directly by
    ``benchmarks/test_e19_mobility_scale.py``.
    """
    combos = (
        [("waypoint", 16), ("waypoint", 32)] if sweep.quick
        else [
            ("waypoint", 32), ("waypoint", 64), ("waypoint", 128),
            ("group", 32), ("group", 64), ("group", 128),
        ]
    )
    table = Table(
        "E19 — mobility at scale (random waypoint / group mobility, 2-hop CFPs)",
        ["model × nodes", "success rate", "mean utility", "mean candidates",
         "distinct partners", "messages lost"],
        caption="Sequential movie requests 20 s apart, mobility ticking at "
                "1 s (a full topology rebuild per tick), CFPs relayed two "
                "hops with route-cost tie-breaks over the epoch-cached "
                "multi-hop routes. Area grows with sqrt(nodes) so density "
                "stays comparable across scales.",
    )
    n_requests = 2 if sweep.quick else 3
    points = []
    for model_name, n_nodes in combos:
        def run(seed: int, model_name=model_name, n_nodes=n_nodes) -> Dict[str, float]:
            registry = RngRegistry(seed)
            area = 60.0 * float(np.sqrt(n_nodes))
            if model_name == "waypoint":
                mobility = RandomWaypoint(
                    width=area, height=area,
                    speed_min=0.0, speed_max=6.0, pause=1.0,
                    rng=registry.stream("mobility"),
                )
            else:
                leader = RandomWaypoint(
                    width=area, height=area,
                    speed_min=1.0, speed_max=4.0, pause=0.0,
                    rng=registry.stream("leader"),
                )
                mobility = GroupMobility(
                    leader, spread=min(140.0, area / 2.0),
                    rng=registry.stream("mobility"),
                )
            config = ClusterConfig(n_nodes=n_nodes, area=area)
            system = build_agent_system(
                config, seed, mobility=mobility, max_hops=2
            )
            system.start_mobility_process(tick=1.0, until=n_requests * 25.0)
            outcomes = []
            partners: set = set()
            for r in range(n_requests):
                service = workload.movie_playback_service(
                    requester="requester", name=f"movie-{r}"
                )
                outcome = system.negotiate(service)
                if outcome is not None:
                    outcomes.append(outcome)
                    partners |= set(outcome.coalition.members)
                    release_coalition(outcome.coalition, system.providers,
                                      system.engine.now)
                system.engine.run(until=system.engine.now + 20.0)
            if not outcomes:
                return {"success": 0.0, "utility": 0.0, "candidates": 0.0,
                        "partners": 0.0,
                        "lost": float(system.network.lost_count)}
            return {
                "success": float(np.mean([o.success for o in outcomes])),
                "utility": float(np.mean([outcome_utility(o) for o in outcomes])),
                "candidates": float(np.mean([len(o.candidates) for o in outcomes])),
                "partners": float(len(partners)),
                "lost": float(system.network.lost_count),
            }

        points.append(SweepPoint(
            label=f"{model_name}-{n_nodes}", run=run,
            keys=("success", "utility", "candidates", "partners", "lost"),
        ))
    return SuitePlan("E19", table, points)


#: Plan builders, keyed by experiment id — what the shared work-queue
#: scheduler (:func:`repro.experiments.parallel.run_batch`) consumes.
SUITE_PLANS: Dict[str, Callable[[SweepConfig], SuitePlan]] = {
    "E1": e1_plan,
    "E2": e2_plan,
    "E3": e3_plan,
    "E4": e4_plan,
    "E5": e5_plan,
    "E6": e6_plan,
    "E7": e7_plan,
    "E8": e8_plan,
    "E9": e9_plan,
    "E10": e10_plan,
    "E11": e11_plan,
    "E12": e12_plan,
    "E13": e13_plan,
    "E14": e14_plan,
    "E15": e15_plan,
    "E16": e16_plan,
    "E17": e17_plan,
    "E18": e18_plan,
    "E19": e19_plan,
    "E20": e20_plan,
    "E21": e21_plan,
    "E22": e22_plan,
    "E23": e23_plan,
}

# The PR 1 public interface: each suite as a Table-returning callable.
e1_coalition_vs_single = _table_suite(e1_plan, "e1_coalition_vs_single")
e2_evaluation_quality = _table_suite(e2_plan, "e2_evaluation_quality")
e3_degradation_reward = _table_suite(e3_plan, "e3_degradation_reward")
e4_scalability = _table_suite(e4_plan, "e4_scalability")
e5_mobility = _table_suite(e5_plan, "e5_mobility")
e6_tiebreak_ablation = _table_suite(e6_plan, "e6_tiebreak_ablation")
e7_heterogeneity = _table_suite(e7_plan, "e7_heterogeneity")
e8_failure_recovery = _table_suite(e8_plan, "e8_failure_recovery")
e9_weight_ablation = _table_suite(e9_plan, "e9_weight_ablation")
e10_offloading = _table_suite(e10_plan, "e10_offloading")
e11_multihop = _table_suite(e11_plan, "e11_multihop")
e12_reputation = _table_suite(e12_plan, "e12_reputation")
e13_battery_lifetime = _table_suite(e13_plan, "e13_battery_lifetime")
e14_pipeline = _table_suite(e14_plan, "e14_pipeline")
e15_contention = _table_suite(e15_plan, "e15_contention")
e16_saturation = _table_suite(e16_plan, "e16_saturation")
e17_new_services = _table_suite(e17_plan, "e17_new_services")
e18_scale_sweep = _table_suite(e18_plan, "e18_scale_sweep")
e19_mobility_scale = _table_suite(e19_plan, "e19_mobility_scale")
e20_streaming_sessions = _table_suite(e20_plan, "e20_streaming_sessions")
e21_realistic_arrivals = _table_suite(e21_plan, "e21_realistic_arrivals")
e22_shard_scale = _table_suite(e22_plan, "e22_shard_scale")
e23_fault_sweep = _table_suite(e23_plan, "e23_fault_sweep")

#: All suites, keyed by experiment id (benchmarks and docs iterate this).
ALL_SUITES = {
    "E1": e1_coalition_vs_single,
    "E2": e2_evaluation_quality,
    "E3": e3_degradation_reward,
    "E4": e4_scalability,
    "E5": e5_mobility,
    "E6": e6_tiebreak_ablation,
    "E7": e7_heterogeneity,
    "E8": e8_failure_recovery,
    "E9": e9_weight_ablation,
    "E10": e10_offloading,
    "E11": e11_multihop,
    "E12": e12_reputation,
    "E13": e13_battery_lifetime,
    "E14": e14_pipeline,
    "E15": e15_contention,
    "E16": e16_saturation,
    "E17": e17_new_services,
    "E18": e18_scale_sweep,
    "E19": e19_mobility_scale,
    "E20": e20_streaming_sessions,
    "E21": e21_realistic_arrivals,
    "E22": e22_shard_scale,
    "E23": e23_fault_sweep,
}

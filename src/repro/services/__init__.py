"""Services and tasks.

Paper Section 4.1: *"There will be several services to be executed, each
one with a set (for now) of independent tasks T. Each service has specific
QoS constraints, defined by the user."* A :class:`~repro.services.task.Task`
couples a QoS request with the a-priori resource-demand profile of
Section 5; a :class:`~repro.services.service.Service` groups independent
tasks. :mod:`repro.services.workload` generates the multimedia workloads
the paper's introduction motivates.
"""

from repro.services.task import Task
from repro.services.service import Service
from repro.services import workload

__all__ = ["Task", "Service", "workload"]

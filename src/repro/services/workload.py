"""Workload generators for the paper's motivating applications.

The introduction motivates three concrete scenarios, all reproduced here
with calibrated demand models:

* **video streaming / movie playback** — decode offloading ("playing
  downloaded movies may require decompression", Section 7);
* **remote surveillance** — the Section 3.1 request, video over audio;
* **video conferencing** — "compression schemes that are effective, but
  computationally intensive" (Section 1), with a codec/frame-rate
  dependency.

Calibration targets the :data:`~repro.resources.node.NODE_CLASS_PROFILES`
ratios: a full-quality video decode overwhelms a phone/PDA but fits a
laptop, so cooperation is *necessary* for weak requesters (the paper's
core premise), while a degraded surveillance feed fits a PDA alone.

Three further families beyond the paper's three (speech recognition,
sensor-fusion telemetry, map/navigation rendering) live in
:mod:`repro.workloads.services`, which also provides the name →
builder registry (``SERVICE_FAMILIES``) spanning all six.
"""

from __future__ import annotations


import numpy as np

from repro.qos import catalog
from repro.qos.catalog import (
    CODEC,
    COLOR_DEPTH,
    FRAME_RATE,
    RESOLUTION,
    SAMPLE_BITS,
    SAMPLING_RATE,
)
from repro.resources.capacity import Capacity
from repro.resources.mapping import DemandModel, LinearDemandModel, TabularDemandModel
from repro.services.service import Service
from repro.services.task import Task


# --------------------------------------------------------------------------
# Demand profiles (the Section 5 a-priori resource analysis)
# --------------------------------------------------------------------------


def video_decode_demand() -> DemandModel:
    """Demand profile of a video decode/render task.

    CPU scales with frame rate and color depth (more pixels decoded per
    second); network bandwidth scales with frame rate (the encoded stream
    must keep arriving); energy tracks CPU.
    """
    return LinearDemandModel(
        base=Capacity.of(cpu=10.0, memory=16.0, bus_bandwidth=2.0, energy=50.0),
        per_unit={
            FRAME_RATE: Capacity.of(cpu=6.0, net_bandwidth=30.0, energy=8.0),
            COLOR_DEPTH: Capacity.of(cpu=4.0, memory=2.0, energy=2.0),
        },
    )


def audio_decode_demand() -> DemandModel:
    """Demand profile of an audio decode task (cheap next to video)."""
    return LinearDemandModel(
        base=Capacity.of(cpu=5.0, memory=8.0, energy=20.0),
        per_unit={
            SAMPLING_RATE: Capacity.of(cpu=1.0, net_bandwidth=10.0, energy=1.0),
            SAMPLE_BITS: Capacity.of(cpu=0.5, energy=0.5),
        },
    )


def conference_demand() -> DemandModel:
    """Demand profile of a conferencing encode+decode task.

    Codec choice has irregular cost (the paper's computationally intensive
    compression), so it uses a table; frame rate and resolution are linear.
    """
    linear = LinearDemandModel(
        base=Capacity.of(cpu=15.0, memory=24.0, energy=60.0),
        per_unit={
            FRAME_RATE: Capacity.of(cpu=5.0, net_bandwidth=25.0, energy=6.0),
            RESOLUTION: Capacity.of(cpu=30.0, memory=10.0, energy=10.0),
            SAMPLING_RATE: Capacity.of(cpu=1.0, net_bandwidth=8.0, energy=1.0),
        },
        value_scores={
            # Pixel-count-ish score per resolution tier.
            RESOLUTION: {"1080p": 8.0, "720p": 4.0, "480p": 2.0, "240p": 1.0},
        },
    )
    codec = TabularDemandModel(
        base=Capacity.zero(),
        tables={
            CODEC: {
                # The heavy codec trades CPU for bandwidth (Section 1).
                "wavelet": Capacity.of(cpu=250.0, energy=80.0),
                "dct": Capacity.of(cpu=80.0, net_bandwidth=200.0, energy=30.0),
                "none": Capacity.of(net_bandwidth=1500.0, energy=5.0),
            }
        },
    )
    from repro.resources.mapping import CompositeDemandModel

    return CompositeDemandModel(linear, codec)


# --------------------------------------------------------------------------
# Service builders
# --------------------------------------------------------------------------


def movie_playback_service(requester: str, name: str = "movie") -> Service:
    """Full-quality movie playback: one video + one audio decode task."""
    spec = catalog.video_streaming_spec()
    request = catalog.high_quality_streaming_request(spec)
    video = Task(
        task_id=Task.fresh_id(f"{name}-video"),
        request=request,
        demand_model=video_decode_demand(),
        input_kb=400.0,
        output_kb=150.0,
        duration=20.0,
    )
    audio = Task(
        task_id=Task.fresh_id(f"{name}-audio"),
        request=request,
        demand_model=audio_decode_demand(),
        input_kb=60.0,
        output_kb=30.0,
        duration=20.0,
    )
    return Service(name=name, tasks=(video, audio), requester=requester)


def surveillance_service(requester: str, name: str = "surveillance") -> Service:
    """The Section 3.1 remote-surveillance request as a two-task service."""
    spec = catalog.video_streaming_spec()
    request = catalog.surveillance_request(spec)
    video = Task(
        task_id=Task.fresh_id(f"{name}-video"),
        request=request,
        demand_model=video_decode_demand(),
        input_kb=120.0,
        output_kb=40.0,
        duration=30.0,
    )
    audio = Task(
        task_id=Task.fresh_id(f"{name}-audio"),
        request=request,
        demand_model=audio_decode_demand(),
        input_kb=20.0,
        output_kb=10.0,
        duration=30.0,
    )
    return Service(name=name, tasks=(video, audio), requester=requester)


def conference_service(requester: str, name: str = "conference") -> Service:
    """A conferencing service: a single heavy encode/decode task."""
    spec = catalog.video_conference_spec()
    request = catalog.video_conference_request(spec)
    task = Task(
        task_id=Task.fresh_id(f"{name}-av"),
        request=request,
        demand_model=conference_demand(),
        input_kb=250.0,
        output_kb=250.0,
        duration=60.0,
    )
    return Service(name=name, tasks=(task,), requester=requester)


def pipeline_service(
    requester: str,
    name: str = "pipeline",
    stage_duration: float = 8.0,
) -> Service:
    """A three-stage media pipeline with precedence (extension, E14).

    ``fetch+demux → video decode → enhance/render``: the stages must run
    in order (each consumes the previous stage's output), exercising the
    precedence extension of :class:`~repro.services.service.Service`. An
    independent audio task runs alongside, so the critical path is the
    three video stages.
    """
    spec = catalog.video_streaming_spec()
    request = catalog.high_quality_streaming_request(spec)
    fetch = Task(
        task_id=Task.fresh_id(f"{name}-fetch"),
        request=request,
        demand_model=LinearDemandModel(
            base=Capacity.of(cpu=8.0, memory=8.0, energy=20.0),
            per_unit={FRAME_RATE: Capacity.of(net_bandwidth=40.0, energy=2.0)},
        ),
        input_kb=50.0,
        output_kb=300.0,
        duration=stage_duration,
    )
    decode = Task(
        task_id=Task.fresh_id(f"{name}-decode"),
        request=request,
        demand_model=video_decode_demand(),
        input_kb=300.0,
        output_kb=200.0,
        duration=stage_duration,
    )
    enhance = Task(
        task_id=Task.fresh_id(f"{name}-enhance"),
        request=request,
        demand_model=LinearDemandModel(
            base=Capacity.of(cpu=20.0, memory=32.0, energy=40.0),
            per_unit={
                FRAME_RATE: Capacity.of(cpu=4.0, energy=3.0),
                COLOR_DEPTH: Capacity.of(cpu=2.0, energy=1.0),
            },
        ),
        input_kb=200.0,
        output_kb=150.0,
        duration=stage_duration,
    )
    audio = Task(
        task_id=Task.fresh_id(f"{name}-audio"),
        request=request,
        demand_model=audio_decode_demand(),
        input_kb=60.0,
        output_kb=30.0,
        duration=stage_duration,
    )
    return Service(
        name=name,
        tasks=(fetch, decode, enhance, audio),
        requester=requester,
        precedence=(
            (fetch.task_id, decode.task_id),
            (decode.task_id, enhance.task_id),
        ),
    )


def synthetic_service(
    requester: str,
    rng: np.random.Generator,
    n_tasks: int = 2,
    n_dimensions: int = 2,
    attrs_per_dimension: int = 2,
    levels: int = 4,
    cpu_scale: float = 60.0,
    name: str = "synthetic",
) -> Service:
    """A randomized service over a synthetic spec, for sweeps.

    Every attribute value ``v`` (integer levels ``L..1``, best first)
    contributes ``cpu_scale * v / L`` CPU plus proportional bandwidth and
    energy, so the top level of a task costs roughly
    ``cpu_scale * n_dimensions * attrs_per_dimension`` CPU. ``cpu_scale``
    therefore directly tunes how demanding the workload is relative to
    the node profiles.
    """
    spec = catalog.synthetic_spec(n_dimensions, attrs_per_dimension, levels, name=f"{name}-spec")
    request = catalog.synthetic_request(spec, name=f"{name}-request")
    tasks = []
    for t in range(n_tasks):
        jitter = float(rng.uniform(0.7, 1.3))
        per_unit = {
            attr: Capacity.of(
                cpu=cpu_scale * jitter / levels,
                net_bandwidth=cpu_scale * 2.0 / levels,
                energy=cpu_scale * 0.5 / levels,
            )
            for attr in spec.attribute_names
        }
        model = LinearDemandModel(
            base=Capacity.of(cpu=5.0, memory=8.0, energy=10.0),
            per_unit=per_unit,
        )
        tasks.append(
            Task(
                task_id=Task.fresh_id(f"{name}-t{t}"),
                request=request,
                demand_model=model,
                input_kb=float(rng.uniform(20, 200)),
                output_kb=float(rng.uniform(10, 100)),
                duration=float(rng.uniform(5, 30)),
            )
        )
    return Service(name=name, tasks=tuple(tasks), requester=requester)

"""Tasks: the unit of allocation.

A task is what one coalition member executes. It bundles:

* the user's :class:`~repro.qos.request.ServiceRequest` (QoS constraints
  ``Q_i`` with their preference orders);
* the :class:`~repro.resources.mapping.DemandModel` profiling resource
  needs per quality level (the Section 5 a-priori analysis);
* the data-movement profile: input/output sizes, which drive the
  communication cost of executing the task remotely (the paper's
  "processing on the server may require additional data communication").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

from repro.qos.levels import DegradationLadder
from repro.qos.request import ServiceRequest
from repro.resources.capacity import Capacity
from repro.resources.mapping import DemandModel
from repro.sim.sequences import Sequence

_task_seq = Sequence()


@dataclass
class Task:
    """One independently allocatable unit of work.

    Attributes:
        task_id: Unique identifier.
        request: QoS constraints and user preferences for this task.
        demand_model: Quality level → resource demand profile.
        input_kb: Data shipped to the executing node before it can start.
        output_kb: Data shipped back on completion.
        duration: Nominal execution time in simulated seconds (resources
            stay reserved for this long during the operation phase).

    Ladders, demand vectors, eq. 1 rewards and degradation steps are
    memoized per task: every provider a CFP reaches probes the *same*
    quality levels of the same task, so the answers (pure functions of
    the immutable request / demand model) are shared across the whole
    negotiation instead of recomputed per node. The caches never change
    results — only who pays for them. ``_reward_cache`` and
    ``_step_cache`` belong to the formulation heuristic
    (:mod:`repro.core.formulation`), which owns their key layout. All
    caches are invalidated together if ``request`` is swapped out (the
    next :meth:`ladder` call detects it); swapping ``demand_model`` on a
    live task is not supported — construct a new ``Task`` instead.
    """

    task_id: str
    request: ServiceRequest
    demand_model: DemandModel
    input_kb: float = 10.0
    output_kb: float = 10.0
    duration: float = 10.0
    _ladder_cache: Dict[int, DegradationLadder] = field(
        default_factory=dict, init=False, repr=False, compare=False,
    )
    _demand_cache: Dict[Tuple, Capacity] = field(
        default_factory=dict, init=False, repr=False, compare=False,
    )
    _reward_cache: Dict[Tuple, float] = field(
        default_factory=dict, init=False, repr=False, compare=False,
    )
    _step_cache: Dict[Tuple, object] = field(
        default_factory=dict, init=False, repr=False, compare=False,
    )

    @classmethod
    def fresh_id(cls, prefix: str = "task") -> str:
        """Generate a unique task id."""
        return f"{prefix}-{_task_seq.next()}"

    def ladder(self, float_steps: int = 8) -> DegradationLadder:
        """The degradation ladder of this task's request (memoized)."""
        cached = self._ladder_cache.get(float_steps)
        if cached is not None and cached.request is self.request:
            return cached
        if any(l.request is not self.request for l in self._ladder_cache.values()):
            # request swapped out: every derived cache is stale
            self._ladder_cache.clear()
            self._demand_cache.clear()
            self._reward_cache.clear()
            self._step_cache.clear()
        cached = DegradationLadder.from_request(self.request, float_steps)
        self._ladder_cache[float_steps] = cached
        return cached

    def demand_at(self, values: Mapping[str, Any]) -> Capacity:
        """Resource demand of serving this task at quality ``values``.

        Memoized per exact quality level (type-sensitive on the values,
        so ``1`` and ``1.0`` cannot alias); :class:`Capacity` vectors are
        immutable, so sharing the cached instance is safe.
        """
        key = tuple((k, v.__class__, v) for k, v in sorted(values.items()))
        cached = self._demand_cache.get(key)
        if cached is None:
            cached = self.demand_model.demand(values)
            self._demand_cache[key] = cached
        return cached

    def transfer_kb(self) -> float:
        """Total data moved when the task executes remotely."""
        return self.input_kb + self.output_kb

    def __repr__(self) -> str:
        return f"<Task {self.task_id!r} request={self.request.name!r}>"

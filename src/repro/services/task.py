"""Tasks: the unit of allocation.

A task is what one coalition member executes. It bundles:

* the user's :class:`~repro.qos.request.ServiceRequest` (QoS constraints
  ``Q_i`` with their preference orders);
* the :class:`~repro.resources.mapping.DemandModel` profiling resource
  needs per quality level (the Section 5 a-priori analysis);
* the data-movement profile: input/output sizes, which drive the
  communication cost of executing the task remotely (the paper's
  "processing on the server may require additional data communication").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Mapping

from repro.qos.levels import DegradationLadder
from repro.qos.request import ServiceRequest
from repro.resources.capacity import Capacity
from repro.resources.mapping import DemandModel
from repro.sim.sequences import Sequence

_task_seq = Sequence()


@dataclass
class Task:
    """One independently allocatable unit of work.

    Attributes:
        task_id: Unique identifier.
        request: QoS constraints and user preferences for this task.
        demand_model: Quality level → resource demand profile.
        input_kb: Data shipped to the executing node before it can start.
        output_kb: Data shipped back on completion.
        duration: Nominal execution time in simulated seconds (resources
            stay reserved for this long during the operation phase).
    """

    task_id: str
    request: ServiceRequest
    demand_model: DemandModel
    input_kb: float = 10.0
    output_kb: float = 10.0
    duration: float = 10.0

    @classmethod
    def fresh_id(cls, prefix: str = "task") -> str:
        """Generate a unique task id."""
        return f"{prefix}-{_task_seq.next()}"

    def ladder(self, float_steps: int = 8) -> DegradationLadder:
        """The degradation ladder of this task's request."""
        return DegradationLadder.from_request(self.request, float_steps)

    def demand_at(self, values: Mapping[str, Any]) -> Capacity:
        """Resource demand of serving this task at quality ``values``."""
        return self.demand_model.demand(values)

    def transfer_kb(self) -> float:
        """Total data moved when the task executes remotely."""
        return self.input_kb + self.output_kb

    def __repr__(self) -> str:
        return f"<Task {self.task_id!r} request={self.request.name!r}>"

"""Services: user-facing bundles of tasks, optionally with precedence.

Paper Section 4.1: each service has "a set **(for now)** of independent
tasks". The default here is exactly that — no inter-task precedence, the
coalition may execute everything concurrently. The parenthetical invites
the extension: an optional precedence DAG (``precedence`` edges) that the
operation phase honours, so pipelines like *fetch → decode → render* can
be allocated across a coalition and executed in order (experiment E14).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.services.task import Task


@dataclass(frozen=True)
class Service:
    """A named set of tasks requested together.

    Attributes:
        name: Service identifier (also used as the negotiation session id).
        tasks: The tasks, allocation order = tuple order.
        requester: Node id of the user's device (negotiation organizer
            runs there; also the data source/sink for transfers).
        precedence: Optional ``(predecessor_id, successor_id)`` edges. A
            task starts executing only after all its predecessors have
            completed. Empty (the default) reproduces the paper's
            independent-task model. The edge set must be acyclic and
            reference only this service's task ids.
    """

    name: str
    tasks: Tuple[Task, ...]
    requester: str
    precedence: Tuple[Tuple[str, str], ...] = ()

    def __post_init__(self) -> None:
        if not self.tasks:
            raise ValueError(f"service {self.name!r} has no tasks")
        ids = [t.task_id for t in self.tasks]
        if len(set(ids)) != len(ids):
            raise ValueError(f"service {self.name!r} has duplicate task ids")
        id_set = set(ids)
        for pred, succ in self.precedence:
            if pred not in id_set or succ not in id_set:
                raise ValueError(
                    f"service {self.name!r}: precedence edge ({pred!r}, "
                    f"{succ!r}) references unknown task ids"
                )
            if pred == succ:
                raise ValueError(
                    f"service {self.name!r}: self-loop on {pred!r}"
                )
        if self.precedence and self._has_cycle():
            raise ValueError(f"service {self.name!r}: precedence is cyclic")

    def _has_cycle(self) -> bool:
        adjacency: Dict[str, List[str]] = {}
        for pred, succ in self.precedence:
            adjacency.setdefault(pred, []).append(succ)
        WHITE, GRAY, BLACK = 0, 1, 2
        color = {t.task_id: WHITE for t in self.tasks}

        def visit(node: str) -> bool:
            color[node] = GRAY
            for nxt in adjacency.get(node, ()):
                if color[nxt] == GRAY:
                    return True
                if color[nxt] == WHITE and visit(nxt):
                    return True
            color[node] = BLACK
            return False

        return any(color[t] == WHITE and visit(t) for t in list(color))

    def __iter__(self) -> Iterator[Task]:
        return iter(self.tasks)

    def __len__(self) -> int:
        return len(self.tasks)

    def task(self, task_id: str) -> Task:
        for t in self.tasks:
            if t.task_id == task_id:
                return t
        raise KeyError(f"no task {task_id!r} in service {self.name!r}")

    def predecessors(self, task_id: str) -> Tuple[str, ...]:
        """Ids of tasks that must complete before ``task_id`` starts."""
        self.task(task_id)  # existence check
        return tuple(p for p, s in self.precedence if s == task_id)

    def successors(self, task_id: str) -> Tuple[str, ...]:
        """Ids of tasks waiting on ``task_id``."""
        self.task(task_id)
        return tuple(s for p, s in self.precedence if p == task_id)

    def critical_path_length(self) -> float:
        """Longest duration-weighted path through the precedence DAG —
        the makespan lower bound under unlimited parallelism."""
        memo: Dict[str, float] = {}

        def finish(tid: str) -> float:
            if tid not in memo:
                preds = self.predecessors(tid)
                start = max((finish(p) for p in preds), default=0.0)
                memo[tid] = start + self.task(tid).duration
            return memo[tid]

        return max(finish(t.task_id) for t in self.tasks)

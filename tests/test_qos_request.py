"""Unit tests for service requests (Section 3.1 preference orders)."""

from __future__ import annotations

import pytest

from repro.errors import RequestError
from repro.qos import catalog
from repro.qos.catalog import (
    AUDIO_QUALITY,
    COLOR_DEPTH,
    FRAME_RATE,
    SAMPLE_BITS,
    SAMPLING_RATE,
    VIDEO_QUALITY,
)
from repro.qos.request import (
    AttributePreference,
    DimensionPreference,
    ServiceRequest,
    ValueInterval,
)


def test_paper_surveillance_request_structure():
    """The Section 3.1 example: video over audio, frame rate over color."""
    req = catalog.surveillance_request()
    assert req.dimension_rank(VIDEO_QUALITY) == 1
    assert req.dimension_rank(AUDIO_QUALITY) == 2
    assert req.attribute_rank(VIDEO_QUALITY, FRAME_RATE) == 1
    assert req.attribute_rank(VIDEO_QUALITY, COLOR_DEPTH) == 2
    assert req.attribute_rank(AUDIO_QUALITY, SAMPLING_RATE) == 1
    assert req.attribute_rank(AUDIO_QUALITY, SAMPLE_BITS) == 2


def test_preferred_values_match_paper_example():
    req = catalog.surveillance_request()
    pref = req.preferred_assignment()
    assert pref[FRAME_RATE] == 10  # best end of [10,...,5]
    assert pref[COLOR_DEPTH] == 3
    assert pref[SAMPLING_RATE] == 8
    assert pref[SAMPLE_BITS] == 8


def test_accepts_interval_and_scalar_values():
    req = catalog.surveillance_request()
    assert req.accepts(FRAME_RATE, 7)      # inside [10..5]
    assert req.accepts(FRAME_RATE, 2)      # inside [4..1]
    assert not req.accepts(FRAME_RATE, 12) # above both intervals
    assert req.accepts(COLOR_DEPTH, 1)
    assert not req.accepts(COLOR_DEPTH, 24)
    assert req.accepts(SAMPLING_RATE, 8)
    assert not req.accepts(SAMPLING_RATE, 44)


def test_value_interval_semantics():
    iv = ValueInterval(10, 5)
    assert iv.best == 10 and iv.worst == 5
    assert iv.lo == 5 and iv.hi == 10
    assert 7 in iv and 11 not in iv
    assert str(iv) == "[10,...,5]"


def test_attribute_preference_bounds():
    ap = AttributePreference("x", (ValueInterval(10, 5), ValueInterval(4, 1)))
    assert ap.bounds() == (1, 10)
    ap2 = AttributePreference("y", (3, 1))
    assert ap2.bounds() == (1, 3)
    assert ap2.scalar_values() == (3, 1)


def test_empty_preference_items_rejected():
    with pytest.raises(RequestError):
        AttributePreference("x", ())


def test_dimension_preference_duplicate_attribute_rejected():
    ap = AttributePreference("x", (1,))
    with pytest.raises(RequestError):
        DimensionPreference("V", (ap, ap))


def test_request_must_cover_all_spec_dimensions():
    spec = catalog.video_streaming_spec()
    with pytest.raises(RequestError):
        ServiceRequest(
            spec,
            dimensions=(
                DimensionPreference(
                    VIDEO_QUALITY,
                    (
                        AttributePreference(FRAME_RATE, (ValueInterval(10, 5),)),
                        AttributePreference(COLOR_DEPTH, (3,)),
                    ),
                ),
            ),  # Audio Quality missing
        )


def test_request_must_cover_all_dimension_attributes():
    spec = catalog.video_streaming_spec()
    with pytest.raises(RequestError):
        ServiceRequest(
            spec,
            dimensions=(
                DimensionPreference(
                    VIDEO_QUALITY,
                    (AttributePreference(FRAME_RATE, (ValueInterval(10, 5),)),),
                ),  # color depth missing
                DimensionPreference(
                    AUDIO_QUALITY,
                    (
                        AttributePreference(SAMPLING_RATE, (8,)),
                        AttributePreference(SAMPLE_BITS, (8,)),
                    ),
                ),
            ),
        )


def test_request_rejects_out_of_domain_values():
    spec = catalog.video_streaming_spec()
    with pytest.raises(Exception):
        ServiceRequest(
            spec,
            dimensions=(
                DimensionPreference(
                    VIDEO_QUALITY,
                    (
                        AttributePreference(FRAME_RATE, (ValueInterval(99, 5),)),
                        AttributePreference(COLOR_DEPTH, (3,)),
                    ),
                ),
                DimensionPreference(
                    AUDIO_QUALITY,
                    (
                        AttributePreference(SAMPLING_RATE, (8,)),
                        AttributePreference(SAMPLE_BITS, (8,)),
                    ),
                ),
            ),
        )


def test_request_rejects_interval_on_discrete_attribute():
    spec = catalog.video_streaming_spec()
    with pytest.raises(RequestError):
        ServiceRequest(
            spec,
            dimensions=(
                DimensionPreference(
                    VIDEO_QUALITY,
                    (
                        AttributePreference(FRAME_RATE, (ValueInterval(10, 5),)),
                        AttributePreference(COLOR_DEPTH, (ValueInterval(3, 1),)),
                    ),
                ),
                DimensionPreference(
                    AUDIO_QUALITY,
                    (
                        AttributePreference(SAMPLING_RATE, (8,)),
                        AttributePreference(SAMPLE_BITS, (8,)),
                    ),
                ),
            ),
        )


def test_unknown_lookups_raise():
    req = catalog.surveillance_request()
    with pytest.raises(RequestError):
        req.preference_for("ghost")
    with pytest.raises(RequestError):
        req.dimension_rank("ghost")
    with pytest.raises(RequestError):
        req.attribute_rank(VIDEO_QUALITY, "ghost")


def test_attribute_names_in_importance_order():
    req = catalog.surveillance_request()
    assert req.attribute_names == (
        FRAME_RATE, COLOR_DEPTH, SAMPLING_RATE, SAMPLE_BITS
    )

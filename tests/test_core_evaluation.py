"""Unit tests for the eqs. 2–5 proposal evaluator."""

from __future__ import annotations

import pytest

from repro.core.evaluation import ProposalEvaluator, WeightScheme
from repro.core.proposal import Proposal
from repro.errors import NegotiationError
from repro.qos import catalog
from repro.qos.catalog import (
    COLOR_DEPTH,
    FRAME_RATE,
    SAMPLE_BITS,
    SAMPLING_RATE,
    VIDEO_QUALITY,
    AUDIO_QUALITY,
)


@pytest.fixture
def request_():
    return catalog.surveillance_request()


@pytest.fixture
def evaluator(request_):
    return ProposalEvaluator(request_)


def _proposal(**values):
    defaults = {FRAME_RATE: 10, COLOR_DEPTH: 3, SAMPLING_RATE: 8, SAMPLE_BITS: 8}
    defaults.update(values)
    return Proposal(task_id="t", node_id="n", values=defaults)


# -- eq. 3 weights -----------------------------------------------------------


def test_eq3_linear_dimension_weights(evaluator):
    """w_k = (n - k + 1)/n with n = 2 dimensions."""
    assert evaluator.dimension_weight(VIDEO_QUALITY) == pytest.approx(1.0)
    assert evaluator.dimension_weight(AUDIO_QUALITY) == pytest.approx(0.5)


def test_eq3_attribute_weights(evaluator):
    assert evaluator.attribute_weight(VIDEO_QUALITY, FRAME_RATE) == pytest.approx(1.0)
    assert evaluator.attribute_weight(VIDEO_QUALITY, COLOR_DEPTH) == pytest.approx(0.5)


def test_weights_strictly_decreasing_in_rank():
    for scheme in WeightScheme:
        weights = [scheme.weight(k, 5) for k in range(1, 6)]
        if scheme is WeightScheme.UNIFORM:
            assert all(w == 1.0 for w in weights)
        else:
            assert all(weights[i] > weights[i + 1] for i in range(4))
        assert all(0 < w <= 1.0 for w in weights)


def test_weight_rank_out_of_range():
    with pytest.raises(NegotiationError):
        WeightScheme.LINEAR.weight(0, 3)
    with pytest.raises(NegotiationError):
        WeightScheme.LINEAR.weight(4, 3)


def test_geometric_weights():
    assert WeightScheme.GEOMETRIC.weight(1, 4) == 1.0
    assert WeightScheme.GEOMETRIC.weight(3, 4) == 0.25


# -- eq. 5 dif ----------------------------------------------------------------


def test_dif_zero_at_preferred(evaluator):
    for attr, pref in [(FRAME_RATE, 10), (COLOR_DEPTH, 3),
                       (SAMPLING_RATE, 8), (SAMPLE_BITS, 8)]:
        assert evaluator.dif(attr, pref) == 0.0


def test_dif_continuous_normalized_by_domain_span(evaluator):
    # frame rate domain [1, 30]: span 29; |5 - 10| / 29.
    assert evaluator.dif(FRAME_RATE, 5) == pytest.approx(5 / 29)


def test_dif_discrete_uses_quality_index(evaluator):
    # color depth domain (24,16,8,3,1): pos(1)=4, pos(3)=3, span 4.
    assert evaluator.dif(COLOR_DEPTH, 1) == pytest.approx((4 - 3) / 4)


def test_dif_request_normalization(request_):
    ev = ProposalEvaluator(request_, normalize_by="request")
    # frame-rate acceptable set spans 1..10 -> width 9.
    assert ev.dif(FRAME_RATE, 5) == pytest.approx(5 / 9)
    # color depth acceptable ladder (3, 1): positions 0,1, span 1.
    assert ev.dif(COLOR_DEPTH, 1) == pytest.approx(1.0)


def test_dif_signed_mode(request_):
    ev = ProposalEvaluator(request_, signed=True)
    assert ev.dif(FRAME_RATE, 5) == pytest.approx(-5 / 29)
    assert ProposalEvaluator(request_).dif(FRAME_RATE, 5) > 0


def test_dif_bounded_by_one(evaluator):
    # Any in-domain value: |dif| <= 1 under domain normalization.
    for fr in (1, 5, 10, 20, 30):
        assert abs(evaluator.dif(FRAME_RATE, fr)) <= 1.0
    for cd in (1, 3, 8, 16, 24):
        assert abs(evaluator.dif(COLOR_DEPTH, cd)) <= 1.0


def test_invalid_normalize_by(request_):
    with pytest.raises(NegotiationError):
        ProposalEvaluator(request_, normalize_by="bogus")


# -- eq. 4 / eq. 2 ------------------------------------------------------------


def test_distance_zero_for_preferred_proposal(evaluator):
    assert evaluator.distance(_proposal()) == 0.0


def test_distance_positive_for_degraded(evaluator):
    assert evaluator.distance(_proposal(**{FRAME_RATE: 5})) > 0.0


def test_distance_weights_dimensions(evaluator):
    """The same dif magnitude hurts more on the more important dimension."""
    # One color-depth position step vs one sample-bits position step
    # (identical raw |dif| = 1/4? no: different domains). Use dimension
    # distance directly for a clean comparison.
    video_d = evaluator.dimension_distance(VIDEO_QUALITY, _proposal(**{COLOR_DEPTH: 1}))
    audio_d = evaluator.dimension_distance(AUDIO_QUALITY, _proposal(**{SAMPLE_BITS: 16}))
    full_video = evaluator.dimension_weight(VIDEO_QUALITY) * video_d
    full_audio = evaluator.dimension_weight(AUDIO_QUALITY) * audio_d
    # dimension 1 carries weight 1.0, dimension 2 carries 0.5
    assert evaluator.dimension_weight(VIDEO_QUALITY) == 2 * evaluator.dimension_weight(AUDIO_QUALITY)


def test_distance_additive_across_dimensions(evaluator):
    d_video = evaluator.distance(_proposal(**{FRAME_RATE: 5}))
    d_audio = evaluator.distance(_proposal(**{SAMPLING_RATE: 16}))
    d_both = evaluator.distance(_proposal(**{FRAME_RATE: 5, SAMPLING_RATE: 16}))
    assert d_both == pytest.approx(d_video + d_audio)


def test_distance_monotone_in_frame_rate_gap(evaluator):
    distances = [
        evaluator.distance(_proposal(**{FRAME_RATE: fr})) for fr in (10, 8, 5, 2)
    ]
    assert all(distances[i] < distances[i + 1] for i in range(3))


def test_lowest_distance_wins_semantics(evaluator):
    """The paper's rule: lowest evaluation = closest to preferences."""
    close = _proposal(**{FRAME_RATE: 9})
    far = _proposal(**{FRAME_RATE: 2, COLOR_DEPTH: 1})
    assert evaluator.distance(close) < evaluator.distance(far)


def test_max_distance_bounds_all_in_domain_proposals(evaluator):
    bound = evaluator.max_distance()
    worst = _proposal(**{FRAME_RATE: 30, COLOR_DEPTH: 24,
                         SAMPLING_RATE: 44, SAMPLE_BITS: 24})
    assert evaluator.distance(worst) <= bound + 1e-9


def test_missing_attribute_in_proposal_raises(evaluator):
    p = Proposal(task_id="t", node_id="n", values={FRAME_RATE: 10})
    with pytest.raises(KeyError):
        evaluator.distance(p)


def test_uniform_scheme_ignores_order(request_):
    ev = ProposalEvaluator(request_, weights=WeightScheme.UNIFORM)
    assert ev.dimension_weight(VIDEO_QUALITY) == ev.dimension_weight(AUDIO_QUALITY)

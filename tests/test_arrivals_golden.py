"""Golden-trace regression tests for the arrival layer.

``tests/data/arrival_trace.json`` is a committed "recorded" arrival
trace (300 s capture with a burst around t = 180);
``arrival_trace_golden.json`` pins the exact outputs the trace-driven
machinery produced when the fixtures were committed. Any drift in
replay normalization, histogram binning, or the thinning draw order
shows up as a golden mismatch here — long before it silently perturbs
the committed E-suite bench snapshots.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.experiments.config import SweepConfig
from repro.experiments.parallel import run_batch
from repro.experiments.store import ResultsStore
from repro.workloads.arrivals import (
    InhomogeneousPoissonProcess,
    TraceReplayProcess,
)
from repro.workloads.rates import PiecewiseConstantRate
from repro.workloads.registry import get_scenario

DATA = Path(__file__).parent / "data"
FIXTURE = json.loads((DATA / "arrival_trace.json").read_text())
GOLDEN = json.loads((DATA / "arrival_trace_golden.json").read_text())

TIMES = FIXTURE["times"]
HORIZON = FIXTURE["capture_seconds"]


def test_trace_replay_matches_golden():
    """Plain replay: sorted, the one exact duplicate collapsed, clipped
    to the capture window — exactly the committed output."""
    got = TraceReplayProcess(TIMES).arrivals(np.random.default_rng(0), HORIZON)
    assert list(got) == GOLDEN["replay_plain"]
    assert len(got) == len(TIMES) - 1  # 44.1 appears twice in the capture


def test_trace_replay_scaled_offset_matches_golden():
    got = TraceReplayProcess(TIMES, offset=5.0, time_scale=0.5).arrivals(
        np.random.default_rng(0), 160.0
    )
    assert list(got) == GOLDEN["replay_scaled_offset"]


def test_trace_replay_looped_matches_golden():
    got = TraceReplayProcess(TIMES, loop_period=300.0).arrivals(
        np.random.default_rng(0), 650.0
    )
    assert list(got) == GOLDEN["replay_looped"]
    # Two full copies plus the head of a third fit in 650 s.
    assert len(got) == 37


def test_trace_histogram_matches_golden():
    """from_trace bins the capture into the committed empirical rate."""
    hist = PiecewiseConstantRate.from_trace(TIMES, bin_width=30.0, horizon=HORIZON)
    assert list(hist.edges) == GOLDEN["hist_edges"]
    assert list(hist.rates) == GOLDEN["hist_rates"]
    # The burst bin [180, 210) dominates the empirical intensity.
    assert max(hist.rates) == hist.rates[6]


def test_trace_driven_thinning_matches_golden():
    """Arrivals simulated from the trace-derived rate shape are a pure
    function of the seed — pinned draw-for-draw."""
    proc = InhomogeneousPoissonProcess(
        PiecewiseConstantRate.from_trace(TIMES, bin_width=30.0, horizon=HORIZON)
    )
    got = proc.arrivals(np.random.default_rng(42), HORIZON)
    assert list(got) == GOLDEN["thinning_seed42"]


def test_e21_parallel_batch_bit_identical_to_serial(tmp_path):
    """The diurnal-mix / flash-crowd tables (via E21) are byte-identical
    between the serial and the parallel scheduler — the determinism
    guarantee extended over the inhomogeneous arrival streams."""
    serial = run_batch(
        ["E21"], SweepConfig(seeds=(1, 2), quick=True, jobs=1),
        store=ResultsStore(tmp_path / "serial"),
    )[0]
    parallel = run_batch(
        ["E21"], SweepConfig(seeds=(1, 2), quick=True, jobs=2),
        store=ResultsStore(tmp_path / "parallel"),
    )[0]
    cmp = ResultsStore.compare(serial, parallel)
    assert cmp.identical, cmp.differences
    cmp = ResultsStore.compare(
        ResultsStore(tmp_path / "serial").load_bench("E21"),
        ResultsStore(tmp_path / "parallel").load_bench("E21"),
    )
    assert cmp.identical, cmp.differences


def test_streaming_scenarios_pure_function_of_seed():
    """diurnal-mix and flash-crowd replications re-run bit-identical —
    the per-scenario grounding under the E21 suite pin above."""
    for name in ("diurnal-mix", "flash-crowd"):
        spec = get_scenario(name).replace(horizon=60.0)
        first = spec.metrics_run(seed=9)
        second = spec.metrics_run(seed=9)
        assert first == second, name
        assert first["offered"] >= 0.0

"""Tests for the streaming-session lifecycle (repro.sessions) and the
config/shim surface of the redesigned run_contention."""

from __future__ import annotations

import pytest

import repro
from repro.core.reputation import ReputationTracker
from repro.errors import SessionStateError
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload
from repro.sessions import (
    ACTIVE_STATES,
    MOBILITY_MODES,
    SESSION_TRANSITIONS,
    Session,
    SessionDriver,
    SessionPolicy,
    SessionState,
)
from repro.workloads.contention import ContentionConfig, run_contention


# -- fixtures ---------------------------------------------------------------


def _streaming_cluster(extra_laptops: int = 1):
    """The conftest small_cluster plus optional spare laptops, so
    renegotiation always has somewhere to go."""
    nodes = [
        Node("requester", NodeClass.PHONE, position=(50.0, 50.0)),
        Node("pda", NodeClass.PDA, position=(60.0, 50.0)),
        Node("lap1", NodeClass.LAPTOP, position=(40.0, 50.0)),
        Node("lap2", NodeClass.LAPTOP, position=(50.0, 70.0)),
    ]
    for i in range(extra_laptops):
        nodes.append(
            Node(f"lap{3 + i}", NodeClass.LAPTOP, position=(60.0, 60.0 + 5 * i))
        )
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    return topology, providers, nodes


def _crash_holders(session, topology):
    """An engine callback that crashes every helper currently serving
    the session (victims chosen at fire time, so tests never hard-code
    the selection policy's placement)."""
    victims = []

    def crash(now):
        for task_id in sorted(session.live_tasks):
            node = topology.node(session.coalition.awards[task_id].node_id)
            if node.alive and node.node_id != session.service.requester:
                node.fail()
                victims.append(node.node_id)
        topology.rebuild()

    return crash, victims


def _all_released(providers):
    return all(
        p.node.manager.reserved.is_zero for p in providers.values() if p.node.alive
    )


STREAMING = SessionPolicy(operate=True, keepalive=5.0, max_renegotiations=2)


# -- the state machine ------------------------------------------------------


def test_happy_path_walks_the_machine(movie_service):
    s = Session(movie_service, arrival=0.0, duration=30.0)
    assert s.state is SessionState.NEGOTIATING and not s.admitted
    s.transition(SessionState.OPERATING, 0.0)
    s.transition(SessionState.DEGRADED, 10.0)
    s.transition(SessionState.RENEGOTIATING, 10.0)
    s.transition(SessionState.OPERATING, 10.0)
    s.transition(SessionState.CLOSED, 30.0)
    assert s.ended_at == 30.0
    assert [state for _t, state in s.transitions] == [
        SessionState.NEGOTIATING, SessionState.OPERATING,
        SessionState.DEGRADED, SessionState.RENEGOTIATING,
        SessionState.OPERATING, SessionState.CLOSED,
    ]


@pytest.mark.parametrize("start, bad", [
    (SessionState.NEGOTIATING, SessionState.DEGRADED),
    (SessionState.NEGOTIATING, SessionState.RENEGOTIATING),
    (SessionState.OPERATING, SessionState.RENEGOTIATING),
    (SessionState.OPERATING, SessionState.DROPPED),
    (SessionState.RENEGOTIATING, SessionState.CLOSED),
])
def test_illegal_transitions_raise(movie_service, start, bad):
    s = Session(movie_service, arrival=0.0, duration=30.0)
    s.state = start  # jump the machine for the check itself
    with pytest.raises(SessionStateError, match="illegal transition"):
        s.transition(bad, 1.0)


@pytest.mark.parametrize("terminal", [SessionState.CLOSED, SessionState.DROPPED])
def test_terminal_states_reject_everything(movie_service, terminal):
    s = Session(movie_service, arrival=0.0, duration=30.0)
    assert SESSION_TRANSITIONS[terminal] == ()
    s.state = terminal
    for state in SessionState:
        with pytest.raises(SessionStateError):
            s.transition(state, 1.0)


def test_transition_table_is_closed_over_states():
    assert set(SESSION_TRANSITIONS) == set(SessionState)
    for targets in SESSION_TRANSITIONS.values():
        assert set(targets) <= set(SessionState)
    assert set(ACTIVE_STATES) == {
        SessionState.OPERATING, SessionState.DEGRADED,
        SessionState.RENEGOTIATING,
    }


def test_session_duration_must_be_positive(movie_service):
    with pytest.raises(ValueError, match="duration must be positive"):
        Session(movie_service, arrival=0.0, duration=0.0)


def test_sustained_utility_integrates_piecewise(movie_service):
    """(1/D)·∫u — full quality for half the span, half quality after."""
    s = Session(movie_service, arrival=0.0, duration=10.0)
    s.transition(SessionState.OPERATING, 0.0)
    s.set_utility(0.0, 1.0)
    s.transition(SessionState.DEGRADED, 5.0)
    s.set_utility(5.0, 0.5)
    s.transition(SessionState.CLOSED, 10.0)
    assert s.sustained_utility == pytest.approx((5 * 1.0 + 5 * 0.5) / 10.0)
    assert s.utility == 0.0  # nothing streams after the end


def test_sustained_utility_of_drop_stops_at_the_drop(movie_service):
    s = Session(movie_service, arrival=0.0, duration=30.0)
    s.transition(SessionState.OPERATING, 0.0)
    s.set_utility(0.0, 1.0)
    s.transition(SessionState.DEGRADED, 10.0)
    s.transition(SessionState.DROPPED, 10.0)
    assert s.sustained_utility == pytest.approx(10.0 / 30.0)


# -- the session policy -----------------------------------------------------


def test_policy_defaults_are_admission_only():
    policy = SessionPolicy()
    assert not policy.operate
    assert policy.mobility in MOBILITY_MODES


@pytest.mark.parametrize("kwargs, match", [
    ({"keepalive": 0.0}, "keepalive"),
    ({"max_renegotiations": -1}, "max_renegotiations"),
    ({"failure_rate": -0.1}, "failure_rate"),
    ({"drain": -1.0}, "drain"),
    ({"duration_scale": 0.0}, "duration_scale"),
    ({"mobility": "teleport"}, "unknown mobility mode"),
    ({"mobility_speed": -1.0}, "mobility_speed"),
    ({"mobility_tick": 0.0}, "mobility_tick"),
])
def test_policy_validation(kwargs, match):
    with pytest.raises(ValueError, match=match):
        SessionPolicy(**kwargs)


def test_policy_replace_sweeps_without_mutating():
    base = SessionPolicy()
    swept = base.replace(operate=True, duration_scale=2.0)
    assert swept.operate and swept.duration_scale == 2.0
    assert not base.operate and base.duration_scale == 1.0


# -- the driver: clean close ------------------------------------------------


def test_unchurned_session_closes_at_admission_utility():
    topology, providers, _nodes = _streaming_cluster()
    service = workload.movie_playback_service(requester="requester")
    driver = SessionDriver(topology, providers, STREAMING)
    session = driver.submit(service, 0.0, duration=30.0)
    driver.run()
    assert session.state is SessionState.CLOSED
    assert session.ended_at == 30.0
    assert session.renegotiation_attempts == 0
    # No churn: sustained utility equals the admission utility exactly.
    from repro.metrics.utility import outcome_utility
    assert session.sustained_utility == pytest.approx(
        outcome_utility(session.admission)
    )
    assert driver.active == 0
    assert _all_released(providers)
    assert session.coalition.dissolved_at == 30.0


def test_duration_defaults_to_scaled_longest_task():
    topology, providers, _nodes = _streaming_cluster()
    service = workload.movie_playback_service(requester="requester")
    driver = SessionDriver(
        topology, providers, STREAMING.replace(duration_scale=2.0)
    )
    session = driver.submit(service, 0.0)
    nominal = max(t.duration for t in service.tasks)
    assert session.duration == pytest.approx(2.0 * nominal)


def test_admission_refused_lands_in_dropped():
    # A cluster of nothing but the phone requester cannot host movie
    # playback; the driver must reject cleanly, not strand reservations.
    nodes = [Node("requester", NodeClass.PHONE, position=(50.0, 50.0))]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    service = workload.movie_playback_service(requester="requester")
    driver = SessionDriver(topology, providers, STREAMING)
    session = driver.submit(service, 0.0, duration=30.0)
    driver.run()
    assert session.state is SessionState.DROPPED
    assert not session.admitted
    assert session.sustained_utility == 0.0
    assert _all_released(providers)


# -- the driver: churn and renegotiation ------------------------------------


def test_crash_degrades_then_renegotiates_in_place():
    topology, providers, _nodes = _streaming_cluster(extra_laptops=1)
    service = workload.movie_playback_service(requester="requester")
    driver = SessionDriver(topology, providers, STREAMING)
    session = driver.submit(service, 0.0, duration=30.0)
    crash, victims = _crash_holders(session, topology)
    driver.engine.schedule_at(6.0, crash)
    driver.run()
    assert session.state is SessionState.CLOSED
    assert session.renegotiations == 1
    assert session.failed_renegotiations == 0
    assert session.coalition.reconfigurations == 1
    # Detection happens at the next keepalive after the crash, not at
    # the crash instant: degraded at t=10, not t=6.
    states = dict((state, t) for t, state in session.transitions)
    assert states[SessionState.DEGRADED] == 10.0
    # Every replacement award avoids the dead victims.
    survivors = {a.node_id for a in session.coalition.awards.values()}
    assert survivors.isdisjoint(victims) and victims
    assert _all_released(providers)


def test_replacement_provider_dies_and_renegotiates_again():
    """Satellite case: a provider awarded *during* renegotiation dies
    too — the session must fold a second renegotiation, not wedge."""
    topology, providers, _nodes = _streaming_cluster(extra_laptops=1)
    service = workload.movie_playback_service(requester="requester")
    driver = SessionDriver(topology, providers, STREAMING)
    session = driver.submit(service, 0.0, duration=30.0)
    crash1, victims1 = _crash_holders(session, topology)
    crash2, victims2 = _crash_holders(session, topology)
    driver.engine.schedule_at(6.0, crash1)   # detected at t=10
    driver.engine.schedule_at(12.0, crash2)  # kills the replacements, t=15
    driver.run()
    assert session.state is SessionState.CLOSED
    assert session.renegotiations == 2
    assert victims1 and victims2
    assert set(victims1).isdisjoint(victims2)
    survivors = {a.node_id for a in session.coalition.awards.values()}
    assert survivors.isdisjoint(victims1 + victims2)
    assert _all_released(providers)


def test_dead_requester_drops_the_session():
    """A dead requester has an empty CFP audience — nobody is left to
    organize a renegotiation, so the session drops outright."""
    topology, providers, _nodes = _streaming_cluster()
    service = workload.movie_playback_service(requester="requester")
    driver = SessionDriver(topology, providers, STREAMING)
    session = driver.submit(service, 0.0, duration=30.0)
    driver.schedule_failure(6.0, "requester")
    driver.run()
    assert session.state is SessionState.DROPPED
    assert session.ended_at == 10.0  # next keepalive after the death
    assert session.renegotiation_attempts == 0
    # Utility accrued only until the drop: 10 s of a 30 s span.
    from repro.metrics.utility import outcome_utility
    assert session.sustained_utility == pytest.approx(
        outcome_utility(session.admission) * 10.0 / 30.0
    )
    assert driver.active == 0
    assert _all_released(providers)


def test_zero_admissible_replacement_drops_cleanly():
    """Every helper dead: renegotiation finds no admissible coalition
    and the retry budget drops the session with nothing stranded."""
    topology, providers, nodes = _streaming_cluster(extra_laptops=0)
    service = workload.movie_playback_service(requester="requester")
    policy = STREAMING.replace(max_renegotiations=1)
    driver = SessionDriver(topology, providers, policy)
    session = driver.submit(service, 0.0, duration=30.0)
    for node in nodes:
        if node.node_id != "requester":
            driver.schedule_failure(6.0, node.node_id)
    driver.run()
    assert session.state is SessionState.DROPPED
    assert session.renegotiations == 0
    assert session.failed_renegotiations == 1
    assert session.ended_at == 10.0
    assert driver.active == 0
    assert _all_released(providers)
    assert session.coalition.dissolved_at == 10.0


def test_drain_kills_serving_nodes_mid_session():
    """Streaming upkeep alone (no crash injection) can drain batteries,
    orphan tasks, and eventually exhaust the cluster."""
    topology, providers, nodes = _streaming_cluster(extra_laptops=0)
    service = workload.movie_playback_service(requester="requester")
    policy = STREAMING.replace(drain=1e9, max_renegotiations=1)
    driver = SessionDriver(topology, providers, policy)
    session = driver.submit(service, 0.0, duration=40.0)
    driver.run()
    assert session.state is SessionState.DROPPED
    assert session.renegotiation_attempts > 0
    assert any(not n.alive for n in nodes)  # drain killed someone
    assert 0.0 < session.sustained_utility < 1.0
    assert _all_released(providers)


def test_reputation_folds_mid_session_churn():
    """Crashed members are debited, surviving members credited on the
    clean close — later negotiations see the churn."""
    topology, providers, _nodes = _streaming_cluster(extra_laptops=1)
    service = workload.movie_playback_service(requester="requester")
    tracker = ReputationTracker()
    driver = SessionDriver(topology, providers, STREAMING, reputation=tracker)
    session = driver.submit(service, 0.0, duration=30.0)
    crash, victims = _crash_holders(session, topology)
    driver.engine.schedule_at(6.0, crash)
    driver.run()
    assert session.state is SessionState.CLOSED
    for victim in victims:
        successes, failures = tracker.observations(victim)
        assert failures >= 1 and successes == 0
        assert tracker.score(victim) < 0.5
    for award in session.coalition.awards.values():
        successes, _failures = tracker.observations(award.node_id)
        assert successes >= 1
        assert tracker.score(award.node_id) > 0.5


def test_concurrent_sessions_interleave_on_one_engine():
    topology, providers, _nodes = _streaming_cluster(extra_laptops=2)
    driver = SessionDriver(topology, providers, STREAMING)
    first = driver.submit(
        workload.movie_playback_service(requester="requester", name="first"),
        0.0, duration=30.0,
    )
    second = driver.submit(
        workload.surveillance_service(requester="requester", name="second"),
        10.0, duration=30.0,
    )
    driver.run()
    # The second request negotiated while the first held reservations.
    assert second.concurrent == 1 and first.concurrent == 0
    assert first.state is SessionState.CLOSED
    assert second.state is SessionState.CLOSED
    assert driver.active == 0
    assert _all_released(providers)


# -- run_contention: config object and deprecation shim ---------------------


def test_legacy_kwargs_warn_and_match_config_exactly():
    """The shim's bar: the old keyword surface is a pure spelling of the
    new config — bit-identical outcomes, plus a DeprecationWarning."""
    config = ContentionConfig(n_requesters=2, horizon=120.0, n_nodes=12)
    via_config = run_contention(11, config)
    with pytest.warns(DeprecationWarning, match="deprecated"):
        via_legacy = run_contention(11, n_requesters=2, horizon=120.0, n_nodes=12)
    assert via_legacy.sessions == via_config.sessions
    assert via_legacy.metrics() == via_config.metrics()


def test_config_plus_legacy_kwargs_is_an_error():
    with pytest.raises(TypeError, match="not both"):
        run_contention(1, ContentionConfig(), n_requesters=2)


def test_config_normalizes_arrival_and_validates():
    from repro.workloads.arrivals import PoissonProcess
    assert isinstance(ContentionConfig().arrival, PoissonProcess)
    with pytest.raises(ValueError, match="at least one requester"):
        ContentionConfig(n_requesters=0)
    with pytest.raises(KeyError, match="unknown service family"):
        ContentionConfig(families=("tetris",))
    with pytest.raises(KeyError, match="unknown fleet mix"):
        ContentionConfig(mix="all-mainframes")
    swept = ContentionConfig().replace(horizon=60.0)
    assert swept.horizon == 60.0 and ContentionConfig().horizon == 240.0


def test_streaming_mode_reports_lifecycle_metrics():
    config = ContentionConfig(
        n_requesters=2,
        horizon=120.0,
        sessions=SessionPolicy(
            operate=True, failure_rate=1.0 / 60.0, drain=30.0
        ),
    )
    result = run_contention(5, config)
    metrics = result.metrics()
    for key in ("sustained_utility", "renegotiation_rate", "drop_rate"):
        assert key in metrics
    for outcome in result.sessions:
        assert outcome.final_state in ("closed", "dropped", "rejected")
        assert (outcome.final_state == "rejected") == (not outcome.success)
        assert 0.0 <= outcome.sustained_utility <= 1.0
    # Streaming mode is a pure function of the seed like every run mode.
    again = run_contention(5, config)
    assert again.sessions == result.sessions


def test_streaming_mode_sees_the_same_arrivals_as_admission_only():
    """Flipping operate must never perturb the cluster or arrivals —
    the streams are independent by name."""
    base = ContentionConfig(n_requesters=2, horizon=120.0)
    admission = run_contention(9, base)
    streaming = run_contention(
        9, base.replace(sessions=SessionPolicy(operate=True))
    )
    assert [(s.requester, s.arrival, s.family) for s in admission.sessions] \
        == [(s.requester, s.arrival, s.family) for s in streaming.sessions]


# -- façade ------------------------------------------------------------------


def test_public_facade_exports_the_session_api():
    for name in ("Session", "SessionDriver", "SessionPolicy", "SessionState",
                 "ContentionConfig", "ContentionResult", "OperationReport",
                 "run_contention"):
        assert name in repro.__all__
        assert getattr(repro, name) is not None
    import repro.sessions as sessions
    assert sorted(sessions.__all__) == list(sessions.__all__)

"""Unit tests for nodes, demand models, and QoS Providers."""

from __future__ import annotations

import pytest

from repro.errors import CapacityExceededError, MappingError, ResourceError
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.mapping import (
    CompositeDemandModel,
    LinearDemandModel,
    TabularDemandModel,
)
from repro.resources.node import NODE_CLASS_PROFILES, Node, NodeClass
from repro.resources.provider import QoSProvider


# -- Node ------------------------------------------------------------------


def test_node_defaults_from_class_profile():
    n = Node("x", NodeClass.LAPTOP)
    assert n.capacity == NODE_CLASS_PROFILES[NodeClass.LAPTOP]
    assert n.alive and n.willing
    assert n.battery == n.capacity.get(ResourceKind.ENERGY)


def test_node_capacity_override():
    cap = Capacity.of(cpu=42)
    n = Node("x", NodeClass.PHONE, capacity=cap)
    assert n.capacity == cap


def test_class_profiles_are_ordered_by_strength():
    cpu = lambda c: NODE_CLASS_PROFILES[c].get(ResourceKind.CPU)
    assert cpu(NodeClass.PHONE) < cpu(NodeClass.PDA) < cpu(NodeClass.LAPTOP) < cpu(NodeClass.FIXED)


def test_energy_consumption_and_death():
    n = Node("x", NodeClass.PHONE)
    total = n.battery
    n.consume_energy(total / 2)
    assert n.alive and n.battery_fraction == pytest.approx(0.5)
    n.consume_energy(total)  # overdraw clamps at zero
    assert n.battery == 0.0 and not n.alive


def test_negative_energy_draw_rejected():
    n = Node("x")
    with pytest.raises(ResourceError):
        n.consume_energy(-1.0)


def test_fixed_nodes_survive_energy_draw():
    n = Node("x", NodeClass.FIXED)
    n.consume_energy(1e11)
    assert n.alive  # mains powered


def test_fail_and_recover():
    n = Node("x")
    n.fail()
    assert not n.alive
    n.recover()
    assert n.alive
    # A drained battery prevents recovery.
    d = Node("y", NodeClass.PHONE)
    d.consume_energy(d.battery)
    d.recover()
    assert not d.alive


def test_distance_and_move():
    a = Node("a", position=(0, 0))
    b = Node("b", position=(3, 4))
    assert a.distance_to(b) == 5.0
    a.move_to(3, 0)
    assert a.distance_to(b) == 4.0


# -- Demand models --------------------------------------------------------


def test_linear_demand_model():
    model = LinearDemandModel(
        base=Capacity.of(cpu=10),
        per_unit={"fr": Capacity.of(cpu=6, energy=2)},
    )
    d = model.demand({"fr": 10})
    assert d.get(ResourceKind.CPU) == 70.0
    assert d.get(ResourceKind.ENERGY) == 20.0
    # Unlisted attributes contribute nothing.
    assert model.demand({"fr": 10, "other": 1}) == d


def test_linear_demand_monotone_in_quality():
    model = LinearDemandModel(
        base=Capacity.of(cpu=1), per_unit={"fr": Capacity.of(cpu=2)}
    )
    assert model.demand({"fr": 5}).get(ResourceKind.CPU) < \
        model.demand({"fr": 10}).get(ResourceKind.CPU)


def test_linear_demand_value_scores():
    model = LinearDemandModel(
        base=Capacity.zero(),
        per_unit={"res": Capacity.of(cpu=10)},
        value_scores={"res": {"720p": 4.0, "480p": 2.0}},
    )
    assert model.demand({"res": "720p"}).get(ResourceKind.CPU) == 40.0
    with pytest.raises(MappingError):
        model.demand({"res": "1080p"})  # missing score


def test_linear_demand_non_numeric_without_scores():
    model = LinearDemandModel(
        base=Capacity.zero(), per_unit={"res": Capacity.of(cpu=1)}
    )
    with pytest.raises(MappingError):
        model.demand({"res": "720p"})


def test_tabular_demand_model():
    model = TabularDemandModel(
        base=Capacity.of(memory=8),
        tables={"codec": {"heavy": Capacity.of(cpu=100), "light": Capacity.of(cpu=10)}},
    )
    assert model.demand({"codec": "heavy"}).get(ResourceKind.CPU) == 100.0
    assert model.demand({"codec": "light"}).get(ResourceKind.MEMORY) == 8.0
    with pytest.raises(MappingError):
        model.demand({"codec": "unknown"})


def test_composite_demand_model_sums():
    a = LinearDemandModel(Capacity.of(cpu=1), {})
    b = LinearDemandModel(Capacity.of(cpu=2, memory=3), {})
    c = CompositeDemandModel(a, b)
    assert c.demand({}).get(ResourceKind.CPU) == 3.0
    assert c.demand({}).get(ResourceKind.MEMORY) == 3.0
    with pytest.raises(MappingError):
        CompositeDemandModel()


# -- QoSProvider --------------------------------------------------------


def _provider(cpu=100.0, energy=1000.0):
    node = Node("p", capacity=Capacity.of(cpu=cpu, energy=energy))
    return QoSProvider(node), node


def test_can_serve_checks_liveness_willingness_battery():
    p, node = _provider()
    demand = Capacity.of(cpu=10)
    assert p.can_serve(demand)
    node.willing = False
    assert not p.can_serve(demand)
    node.willing = True
    node.fail()
    assert not p.can_serve(demand)


def test_can_serve_checks_battery():
    p, node = _provider(energy=100.0)
    assert not p.can_serve(Capacity.of(energy=150.0))
    assert p.can_serve(Capacity.of(energy=80.0))


def test_reserve_for_draws_energy():
    p, node = _provider(energy=100.0)
    model = LinearDemandModel(Capacity.of(cpu=10, energy=30), {})
    reservation, demand = p.reserve_for("h", model, {}, now=1.0)
    assert node.battery == 70.0
    assert node.manager.reserved.get(ResourceKind.CPU) == 10.0
    p.release(reservation)
    # Rate resources return; energy stays spent.
    assert node.manager.reserved.is_zero
    assert node.battery == 70.0


def test_reserve_for_insufficient_battery():
    p, node = _provider(energy=10.0)
    model = LinearDemandModel(Capacity.of(energy=20.0), {})
    with pytest.raises(CapacityExceededError):
        p.reserve_for("h", model, {})


def test_can_serve_at_handles_unmappable_levels():
    p, _ = _provider()
    model = TabularDemandModel(Capacity.zero(), {"x": {"ok": Capacity.of(cpu=1)}})
    assert p.can_serve_at(model, {"x": "ok"})
    assert not p.can_serve_at(model, {"x": "missing"})


def test_release_holder_via_provider():
    p, node = _provider()
    model = LinearDemandModel(Capacity.of(cpu=5), {})
    p.reserve_for("svc:a", model, {})
    p.reserve_for("svc:a", model, {})
    assert p.release_holder("svc:a") == 2
    assert node.manager.reserved.is_zero

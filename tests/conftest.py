"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.qos import catalog
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload
from repro.sim.engine import Engine


@pytest.fixture
def engine() -> Engine:
    return Engine(seed=1234)


@pytest.fixture
def streaming_spec():
    return catalog.video_streaming_spec()


@pytest.fixture
def surveillance_request():
    return catalog.surveillance_request()


@pytest.fixture
def movie_request():
    return catalog.high_quality_streaming_request()


@pytest.fixture
def small_cluster():
    """A deterministic 4-node line-of-sight cluster: phone requester at
    the center, a PDA and two laptops within 50 m."""
    nodes = [
        Node("requester", NodeClass.PHONE, position=(50.0, 50.0)),
        Node("pda", NodeClass.PDA, position=(60.0, 50.0)),
        Node("lap1", NodeClass.LAPTOP, position=(40.0, 50.0)),
        Node("lap2", NodeClass.LAPTOP, position=(50.0, 70.0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    return topology, providers, nodes


@pytest.fixture
def movie_service():
    return workload.movie_playback_service(requester="requester")


@pytest.fixture
def surveillance_service():
    return workload.surveillance_service(requester="requester")

"""Protocol edge cases: late/duplicate proposals, timeouts, concurrency."""

from __future__ import annotations

import pytest

from repro.agents.messages import CFP, PROPOSE, ProposePayload
from repro.agents.organizer import OrganizerAgent
from repro.agents.system import AgentSystem
from repro.core.negotiation import release_coalition
from repro.core.proposal import Proposal
from repro.errors import ReproError
from repro.network.mobility import StaticPlacement
from repro.resources.capacity import Capacity
from repro.resources.node import Node, NodeClass
from repro.services import workload
from repro.sim.rng import RngRegistry


def _line_system(n_helpers=2, seed=5, max_hops=1, **kwargs):
    nodes = [Node("me", NodeClass.PDA)] + [
        Node(f"h{i}", NodeClass.LAPTOP) for i in range(n_helpers)
    ]
    # h0 sits inside half radio range (full bandwidth); later helpers sit
    # progressively farther, so comm cost strictly prefers h0.
    positions = {"me": (0.0, 0.0)}
    positions.update({f"h{i}": (20.0 + 40.0 * i, 0.0) for i in range(n_helpers)})
    placement = StaticPlacement(
        300.0, 300.0, RngRegistry(seed).stream("p"), positions=positions
    )
    return AgentSystem(nodes, seed=seed, mobility=placement,
                       reliable_channel=True, max_hops=max_hops, **kwargs)


def test_late_proposal_is_dropped():
    """A proposal arriving after the deadline is ignored."""
    system = _line_system(proposal_window=0.2)
    # Make h1 think far too long.
    system.provider_agents["h1"].propose_delay = 1.0
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None and outcome.success
    assert "h1" not in outcome.coalition.members
    assert "h1" not in outcome.candidates  # never responded in time


def test_duplicate_propose_from_same_sender_dropped():
    system = _line_system()
    organizer = system.organizer("me")
    service = workload.movie_playback_service(requester="me")
    session = organizer.request_service(service)
    # Craft a duplicate PROPOSE injection from h0 after its real one.
    system.engine.run(until=system.engine.now + 0.1)
    first_count = session.proposals_received
    fake = Proposal(task_id=service.tasks[0].task_id, node_id="h0",
                    values=dict(service.tasks[0].ladder().top().values()))
    from repro.network.messaging import Message

    msg = Message(sender="h0", recipient="me", kind=PROPOSE,
                  payload=ProposePayload(session.session_id, (fake,)))
    organizer._handle_propose(msg, system.engine.now)
    assert session.proposals_received == first_count  # dup ignored
    system.engine.run(until=system.engine.now + 2.0)


def test_unknown_session_messages_ignored():
    system = _line_system()
    organizer = system.organizer("me")
    from repro.network.messaging import Message

    msg = Message(sender="h0", recipient="me", kind=PROPOSE,
                  payload=ProposePayload("sess-ghost", ()))
    organizer._handle_propose(msg, 0.0)  # must not raise


def test_no_proposals_yields_failed_outcome():
    """Unwilling neighborhood: the deadline closes an empty session."""
    system = _line_system()
    for nid in ("h0", "h1"):
        system.nodes[nid].willing = False
    # Weak requester also can't serve video itself.
    system.nodes["me"].capacity = Capacity.of(cpu=10.0, energy=100.0)
    system.nodes["me"].manager.capacity = system.nodes["me"].capacity
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None
    assert not outcome.success
    assert len(outcome.unallocated) == len(service.tasks)


def test_two_concurrent_organizers_share_providers():
    """Two different requesters negotiate simultaneously; sessions stay
    isolated and admission arbitrates the shared helper."""
    nodes = [
        Node("a", NodeClass.PHONE),
        Node("b", NodeClass.PHONE),
        Node("helper", NodeClass.LAPTOP),
    ]
    placement = StaticPlacement(
        300.0, 300.0, RngRegistry(9).stream("p"),
        positions={"a": (0, 0), "b": (20, 0), "helper": (10, 0)},
    )
    system = AgentSystem(nodes, seed=9, mobility=placement, reliable_channel=True)
    org_a = system.organizer("a")
    org_b = system.organizer("b")
    results = {}
    org_a.request_service(
        workload.movie_playback_service(requester="a", name="svc-a"),
        on_complete=lambda o: results.__setitem__("a", o),
    )
    org_b.request_service(
        workload.movie_playback_service(requester="b", name="svc-b"),
        on_complete=lambda o: results.__setitem__("b", o),
    )
    # Run just past both negotiations but before lease expiry.
    system.engine.run(until=5.0)
    assert set(results) == {"a", "b"}
    # The laptop has capacity for both movies (2 × ~343 CPU < 1000), so
    # both sessions should have succeeded against the same helper.
    assert results["a"].success and results["b"].success
    reserved = system.nodes["helper"].manager.reserved
    assert not reserved.is_zero


def test_organizer_is_also_provider_for_others():
    """A node acting as organizer still answers other organizers' CFPs."""
    nodes = [
        Node("a", NodeClass.LAPTOP),
        Node("b", NodeClass.PHONE),
    ]
    placement = StaticPlacement(
        300.0, 300.0, RngRegistry(4).stream("p"),
        positions={"a": (0, 0), "b": (10, 0)},
    )
    system = AgentSystem(nodes, seed=4, mobility=placement, reliable_channel=True)
    # 'a' becomes an organizer first (its inbox is replaced + chained).
    system.organizer("a")
    service = workload.movie_playback_service(requester="b")
    outcome = system.negotiate(service)
    assert outcome is not None and outcome.success
    assert "a" in outcome.coalition.members  # laptop 'a' answered b's CFP


def test_award_timeout_falls_through_to_next():
    """A winner that never answers awards is skipped after the timeout."""
    system = _line_system(n_helpers=2, award_timeout=0.1)
    service = workload.movie_playback_service(requester="me")
    organizer = system.organizer("me")

    # Sabotage h0: it proposes but then drops all AWARD handling.
    h0_agent = system.provider_agents["h0"]
    h0_agent.on("AWARD", lambda msg, now: None)

    outcome_box = []
    organizer.request_service(service, on_complete=outcome_box.append)
    system.engine.run()
    assert outcome_box
    outcome = outcome_box[0]
    assert outcome.success
    assert "h0" not in outcome.coalition.members
    assert system.engine.tracer.count("negotiation", "award_timeout") >= 1


def test_unhandled_message_kinds_counted():
    system = _line_system()
    agent = system.provider_agents["h0"]
    system.network.send("me", "h0", "GIBBERISH", None)
    system.engine.run()
    assert agent.unhandled_count == 1


def test_dead_agent_ignores_messages():
    system = _line_system()
    system.nodes["h0"].fail()
    before = system.provider_agents["h0"].cfps_seen
    # Force-deliver directly (bypassing the dead-node drop in transit).
    system.provider_agents["h0"]._receive(
        __import__("repro.network.messaging", fromlist=["Message"]).Message(
            sender="me", recipient="h0", kind=CFP, payload=None
        ),
        0.0,
    )
    assert system.provider_agents["h0"].cfps_seen == before


def test_lease_reclaim_after_lost_confirm():
    """Sabotaged CONFIRM: the provider's reservation is leased and comes
    back automatically after expiry."""
    system = _line_system(n_helpers=2, award_timeout=0.1)
    h0_agent = system.provider_agents["h0"]
    h0_agent.award_lease = 5.0
    # h0 reserves on AWARD but its CONFIRM never sends.
    original = h0_agent._handle_award

    def award_then_silence(msg, now):
        original(msg, now)
        # Undo the CONFIRM by monkey-ignoring further organizer inbox...
        # simpler: drop all CONFIRMs from h0 by breaking the route:
    h0_sends = []
    real_send_routed = system.network.send_routed

    def filtering_send_routed(sender, recipient, kind, payload, size_kb=1.0):
        if sender == "h0" and kind == "CONFIRM":
            h0_sends.append(kind)
            return None  # swallowed by the void
        return real_send_routed(sender, recipient, kind, payload, size_kb)

    system.network.send_routed = filtering_send_routed
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None
    # If h0 won anything, its CONFIRM was swallowed; run past the lease.
    system.engine.run(until=system.engine.now + 10.0)
    if h0_sends:
        assert system.nodes["h0"].manager.reserved.is_zero
        assert h0_agent.leases_reclaimed >= 1

"""Unit tests for value types and domains."""

from __future__ import annotations

import pytest

from repro.errors import DomainError
from repro.qos.domain import ContinuousDomain, DiscreteDomain
from repro.qos.types import DomainKind, ValueType, check_type_domain_combination


# -- ValueType ---------------------------------------------------------------


def test_integer_validation():
    ValueType.INTEGER.validate(3)
    with pytest.raises(DomainError):
        ValueType.INTEGER.validate(3.0)
    with pytest.raises(DomainError):
        ValueType.INTEGER.validate("3")
    with pytest.raises(DomainError):
        ValueType.INTEGER.validate(True)  # bools are not ints here


def test_float_validation_accepts_ints():
    ValueType.FLOAT.validate(3)
    ValueType.FLOAT.validate(3.5)
    with pytest.raises(DomainError):
        ValueType.FLOAT.validate("x")
    with pytest.raises(DomainError):
        ValueType.FLOAT.validate(False)


def test_string_validation():
    ValueType.STRING.validate("720p")
    with pytest.raises(DomainError):
        ValueType.STRING.validate(720)


def test_coerce_normalizes_floats():
    assert ValueType.FLOAT.coerce(3) == 3.0
    assert isinstance(ValueType.FLOAT.coerce(3), float)
    assert ValueType.INTEGER.coerce(3) == 3
    assert isinstance(ValueType.INTEGER.coerce(3), int)


def test_continuous_string_combination_rejected():
    with pytest.raises(DomainError):
        check_type_domain_combination(ValueType.STRING, DomainKind.CONTINUOUS)


# -- DiscreteDomain --------------------------------------------------------


def test_discrete_membership_and_position():
    d = DiscreteDomain(ValueType.INTEGER, (24, 16, 8, 3, 1))
    assert 24 in d and 1 in d and 5 not in d
    assert d.position(24) == 0  # best value has quality index 0
    assert d.position(1) == 4
    assert len(d) == 5
    assert list(d) == [24, 16, 8, 3, 1]


def test_discrete_position_unknown_value():
    d = DiscreteDomain(ValueType.INTEGER, (2, 1))
    with pytest.raises(DomainError):
        d.position(3)


def test_discrete_rejects_duplicates_and_empty():
    with pytest.raises(DomainError):
        DiscreteDomain(ValueType.INTEGER, (1, 1))
    with pytest.raises(DomainError):
        DiscreteDomain(ValueType.INTEGER, ())


def test_discrete_type_mismatch_member():
    with pytest.raises(DomainError):
        DiscreteDomain(ValueType.INTEGER, (1, "a"))


def test_discrete_span():
    assert DiscreteDomain(ValueType.INTEGER, (3, 2, 1)).span() == 2.0
    # Singleton domains define span 1 so zero numerators divide cleanly.
    assert DiscreteDomain(ValueType.INTEGER, (1,)).span() == 1.0


def test_discrete_string_domain():
    d = DiscreteDomain(ValueType.STRING, ("1080p", "720p", "480p"))
    assert d.position("720p") == 1
    assert "240p" not in d


def test_discrete_validate_returns_coerced():
    d = DiscreteDomain(ValueType.INTEGER, (2, 1))
    assert d.validate(2) == 2
    with pytest.raises(DomainError):
        d.validate(9)


def test_discrete_equality_and_hash():
    a = DiscreteDomain(ValueType.INTEGER, (2, 1))
    b = DiscreteDomain(ValueType.INTEGER, (2, 1))
    c = DiscreteDomain(ValueType.INTEGER, (1, 2))
    assert a == b and hash(a) == hash(b)
    assert a != c  # order is semantic (quality index)


# -- ContinuousDomain ----------------------------------------------------------


def test_continuous_membership():
    d = ContinuousDomain(ValueType.INTEGER, 1, 30)
    assert 1 in d and 30 in d and 15 in d
    assert 0 not in d and 31 not in d


def test_continuous_reversed_bounds_rejected():
    with pytest.raises(DomainError):
        ContinuousDomain(ValueType.FLOAT, 10.0, 1.0)


def test_continuous_span_and_degenerate():
    assert ContinuousDomain(ValueType.INTEGER, 1, 30).span() == 29.0
    assert ContinuousDomain(ValueType.INTEGER, 5, 5).span() == 1.0


def test_continuous_clamp():
    d = ContinuousDomain(ValueType.INTEGER, 1, 30)
    assert d.clamp(100) == 30
    assert d.clamp(-5) == 1
    assert d.clamp(12.6) == 13  # integer domains round
    f = ContinuousDomain(ValueType.FLOAT, 0.0, 1.0)
    assert f.clamp(0.25) == 0.25


def test_continuous_string_rejected():
    with pytest.raises(DomainError):
        ContinuousDomain(ValueType.STRING, 0, 1)  # type: ignore[arg-type]


def test_continuous_validate():
    d = ContinuousDomain(ValueType.FLOAT, 0.0, 2.0)
    assert d.validate(1) == 1.0
    with pytest.raises(DomainError):
        d.validate(3.0)


def test_continuous_equality():
    a = ContinuousDomain(ValueType.INTEGER, 1, 30)
    b = ContinuousDomain(ValueType.INTEGER, 1, 30)
    assert a == b and hash(a) == hash(b)
    assert a != ContinuousDomain(ValueType.INTEGER, 1, 29)

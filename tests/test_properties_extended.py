"""Extended property-based tests: serialization roundtrips, negotiation
invariants, lease safety, and selection-policy coherence."""

from __future__ import annotations

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admissibility import is_admissible
from repro.core.negotiation import negotiate
from repro.core.proposal import Proposal
from repro.core.selection import ScoredProposal, SelectionPolicy
from repro.experiments.config import ClusterConfig
from repro.experiments.scenario import build_cluster
from repro.qos import catalog
from repro.qos.serialization import (
    request_from_dict,
    request_to_dict,
    spec_from_dict,
    spec_to_dict,
)
from repro.resources.capacity import Capacity
from repro.resources.manager import ResourceManager
from repro.resources.kinds import ResourceKind
from repro.services import workload


# -- serialization roundtrips over random synthetic specs --------------------


@given(
    n_dims=st.integers(1, 4),
    n_attrs=st.integers(1, 3),
    levels=st.integers(1, 6),
)
@settings(max_examples=30, deadline=None)
def test_synthetic_spec_roundtrip(n_dims, n_attrs, levels):
    spec = catalog.synthetic_spec(n_dims, n_attrs, levels)
    data = json.loads(json.dumps(spec_to_dict(spec)))
    restored = spec_from_dict(data)
    assert restored.dimension_names == spec.dimension_names
    assert restored.attribute_names == spec.attribute_names
    for name in spec.attribute_names:
        assert restored.attribute(name).domain == spec.attribute(name).domain


@given(
    n_dims=st.integers(1, 3),
    n_attrs=st.integers(1, 3),
    levels=st.integers(2, 6),
    acceptable=st.integers(1, 6),
)
@settings(max_examples=30, deadline=None)
def test_synthetic_request_roundtrip(n_dims, n_attrs, levels, acceptable):
    spec = catalog.synthetic_spec(n_dims, n_attrs, levels)
    request = catalog.synthetic_request(spec, acceptable_levels=min(acceptable, levels))
    data = json.loads(json.dumps(request_to_dict(request)))
    restored = request_from_dict(data, spec)
    assert restored.preferred_assignment() == request.preferred_assignment()
    for attr in spec.attribute_names:
        for value in spec.attribute(attr).domain.values:  # type: ignore[union-attr]
            assert restored.accepts(attr, value) == request.accepts(attr, value)


# -- negotiation invariants over random clusters ------------------------------


@given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 10))
@settings(max_examples=15, deadline=None)
def test_negotiation_dry_run_purity(seed, n_nodes):
    """A dry-run negotiation never mutates provider state."""
    topology, providers, nodes, _ = build_cluster(
        ClusterConfig(n_nodes=n_nodes), seed=seed
    )
    batteries = {nid: p.node.battery for nid, p in providers.items()}
    service = workload.movie_playback_service(requester="requester",
                                              name=f"m{seed}")
    negotiate(service, topology, providers, commit=False)
    assert all(p.node.manager.reserved.is_zero for p in providers.values())
    assert {nid: p.node.battery for nid, p in providers.items()} == batteries


@given(seed=st.integers(0, 10_000), n_nodes=st.integers(2, 10))
@settings(max_examples=15, deadline=None)
def test_awarded_proposals_always_admissible_and_within_capacity(seed, n_nodes):
    """Every award satisfies admissibility and fits its node's capacity."""
    topology, providers, nodes, _ = build_cluster(
        ClusterConfig(n_nodes=n_nodes), seed=seed
    )
    service = workload.movie_playback_service(requester="requester",
                                              name=f"m{seed}")
    outcome = negotiate(service, topology, providers, commit=True)
    for task in service.tasks:
        award = outcome.coalition.awards.get(task.task_id)
        if award is None:
            continue
        assert is_admissible(task.request, award.proposal)
        node = providers[award.node_id].node
        assert node.capacity.covers(node.manager.reserved)
    # Winners are always drawn from the audience.
    assert outcome.coalition.members <= set(outcome.candidates)


@given(seed=st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_negotiation_deterministic_given_state(seed):
    """Same cluster state + same service object => identical awards.

    (The service is built once: task ids carry a process-global counter
    that participates in the final determinism tie-break, so two
    *different* service objects with identical content may legitimately
    break exact distance ties differently.)
    """
    service = workload.movie_playback_service(requester="requester",
                                              name="fixed")

    def winners():
        topology, providers, nodes, _ = build_cluster(
            ClusterConfig(n_nodes=6), seed=seed
        )
        outcome = negotiate(service, topology, providers, commit=False)
        return tuple(
            outcome.coalition.awards[t.task_id].node_id
            if t.task_id in outcome.coalition.awards else None
            for t in service.tasks
        )

    assert winners() == winners()


# -- lease safety -------------------------------------------------------------


@given(
    ttls=st.lists(st.one_of(st.none(), st.floats(0.1, 50.0)), min_size=1, max_size=20),
    sweep_time=st.floats(0.0, 100.0),
)
def test_lease_sweep_only_reclaims_lapsed(ttls, sweep_time):
    mgr = ResourceManager(Capacity.of(cpu=1e6))
    reservations = [
        mgr.reserve(f"h{i}", Capacity.of(cpu=1.0), now=0.0, ttl=ttl)
        for i, ttl in enumerate(ttls)
    ]
    mgr.release_expired(sweep_time)
    for r, ttl in zip(reservations, ttls):
        should_live = ttl is None or sweep_time < ttl
        assert r.live == should_live
    assert mgr.reserved + mgr.available == mgr.capacity


# -- selection coherence --------------------------------------------------------


scored_proposals = st.builds(
    lambda node, dist, comm, new, rep, bat: ScoredProposal(
        proposal=Proposal(task_id="t", node_id=f"n{node}", values={}),
        distance=dist, comm_cost=comm, new_member=new,
        reputation=rep, battery_fraction=bat,
    ),
    st.integers(0, 50),
    st.floats(0.0, 2.0),
    st.floats(0.0, 10.0),
    st.booleans(),
    st.floats(0.0, 1.0),
    st.floats(0.0, 1.0),
)


@given(st.lists(scored_proposals, min_size=1, max_size=12))
def test_select_equals_rank_head(pool):
    for policy in (
        SelectionPolicy(),
        SelectionPolicy(use_reputation=True),
        SelectionPolicy(use_battery=True),
        SelectionPolicy(use_comm_cost=False, use_coalition_size=False),
    ):
        assert policy.select(pool) is policy.rank(pool)[0]


@given(st.lists(scored_proposals, min_size=2, max_size=12))
def test_rank_is_total_and_stable(pool):
    policy = SelectionPolicy(use_reputation=True, use_battery=True)
    ranked = policy.rank(pool)
    assert len(ranked) == len(pool)
    assert set(id(s) for s in ranked) == set(id(s) for s in pool)
    # Ranking twice (and from reversed input) gives the same order.
    assert [s.proposal.node_id for s in policy.rank(list(reversed(pool)))] == \
        [s.proposal.node_id for s in ranked]


@given(st.lists(scored_proposals, min_size=1, max_size=12))
def test_strictly_lower_distance_always_wins(pool):
    """No tie-break may override a strictly lower (non-tied) distance."""
    policy = SelectionPolicy(use_reputation=True, use_battery=True,
                             distance_resolution=1e-9)
    winner = policy.select(pool)
    min_distance = min(s.distance for s in pool)
    assert winner.distance <= min_distance + 1e-6

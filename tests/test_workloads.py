"""Tests for the scenario-generation subsystem (repro.workloads) and
the E15–E17 suites built on it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.__main__ import main as cli_main
from repro.experiments.config import SweepConfig
from repro.experiments.parallel import run_batch
from repro.experiments.store import ResultsStore
from repro.experiments.suites import ALL_SUITES, SUITE_PLANS
from repro.resources.kinds import ResourceKind
from repro.resources.node import NODE_CLASS_PROFILES, NodeClass
from repro.sim.rng import RngRegistry
from repro.workloads import (
    BurstyProcess,
    FixedIntervalProcess,
    PoissonProcess,
    ScenarioSpec,
    build_service,
    get_scenario,
    list_scenarios,
    register,
    run_contention,
)
from repro.workloads.arrivals import make_arrival_process
from repro.workloads.registry import SCENARIOS
from repro.workloads.services import (
    NEW_SERVICE_FAMILIES,
    SERVICE_FAMILIES,
    family_demand_bounds,
)


# -- service families -------------------------------------------------------


def test_registry_spans_paper_and_new_families():
    assert set(NEW_SERVICE_FAMILIES) == {"speech", "sensor-fusion", "navigation"}
    assert {"movie", "surveillance", "conference"} <= set(SERVICE_FAMILIES)
    assert set(NEW_SERVICE_FAMILIES) <= set(SERVICE_FAMILIES)


@pytest.mark.parametrize("family", sorted(NEW_SERVICE_FAMILIES))
def test_new_family_calibration(family):
    """Preferred quality needs cooperation; worst acceptable fits a PDA."""
    pda = NODE_CLASS_PROFILES[NodeClass.PDA]
    bounds = family_demand_bounds(family)
    assert bounds["top"]["cpu"] > 2 * pda.get(ResourceKind.CPU)
    assert bounds["bottom"]["cpu"] <= pda.get(ResourceKind.CPU)


@pytest.mark.parametrize("family", sorted(NEW_SERVICE_FAMILIES))
def test_new_family_bottom_task_fits_a_pda(family):
    """Every task, fully degraded, is servable by a fresh PDA node."""
    pda = NODE_CLASS_PROFILES[NodeClass.PDA]
    service = build_service(family, requester="r")
    for task in service.tasks:
        demand = task.demand_at(task.ladder().bottom().values())
        assert pda.covers(demand), f"{task.task_id}: {demand}"


def test_build_service_names_and_requester():
    service = build_service("speech", requester="req3", name="speech-req3-0")
    assert service.requester == "req3"
    assert service.name == "speech-req3-0"


def test_build_service_unknown_family():
    with pytest.raises(KeyError, match="unknown service family"):
        build_service("quantum-chess", requester="r")


# -- arrival processes ------------------------------------------------------


def test_fixed_interval_is_deterministic_and_ignores_rng():
    process = FixedIntervalProcess(interval=50.0, offset=10.0)
    rng = np.random.default_rng(0)
    assert process.arrivals(rng, 240.0) == (10.0, 60.0, 110.0, 160.0, 210.0)
    # No draws consumed: the generator still matches a fresh one.
    assert np.random.default_rng(0).random() == rng.random()


def test_poisson_is_pure_function_of_stream():
    process = PoissonProcess(rate=0.05)
    a = process.arrivals(RngRegistry(7).stream("arr"), 300.0)
    b = process.arrivals(RngRegistry(7).stream("arr"), 300.0)
    assert a == b
    assert a != process.arrivals(RngRegistry(8).stream("arr"), 300.0)
    assert all(0.0 <= t < 300.0 for t in a)
    assert list(a) == sorted(a)


def test_bursty_is_deterministic_and_bounded():
    process = BurstyProcess(base_rate=0.01, burst_rate=0.2, period=60.0,
                            burst_fraction=0.25)
    a = process.arrivals(RngRegistry(3).stream("arr"), 240.0)
    assert a == process.arrivals(RngRegistry(3).stream("arr"), 240.0)
    assert all(0.0 <= t < 240.0 for t in a)


def test_arrival_validation():
    with pytest.raises(ValueError):
        FixedIntervalProcess(interval=0.0)
    with pytest.raises(ValueError):
        PoissonProcess(rate=-1.0)
    with pytest.raises(ValueError):
        BurstyProcess(base_rate=0.5, burst_rate=0.1)  # burst below base
    with pytest.raises(ValueError):
        PoissonProcess(rate=1.0).arrivals(np.random.default_rng(0), 0.0)


def test_make_arrival_process():
    process = make_arrival_process("poisson", rate=0.1)
    assert isinstance(process, PoissonProcess)
    with pytest.raises(KeyError, match="unknown arrival family"):
        make_arrival_process("fractal")


# -- contention runs --------------------------------------------------------


def test_contention_is_pure_function_of_seed():
    spec = get_scenario("duet-av").replace(horizon=120.0)
    a, b = spec.run(11), spec.run(11)
    assert a.sessions == b.sessions
    assert a.metrics() == b.metrics()
    assert a.metrics() != spec.run(12).metrics()


def test_contention_requesters_and_families_cycle():
    result = run_contention(
        seed=5, n_requesters=3, families=("movie", "speech"),
        arrival=FixedIntervalProcess(interval=40.0), horizon=120.0,
    )
    assert result.n_requesters == 3
    assert {s.requester for s in result.sessions} == {0, 1, 2}
    by_requester = {s.requester: s.family for s in result.sessions}
    assert by_requester == {0: "movie", 1: "speech", 2: "movie"}


def test_contention_releases_all_reservations(monkeypatch):
    """After a run every provider is back to full headroom."""
    from repro.workloads import contention as C

    captured = {}
    original = C.build_contention_cluster

    def capture(*args, **kwargs):
        out = original(*args, **kwargs)
        captured["providers"] = out[1]
        return out

    monkeypatch.setattr(C, "build_contention_cluster", capture)
    run_contention(seed=2, n_requesters=2, horizon=120.0)
    for provider in captured["providers"].values():
        assert provider.headroom() == provider.node.capacity


def test_contention_metrics_keys_are_stable():
    quiet = run_contention(
        seed=1, n_requesters=1,
        arrival=FixedIntervalProcess(interval=1000.0, offset=500.0),
        horizon=120.0,
    )
    busy = run_contention(seed=1, n_requesters=2, horizon=120.0)
    assert quiet.offered() == 0
    assert set(quiet.metrics()) == set(busy.metrics())


def test_contention_validation():
    with pytest.raises(ValueError):
        run_contention(seed=1, n_requesters=0)
    with pytest.raises(ValueError):
        run_contention(seed=1, n_requesters=9, n_nodes=8)
    with pytest.raises(KeyError, match="unknown service family"):
        run_contention(seed=1, families=("tetris",))
    with pytest.raises(KeyError, match="unknown fleet mix"):
        run_contention(seed=1, mix="all-mainframes")


def test_fairness_bounds():
    result = run_contention(seed=4, n_requesters=2, horizon=120.0)
    k = result.n_requesters
    assert 1.0 / k <= result.fairness() <= 1.0


# -- scenario registry ------------------------------------------------------


def test_builtin_scenarios_are_registered():
    names = [spec.name for spec in list_scenarios()]
    assert "contention-mix" in names and "saturation-trio" in names
    assert get_scenario("contention-mix").n_requesters == 4


def test_get_scenario_unknown():
    with pytest.raises(KeyError, match="unknown scenario"):
        get_scenario("does-not-exist")


def test_register_rejects_duplicates():
    spec = get_scenario("solo-movie")
    with pytest.raises(ValueError, match="already registered"):
        register(spec)


def test_register_and_run_custom_scenario():
    name = "test-custom-duo"
    SCENARIOS.pop(name, None)
    spec = register(ScenarioSpec(
        name=name,
        description="test-only scenario",
        families=("surveillance",),
        n_requesters=2,
        n_nodes=8,
        horizon=90.0,
        arrival="fixed",
        arrival_params=(("interval", 45.0),),
    ))
    try:
        result = spec.run(3)
        assert result.offered() == 2 * 2  # two fixed arrivals per requester
    finally:
        SCENARIOS.pop(name, None)


def test_scenario_spec_validation():
    with pytest.raises(ValueError, match="unknown service family"):
        ScenarioSpec(name="x", description="", families=("warp-drive",))
    with pytest.raises(ValueError, match="unknown arrival family"):
        ScenarioSpec(name="x", description="", families=("movie",),
                     arrival="sporadic")
    with pytest.raises(ValueError, match="do not fit"):
        ScenarioSpec(name="x", description="", families=("movie",),
                     n_requesters=20, n_nodes=10)
    with pytest.raises(ValueError, match="unknown fleet mix"):
        ScenarioSpec(name="x", description="", families=("movie",),
                     mix="contnetion")


def test_scenario_replace_sweeps_fields():
    base = get_scenario("saturation-trio")
    swept = base.replace(arrival_params=(("rate", 0.5),), n_requesters=1)
    assert swept.arrival_process().rate == 0.5
    assert swept.n_requesters == 1
    assert base.arrival_process().rate != 0.5  # original untouched


# -- E15–E17 wiring ---------------------------------------------------------


def test_new_suites_registered_everywhere():
    for suite in ("E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23"):
        assert suite in SUITE_PLANS
        assert suite in ALL_SUITES
    assert list(ALL_SUITES)[-1] == "E23"


def test_e17_new_families_need_coalitions():
    sweep = SweepConfig(seeds=(1, 2), quick=True)
    table = ALL_SUITES["E17"](sweep)
    assert [row[0] for row in table.rows] == list(NEW_SERVICE_FAMILIES)
    for row in table.rows:
        single_success, coal_success = row[1], row[3]
        assert single_success.mean == 0.0  # a phone can never serve solo
        assert coal_success.mean > single_success.mean


def test_e15_parallel_batch_bit_identical_to_serial(tmp_path):
    """The issue's acceptance bar: contention suites through the shared
    scheduler are bit-identical, parallel vs serial."""
    serial = run_batch(
        ["E15"], SweepConfig(seeds=(1, 2), quick=True, jobs=1),
        store=ResultsStore(tmp_path / "serial"),
    )[0]
    parallel = run_batch(
        ["E15"], SweepConfig(seeds=(1, 2), quick=True, jobs=2),
        store=ResultsStore(tmp_path / "parallel"),
    )[0]
    cmp = ResultsStore.compare(serial, parallel)
    assert cmp.identical, cmp.differences
    # And the persisted bench reports round-trip to the same verdict.
    cmp = ResultsStore.compare(
        ResultsStore(tmp_path / "serial").load_bench("E15"),
        ResultsStore(tmp_path / "parallel").load_bench("E15"),
    )
    assert cmp.identical, cmp.differences


def test_e16_plan_labels_are_rates():
    plan = SUITE_PLANS["E16"](SweepConfig(quick=True))
    assert all(isinstance(point.label, float) for point in plan.points)
    assert len(plan.points) == 2


# -- CLI --------------------------------------------------------------------


def test_cli_list_includes_new_suites_and_computed_span(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert f"{len(ALL_SUITES)} suites (E1–E23):" in out
    for suite in ("E15", "E16", "E17", "E18", "E19", "E20", "E21", "E22", "E23"):
        assert suite in out


def test_cli_list_scenarios(capsys):
    assert cli_main(["--list-scenarios"]) == 0
    out = capsys.readouterr().out
    assert "contention-mix" in out
    assert "saturation-trio" in out
    assert f"{len(SCENARIOS)} scenarios:" in out

"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


def test_all_errors_derive_from_repro_error():
    error_classes = [
        obj for obj in vars(errors).values()
        if isinstance(obj, type) and issubclass(obj, Exception)
    ]
    assert len(error_classes) >= 15
    for cls in error_classes:
        assert issubclass(cls, errors.ReproError) or cls is errors.ReproError


def test_error_subhierarchies():
    assert issubclass(errors.UnknownDimensionError, errors.QoSSpecError)
    assert issubclass(errors.UnknownAttributeError, errors.QoSSpecError)
    assert issubclass(errors.DomainError, errors.QoSSpecError)
    assert issubclass(errors.CapacityExceededError, errors.ResourceError)
    assert issubclass(errors.UnknownReservationError, errors.ResourceError)
    assert issubclass(errors.MappingError, errors.ResourceError)
    assert issubclass(errors.NotConnectedError, errors.NetworkError)
    assert issubclass(errors.UnknownNodeError, errors.NetworkError)
    assert issubclass(errors.NoAdmissibleProposalError, errors.NegotiationError)
    assert issubclass(errors.InfeasibleTaskError, errors.NegotiationError)
    assert issubclass(errors.CoalitionStateError, errors.CoalitionError)
    assert issubclass(errors.SchedulingError, errors.SimulationError)


def test_structured_errors_carry_context():
    e = errors.UnknownDimensionError("Video")
    assert e.dimension == "Video" and "Video" in str(e)
    e2 = errors.UnknownAttributeError("fps")
    assert e2.attribute == "fps"
    e3 = errors.UnknownNodeError("n7")
    assert e3.node_id == "n7"


def test_catching_base_class_catches_all():
    from repro.qos.domain import DiscreteDomain
    from repro.qos.types import ValueType

    with pytest.raises(errors.ReproError):
        DiscreteDomain(ValueType.INTEGER, ())


def test_public_api_exports_resolve():
    for name in repro.__all__:
        assert getattr(repro, name, None) is not None, f"missing export {name}"


def test_version_string():
    assert repro.__version__.count(".") == 2


def test_qos_namespace_exports():
    from repro import qos

    for name in qos.__all__:
        assert getattr(qos, name, None) is not None, f"missing qos export {name}"


def test_core_namespace_exports():
    from repro import core

    for name in core.__all__:
        assert getattr(core, name, None) is not None, f"missing core export {name}"

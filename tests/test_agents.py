"""Unit/integration tests for the agent-based protocol."""

from __future__ import annotations

import pytest

from repro.agents.system import AgentSystem
from repro.core.negotiation import negotiate, release_coalition
from repro.errors import UnknownNodeError
from repro.metrics.utility import outcome_utility
from repro.network.mobility import StaticPlacement
from repro.resources.capacity import Capacity
from repro.resources.node import Node, NodeClass
from repro.services import workload
from repro.sim.rng import RngRegistry


def _system(n_laptops=3, seed=42, **kwargs):
    nodes = [Node("me", NodeClass.PHONE)] + [
        Node(f"lap{i}", NodeClass.LAPTOP) for i in range(n_laptops)
    ]
    placement = StaticPlacement(
        60.0, 60.0, RngRegistry(seed).stream("placement")
    )
    return AgentSystem(nodes, seed=seed, mobility=placement, **kwargs)


def test_agent_negotiation_succeeds():
    system = _system(reliable_channel=True)
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None
    assert outcome.success
    assert outcome_utility(outcome) == pytest.approx(1.0)
    assert system.engine.now > 0  # simulated time actually passed


def test_agent_awards_reserve_on_winners():
    system = _system(reliable_channel=True)
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    for award in outcome.coalition.awards.values():
        manager = system.nodes[award.node_id].manager
        assert not manager.reserved.is_zero


def test_agent_negotiation_matches_sync_result():
    """Agent-based and synchronous negotiation agree on the winners when
    the channel is reliable (same inputs, same selection logic)."""
    system = _system(reliable_channel=True, seed=7)
    service = workload.movie_playback_service(requester="me", name="m1")
    agent_outcome = system.negotiate(service)
    assert agent_outcome is not None
    release_coalition(agent_outcome.coalition, system.providers, 0.0)

    sync_outcome = negotiate(
        service, system.topology, system.providers, commit=False
    )
    agent_awards = {
        tid: a.node_id for tid, a in agent_outcome.coalition.awards.items()
    }
    sync_awards = {
        tid: a.node_id for tid, a in sync_outcome.coalition.awards.items()
    }
    assert agent_awards == sync_awards


def test_agent_negotiation_with_lossy_channel_still_terminates():
    system = _system(seed=3)  # default lossy channel
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None  # may or may not fully succeed, must finish


def test_unwilling_nodes_do_not_propose():
    system = _system(reliable_channel=True)
    for nid in ("lap0", "lap1", "lap2"):
        system.nodes[nid].willing = False
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None
    assert not outcome.success  # phone alone cannot decode video
    assert outcome.coalition.members <= {"me"}


def test_dead_requester_yields_nothing():
    system = _system(reliable_channel=True)
    system.nodes["me"].fail()
    system.topology.rebuild()
    service = workload.movie_playback_service(requester="me")
    outcome = system.negotiate(service)
    # Organizer node is dead: broadcast goes nowhere, no proposals, the
    # deadline fires and yields an empty-coalition outcome.
    assert outcome is not None
    assert not outcome.success


def test_provider_agent_counters():
    system = _system(reliable_channel=True)
    service = workload.movie_playback_service(requester="me")
    system.negotiate(service)
    seen = sum(a.cfps_seen for a in system.provider_agents.values())
    assert seen >= 3  # every laptop heard the CFP
    confirmed = sum(a.awards_confirmed for a in system.provider_agents.values())
    assert confirmed == 2  # both tasks awarded remotely


def test_duplicate_node_ids_rejected():
    with pytest.raises(ValueError):
        AgentSystem([Node("x"), Node("x")])


def test_organizer_unknown_node_rejected():
    system = _system()
    with pytest.raises(UnknownNodeError):
        system.organizer("ghost")


def test_sequential_services_share_system():
    system = _system(reliable_channel=True)
    for i in range(3):
        service = workload.surveillance_service(requester="me", name=f"s{i}")
        outcome = system.negotiate(service)
        assert outcome is not None and outcome.success
        release_coalition(outcome.coalition, system.providers, system.engine.now)


def test_award_falls_through_on_refuse():
    """Two capacity-tight helpers: the AWARD to the first winner for task
    2 must be refused (headroom gone) and fall through to the other.

    150 CPU fits one degraded movie video (>= 114) but not two, and is
    below the joint-formulation floor (228), so each helper offers both
    tasks via the per-task fallback and can honour only one award."""
    tight_cap = Capacity.of(
        cpu=150.0, memory=256.0, bus_bandwidth=100.0,
        net_bandwidth=4000.0, energy=50_000.0,
    )
    nodes = [
        Node("me", NodeClass.PHONE, position=(0, 0)),
        Node("t1", capacity=tight_cap, position=(10, 0)),
        Node("t2", capacity=tight_cap, position=(20, 0)),
    ]
    placement = StaticPlacement(
        60.0, 60.0, RngRegistry(1).stream("p"),
        positions={"me": (0, 0), "t1": (10, 0), "t2": (20, 0)},
    )
    system = AgentSystem(nodes, seed=1, mobility=placement, reliable_channel=True)
    service = workload.movie_playback_service(requester="me", name="m")
    from repro.services.service import Service
    from repro.services.task import Task

    t0 = service.tasks[0]
    t1 = Task(task_id="video-2", request=t0.request, demand_model=t0.demand_model)
    double = Service(name="double", tasks=(t0, t1), requester="me")
    outcome = system.negotiate(double)
    assert outcome is not None and outcome.success
    assert outcome.coalition.size == 2
    refused = sum(a.awards_refused for a in system.provider_agents.values())
    assert refused == 1


def test_step_mobility_rebuilds_topology():
    system = _system()
    before = system.topology.graph.number_of_edges()
    system.nodes["lap0"].move_to(5000, 5000)
    system.step_mobility(0.0)
    assert system.topology.neighbors("lap0") == ()

"""Unit tests for degradation ladders and quality assignments."""

from __future__ import annotations

import pytest

from repro.errors import DomainError, RequestError
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE, SAMPLE_BITS, SAMPLING_RATE
from repro.qos.levels import DegradationLadder, build_ladder
from repro.qos.request import AttributePreference, ValueInterval
from repro.qos.types import ValueType


def test_build_ladder_expands_integer_intervals():
    ap = AttributePreference("fr", (ValueInterval(10, 5), ValueInterval(4, 1)))
    ladder = build_ladder(ap, ValueType.INTEGER)
    assert ladder == (10, 9, 8, 7, 6, 5, 4, 3, 2, 1)


def test_build_ladder_scalars_keep_order():
    ap = AttributePreference("cd", (3, 1))
    assert build_ladder(ap, ValueType.INTEGER) == (3, 1)


def test_build_ladder_deduplicates_touching_intervals():
    ap = AttributePreference("fr", (ValueInterval(5, 3), ValueInterval(3, 1)))
    assert build_ladder(ap, ValueType.INTEGER) == (5, 4, 3, 2, 1)


def test_build_ladder_float_steps():
    ap = AttributePreference("gain", (ValueInterval(1.0, 0.0),))
    ladder = build_ladder(ap, ValueType.FLOAT, float_steps=5)
    assert len(ladder) == 5
    assert ladder[0] == 1.0 and ladder[-1] == 0.0
    assert all(ladder[i] > ladder[i + 1] for i in range(4))


def test_build_ladder_degenerate_float_interval():
    ap = AttributePreference("gain", (ValueInterval(0.5, 0.5),))
    assert build_ladder(ap, ValueType.FLOAT) == (0.5,)


def test_ladder_from_surveillance_request():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    assert ls.ladder(FRAME_RATE) == (10, 9, 8, 7, 6, 5, 4, 3, 2, 1)
    assert ls.ladder(COLOR_DEPTH) == (3, 1)
    assert ls.ladder(SAMPLING_RATE) == (8,)
    assert ls.depth(SAMPLE_BITS) == 1
    with pytest.raises(RequestError):
        ls.ladder("ghost")


def test_top_and_bottom_assignments():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    top = ls.top()
    bottom = ls.bottom()
    assert top.at_top and not top.at_bottom
    assert bottom.at_bottom and not bottom.at_top
    assert top.value(FRAME_RATE) == 10
    assert bottom.value(FRAME_RATE) == 1
    assert top.total_degradation() == 0
    assert bottom.total_degradation() == (10 - 1) + (2 - 1)  # fr + cd ladders


def test_degrade_walks_one_step():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    a = ls.top()
    b = a.degrade(FRAME_RATE)
    assert b.value(FRAME_RATE) == 9
    assert a.value(FRAME_RATE) == 10  # immutability
    assert b.index(FRAME_RATE) == 1


def test_degrade_at_bottom_raises():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    with pytest.raises(DomainError):
        ls.bottom().degrade(FRAME_RATE)
    assert not ls.bottom().can_degrade(FRAME_RATE)


def test_degradable_attributes_in_importance_order():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    # Audio attributes have single-value ladders: never degradable.
    assert ls.top().degradable_attributes() == (FRAME_RATE, COLOR_DEPTH)


def test_assignment_from_values_and_errors():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    a = ls.assignment_from_values(
        {FRAME_RATE: 7, COLOR_DEPTH: 1, SAMPLING_RATE: 8, SAMPLE_BITS: 8}
    )
    assert a.index(FRAME_RATE) == 3
    with pytest.raises(DomainError):
        ls.assignment_from_values(
            {FRAME_RATE: 30, COLOR_DEPTH: 1, SAMPLING_RATE: 8, SAMPLE_BITS: 8}
        )
    with pytest.raises(RequestError):
        ls.assignment_from_values({FRAME_RATE: 7})


def test_assignment_equality_and_hash():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    assert ls.top() == ls.top()
    assert hash(ls.top()) == hash(ls.top())
    assert ls.top() != ls.top().degrade(FRAME_RATE)


def test_values_roundtrip():
    req = catalog.surveillance_request()
    ls = DegradationLadder.from_request(req)
    a = ls.top().degrade(FRAME_RATE).degrade(COLOR_DEPTH)
    assert ls.assignment_from_values(a.values()) == a


def test_respects_dependencies_with_conference_spec():
    req = catalog.video_conference_request()
    ls = DegradationLadder.from_request(req)
    top = ls.top()
    # Top level: wavelet codec at 20 fps — allowed (<= 20 limit).
    assert top.respects_dependencies()

"""Tests for the CLI runner, evaluator options in negotiation, and
miscellaneous API details."""

from __future__ import annotations

import pytest

from repro.core.evaluation import ProposalEvaluator, WeightScheme
from repro.core.negotiation import negotiate
from repro.core.proposal import Proposal
from repro.core.reward import ConstantPenalty, QuadraticPenalty
from repro.experiments.__main__ import main as cli_main
from repro.qos import catalog
from repro.qos.catalog import COLOR_DEPTH, FRAME_RATE, SAMPLE_BITS, SAMPLING_RATE
from repro.services import workload


# -- CLI ------------------------------------------------------------------


def test_cli_list(capsys):
    assert cli_main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "E1" in out and "E13" in out


def test_cli_unknown_suite(capsys):
    assert cli_main(["E99"]) == 2
    assert "unknown suite" in capsys.readouterr().err


def test_cli_runs_selected_suite(capsys, tmp_path):
    assert cli_main(["--quick", "--seeds", "2", "--out", str(tmp_path), "E2"]) == 0
    out = capsys.readouterr().out
    assert "E2 — evaluator selection quality" in out
    assert (tmp_path / "BENCH_E2.json").exists()


# -- evaluator options through negotiate ------------------------------------


def test_negotiate_with_request_normalization(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(
        movie_service, topology, providers, commit=False,
        evaluator_options={"normalize_by": "request"},
    )
    assert outcome.success


def test_negotiate_with_uniform_weights(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(
        movie_service, topology, providers, commit=False,
        weights=WeightScheme.UNIFORM,
    )
    assert outcome.success


def test_negotiate_with_custom_penalty(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    for penalty in (QuadraticPenalty(), ConstantPenalty()):
        outcome = negotiate(
            movie_service, topology, providers, commit=False, penalty=penalty,
        )
        assert outcome.success


# -- evaluator normalization cross-checks --------------------------------------


def test_domain_vs_request_normalization_order_preserved():
    """Both normalizations rank proposals identically when one dominates
    the other attribute-wise (order embedding, not just scale)."""
    request = catalog.surveillance_request()
    dom = ProposalEvaluator(request, normalize_by="domain")
    req = ProposalEvaluator(request, normalize_by="request")

    def proposal(fr, cd):
        return Proposal(
            task_id="t", node_id="n",
            values={FRAME_RATE: fr, COLOR_DEPTH: cd,
                    SAMPLING_RATE: 8, SAMPLE_BITS: 8},
        )

    better = proposal(9, 3)
    worse = proposal(4, 1)
    assert dom.distance(better) < dom.distance(worse)
    assert req.distance(better) < req.distance(worse)


def test_signed_evaluator_through_negotiation(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(
        movie_service, topology, providers, commit=False,
        evaluator_options={"signed": True},
    )
    # Signed mode is an ablation; it still allocates.
    assert outcome.success


# -- proposal immutability -----------------------------------------------------


def test_proposal_values_frozen():
    p = Proposal(task_id="t", node_id="n", values={FRAME_RATE: 10})
    with pytest.raises(TypeError):
        p.values[FRAME_RATE] = 5  # type: ignore[index]


def test_proposal_covers_and_value():
    p = Proposal(task_id="t", node_id="n", values={FRAME_RATE: 10})
    assert p.covers((FRAME_RATE,))
    assert not p.covers((FRAME_RATE, COLOR_DEPTH))
    assert p.value(FRAME_RATE) == 10
    with pytest.raises(KeyError):
        p.value(COLOR_DEPTH)


# -- task/ladder misc -----------------------------------------------------------


def test_task_transfer_and_ladder_helpers():
    service = workload.movie_playback_service(requester="r")
    task = service.tasks[0]
    assert task.transfer_kb() == task.input_kb + task.output_kb
    ladder = task.ladder(float_steps=4)
    assert ladder.top().at_top

"""End-to-end integration tests across all subsystems."""

from __future__ import annotations

import pytest

from repro.agents.system import AgentSystem
from repro.core import baselines
from repro.core.negotiation import negotiate, release_coalition
from repro.core.operation import run_operation_phase
from repro.experiments.config import ClusterConfig
from repro.experiments.scenario import build_agent_system, build_cluster
from repro.metrics.collector import collect_outcome_metrics
from repro.metrics.utility import outcome_utility
from repro.network.mobility import RandomWaypoint
from repro.resources.kinds import ResourceKind
from repro.resources.node import Node, NodeClass
from repro.services import workload
from repro.sim.engine import Engine
from repro.sim.rng import RngRegistry


def test_full_lifecycle_formation_operation_dissolution():
    """Form a coalition, operate it with a failure, dissolve cleanly."""
    topology, providers, nodes, _ = build_cluster(ClusterConfig(n_nodes=10), seed=11)
    service = workload.movie_playback_service(requester="requester")
    outcome = negotiate(service, topology, providers, commit=True)
    assert outcome.success

    engine = Engine(seed=11)
    victim = sorted(outcome.coalition.members - {"requester"})
    failures = [(3.0, victim[0])] if victim else []
    report = run_operation_phase(
        outcome.coalition, topology, providers, engine, failures=failures
    )
    assert report.completed + report.lost == len(service.tasks)
    # Every rate reservation is gone after dissolution.
    for provider in providers.values():
        assert provider.node.manager.reserved.is_zero


def test_multiple_concurrent_services_compete_for_capacity():
    """Two heavy services drain the neighborhood; both negotiations see
    consistent accounting (no over-commitment anywhere)."""
    topology, providers, nodes, _ = build_cluster(
        ClusterConfig(n_nodes=6, area=80.0), seed=21
    )
    s1 = workload.movie_playback_service(requester="requester", name="m1")
    s2 = workload.movie_playback_service(requester="requester", name="m2")
    o1 = negotiate(s1, topology, providers, commit=True)
    o2 = negotiate(s2, topology, providers, commit=True)
    for provider in providers.values():
        manager = provider.node.manager
        assert manager.capacity.covers(manager.reserved)
    release_coalition(o1.coalition, providers)
    release_coalition(o2.coalition, providers)


def test_quality_degrades_as_neighborhood_saturates():
    """Repeated admissions push later services to lower quality."""
    topology, providers, nodes, _ = build_cluster(
        ClusterConfig(n_nodes=5, area=60.0), seed=33
    )
    utilities = []
    for i in range(4):
        service = workload.movie_playback_service(
            requester="requester", name=f"m{i}"
        )
        outcome = negotiate(service, topology, providers, commit=True)
        utilities.append(outcome_utility(outcome))
    assert utilities[0] >= utilities[-1]


def test_agent_system_with_mobility_end_to_end():
    registry = RngRegistry(5)
    mobility = RandomWaypoint(150, 150, 0.5, 3.0, 1.0, registry.stream("mob"))
    system = build_agent_system(
        ClusterConfig(n_nodes=10, area=150.0), seed=5, mobility=mobility
    )
    system.start_mobility_process(tick=1.0, until=120.0)
    successes = 0
    for i in range(3):
        service = workload.surveillance_service(requester="requester", name=f"s{i}")
        outcome = system.negotiate(service)
        if outcome and outcome.success:
            successes += 1
            release_coalition(outcome.coalition, system.providers, system.engine.now)
        system.engine.run(until=system.engine.now + 20.0)
    # Mobility may cost some requests; at least the system never wedges.
    assert system.engine.now >= 40.0


def test_same_seed_reproduces_identical_outcome():
    def run():
        system = build_agent_system(
            ClusterConfig(n_nodes=8), seed=99, reliable_channel=False
        )
        service = workload.movie_playback_service(requester="requester", name="m")
        outcome = system.negotiate(service)
        assert outcome is not None
        # Task ids carry a process-global counter, so compare by task
        # *position* in the service, not by id.
        winner_by_position = tuple(
            outcome.coalition.awards[t.task_id].node_id
            if t.task_id in outcome.coalition.awards else None
            for t in service.tasks
        )
        return (
            winner_by_position,
            outcome.message_count,
            round(system.engine.now, 9),
        )

    assert run() == run()


def test_baseline_ladder_ordering():
    """optimal >= protocol >= random on utility; single <= coalition."""
    import numpy as np

    topology, providers, nodes, registry = build_cluster(
        ClusterConfig(n_nodes=8), seed=17
    )
    service = workload.movie_playback_service(requester="requester")
    protocol = outcome_utility(negotiate(service, topology, providers, commit=False))
    single = outcome_utility(baselines.single_node(service, topology, providers))
    optimal_outcome = baselines.exhaustive_optimal(service, topology, providers)
    rand = outcome_utility(baselines.random_admissible(
        service, topology, providers, registry.stream("rand")
    ))
    assert single <= protocol + 1e-9
    if optimal_outcome is not None:
        assert protocol <= outcome_utility(optimal_outcome) + 1e-9
    assert rand <= protocol + 1e-9 or rand == pytest.approx(protocol)


def test_trace_records_full_protocol():
    system = AgentSystem(
        [Node("me", NodeClass.PDA, position=(0, 0)),
         Node("n1", NodeClass.LAPTOP, position=(10, 0))],
        seed=4, reliable_channel=True,
    )
    # Pin positions (mobility placement would scatter them).
    system.nodes["me"].move_to(0, 0)
    system.nodes["n1"].move_to(10, 0)
    system.topology.rebuild()
    service = workload.surveillance_service(requester="me")
    outcome = system.negotiate(service)
    assert outcome is not None and outcome.success
    tracer = system.engine.tracer
    assert tracer.count("negotiation", "cfp") == 1
    assert tracer.count("negotiation", "complete") == 1
    assert tracer.count("net", "sent") > 0


def test_battery_depletion_disables_node():
    """A node that spends its battery on awards stops proposing."""
    from repro.resources.capacity import Capacity

    # Movie playback costs ~410 J at full quality (video 338 + audio 72),
    # so a 900 J pack funds two services; the third finds the battery
    # unable to cover even a degraded video decode.
    weak = Node("helper", capacity=Capacity.of(
        cpu=2000.0, memory=1024.0, bus_bandwidth=500.0,
        net_bandwidth=8000.0, energy=900.0,
    ), position=(10, 0))
    me = Node("me", NodeClass.PHONE, position=(0, 0))
    from repro.network.radio import DiscRadio
    from repro.network.topology import Topology
    from repro.resources.provider import QoSProvider

    topology = Topology([me, weak], DiscRadio())
    providers = {"me": QoSProvider(me), "helper": QoSProvider(weak)}
    count = 0
    for i in range(6):
        service = workload.movie_playback_service(requester="me", name=f"m{i}")
        outcome = negotiate(service, topology, providers, commit=True)
        if outcome.success:
            count += 1
        else:
            break
    # Movie video+audio costs ~2961 J; one service drains the 3000 J pack.
    assert count <= 2
    assert weak.battery < 3000.0

"""Property-based tests over the arrival-process layer.

Every arrival process promises the same output contract — sorted,
strictly increasing times inside the half-open ``[0, horizon)`` window,
as a pure function of the RNG state — and the inhomogeneous simulators
additionally promise to be *exact*: over many seeds the empirical count
must match the cumulative intensity ``Λ(horizon) = ∫λ dt``. Hypothesis
sweeps the parameter space for the contract; fixed-seed statistical
checks pin exactness via the bootstrap CI machinery this PR adds.

All hypothesis runs are derandomized so the suite stays deterministic.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.metrics.bootstrap import bootstrap_ci
from repro.workloads.arrivals import (
    BurstyProcess,
    DiurnalProcess,
    FixedIntervalProcess,
    FlashCrowdProcess,
    InhomogeneousPoissonProcess,
    PoissonProcess,
    TraceReplayProcess,
)
from repro.workloads.rates import (
    ConstantRate,
    DiurnalRate,
    FlashCrowdRate,
    PiecewiseConstantRate,
)

COMMON = settings(derandomize=True, deadline=None, max_examples=50)


def assert_contract(times, horizon):
    """The universal output contract: strictly increasing, in [0, H)."""
    assert isinstance(times, tuple)
    assert all(isinstance(t, float) for t in times)
    assert all(0.0 <= t < horizon for t in times), (times, horizon)
    assert all(a < b for a, b in zip(times, times[1:])), times


# -- contract: every family, swept parameters ------------------------------


@COMMON
@given(
    interval=st.floats(0.5, 50.0),
    offset=st.floats(0.0, 30.0),
    horizon=st.floats(1.0, 200.0),
)
def test_fixed_interval_contract(interval, offset, horizon):
    times = FixedIntervalProcess(interval, offset).arrivals(
        np.random.default_rng(0), horizon
    )
    assert_contract(times, horizon)


@COMMON
@given(
    rate=st.floats(1e-3, 2.0),
    horizon=st.floats(1.0, 300.0),
    seed=st.integers(0, 2**32 - 1),
)
def test_poisson_contract(rate, horizon, seed):
    times = PoissonProcess(rate).arrivals(np.random.default_rng(seed), horizon)
    assert_contract(times, horizon)


@COMMON
@given(
    base=st.floats(0.0, 0.2),
    peak_extra=st.floats(1e-3, 1.0),
    period=st.floats(5.0, 120.0),
    phase=st.floats(0.0, 120.0),
    horizon=st.floats(1.0, 300.0),
    seed=st.integers(0, 2**32 - 1),
    method=st.sampled_from(["thinning", "inversion"]),
)
def test_diurnal_contract(base, peak_extra, period, phase, horizon, seed, method):
    proc = DiurnalProcess(base, base + peak_extra, period, phase, method=method)
    times = proc.arrivals(np.random.default_rng(seed), horizon)
    assert_contract(times, horizon)


@COMMON
@given(
    base=st.floats(0.0, 0.1),
    peak_extra=st.floats(1e-3, 2.0),
    onset=st.floats(0.0, 100.0),
    rise=st.floats(0.5, 30.0),
    decay=st.floats(1.0, 60.0),
    horizon=st.floats(1.0, 300.0),
    seed=st.integers(0, 2**32 - 1),
    method=st.sampled_from(["thinning", "inversion"]),
)
def test_flash_crowd_contract(base, peak_extra, onset, rise, decay, horizon, seed, method):
    proc = FlashCrowdProcess(
        base, base + peak_extra, onset, rise, decay, method=method
    )
    times = proc.arrivals(np.random.default_rng(seed), horizon)
    assert_contract(times, horizon)


@COMMON
@given(
    base=st.floats(0.0, 0.2),
    burst_extra=st.floats(1e-3, 1.0),
    period=st.floats(5.0, 120.0),
    fraction=st.floats(0.05, 1.0),
    horizon=st.floats(1.0, 300.0),
    seed=st.integers(0, 2**32 - 1),
)
def test_bursty_contract(base, burst_extra, period, fraction, horizon, seed):
    proc = BurstyProcess(base, base + burst_extra, period, fraction)
    times = proc.arrivals(np.random.default_rng(seed), horizon)
    assert_contract(times, horizon)


@COMMON
@given(
    raw=st.lists(st.floats(0.0, 500.0), max_size=30),
    offset=st.floats(0.0, 20.0),
    scale=st.floats(0.1, 3.0),
    horizon=st.floats(1.0, 300.0),
)
def test_trace_replay_contract(raw, offset, scale, horizon):
    proc = TraceReplayProcess(raw, offset=offset, time_scale=scale)
    times = proc.arrivals(np.random.default_rng(0), horizon)
    assert_contract(times, horizon)
    # Replay is deterministic: the rng is never consumed.
    rng = np.random.default_rng(7)
    before = rng.bit_generator.state
    proc.arrivals(rng, horizon)
    assert rng.bit_generator.state == before


# -- determinism: pure function of the stream, stable across instances -----


@COMMON
@given(seed=st.integers(0, 2**32 - 1), method=st.sampled_from(["thinning", "inversion"]))
def test_reinstantiation_is_bit_identical(seed, method):
    """Two independently constructed processes with equal parameters
    consume equal draws — arrivals depend only on the rng state."""
    a = DiurnalProcess(0.02, 0.2, 120.0, method=method)
    b = DiurnalProcess(0.02, 0.2, 120.0, method=method)
    assert a.arrivals(np.random.default_rng(seed), 300.0) == b.arrivals(
        np.random.default_rng(seed), 300.0
    )


# -- exactness: empirical counts vs the cumulative intensity ---------------

EXACTNESS_SHAPES = [
    pytest.param(ConstantRate(0.08), id="constant"),
    pytest.param(DiurnalRate(0.02, 0.25, 90.0, phase=10.0), id="diurnal"),
    pytest.param(FlashCrowdRate(0.02, 0.4, 60.0, 8.0, 25.0), id="flash-crowd"),
]


@pytest.mark.parametrize("shape", EXACTNESS_SHAPES)
@pytest.mark.parametrize("method", ["thinning", "inversion"])
def test_counts_match_cumulative_intensity(shape, method):
    """Both simulators are exact: across 300 fixed seeds, the bootstrap
    CI of the mean arrival count covers Λ(horizon) = ∫λ dt."""
    horizon = 200.0
    expected = shape.cumulative(horizon)
    proc = InhomogeneousPoissonProcess(shape, method=method)
    counts = [
        float(len(proc.arrivals(np.random.default_rng(seed), horizon)))
        for seed in range(300)
    ]
    ci = bootstrap_ci(counts, alpha=0.01)
    assert ci.contains(expected), (ci, expected, np.mean(counts))


def test_cumulative_matches_numeric_integral():
    """Closed-form Λ agrees with trapezoidal integration of λ, for every
    shape family including compositions."""
    shapes = [
        ConstantRate(0.3),
        DiurnalRate(0.05, 0.5, 77.0, phase=13.0),
        FlashCrowdRate(0.04, 0.9, 40.0, 6.0, 20.0),
        PiecewiseConstantRate((0.0, 30.0, 60.0, 90.0), (0.1, 0.0, 0.4)),
        DiurnalRate(0.05, 0.5, 77.0) + ConstantRate(0.1),
        FlashCrowdRate(0.04, 0.9, 40.0, 6.0, 20.0) * 2.5,
    ]
    grid = np.linspace(0.0, 150.0, 150_001)
    for shape in shapes:
        numeric = float(np.trapezoid([shape(t) for t in grid], grid))
        assert shape.cumulative(150.0) == pytest.approx(numeric, rel=1e-4, abs=1e-6)


# -- edge audit: zero-rate intervals and the horizon boundary --------------


def test_zero_rate_process_emits_nothing_and_consumes_nothing():
    """An everywhere-zero shape (e.g. an empty trace histogram) is a
    valid degenerate process: no arrivals, no draws, both methods."""
    zero = PiecewiseConstantRate.from_trace((), bin_width=10.0, horizon=100.0)
    for method in ("thinning", "inversion"):
        proc = InhomogeneousPoissonProcess(zero, method=method)
        rng = np.random.default_rng(3)
        before = rng.bit_generator.state
        assert proc.arrivals(rng, 100.0) == ()
        assert rng.bit_generator.state == before


@pytest.mark.parametrize("method", ["thinning", "inversion"])
def test_zero_rate_interval_gets_no_arrivals(method):
    """No arrival ever lands inside an interval where λ = 0."""
    shape = PiecewiseConstantRate((0.0, 40.0, 80.0, 120.0), (0.5, 0.0, 0.5))
    proc = InhomogeneousPoissonProcess(shape, method=method)
    for seed in range(50):
        times = proc.arrivals(np.random.default_rng(seed), 120.0)
        assert_contract(times, 120.0)
        assert not any(40.0 <= t < 80.0 for t in times), times


def test_no_arrival_at_exactly_horizon():
    """The window is half-open: a trace timestamp or fixed-interval tick
    landing exactly on the horizon is excluded."""
    assert TraceReplayProcess([0.0, 5.0, 10.0]).arrivals(
        np.random.default_rng(0), 10.0
    ) == (0.0, 5.0)
    assert FixedIntervalProcess(5.0).arrivals(
        np.random.default_rng(0), 10.0
    ) == (0.0, 5.0)
    # Looped replay: the copy landing at 10.0 with loop_period 5 is out.
    looped = TraceReplayProcess([0.0], loop_period=5.0)
    assert looped.arrivals(np.random.default_rng(0), 10.0) == (0.0, 5.0)


@COMMON
@given(seed=st.integers(0, 2**32 - 1), method=st.sampled_from(["thinning", "inversion"]))
def test_inhomogeneous_never_touches_horizon(seed, method):
    """Sweep seeds: the strict t < horizon guard holds for both
    simulators even at a rate spiking right at the boundary."""
    shape = FlashCrowdRate(0.05, 2.0, onset=95.0, rise=2.0, decay=10.0)
    proc = InhomogeneousPoissonProcess(shape, method=method)
    times = proc.arrivals(np.random.default_rng(seed), 100.0)
    assert_contract(times, 100.0)


def test_bursty_zero_base_rate_quiet_between_bursts():
    """base_rate = 0 is legal: arrivals only inside burst windows."""
    proc = BurstyProcess(0.0, 0.8, period=50.0, burst_fraction=0.2)
    for seed in range(30):
        times = proc.arrivals(np.random.default_rng(seed), 200.0)
        assert_contract(times, 200.0)
        assert all((t % 50.0) < 10.0 for t in times), times

"""Unit tests for coroutine-style processes and waiters."""

from __future__ import annotations

import pytest

from repro.errors import SimulationError
from repro.sim.engine import Engine
from repro.sim.process import Process, Timeout, Waiter, sleep


def test_process_runs_to_completion():
    eng = Engine()
    steps = []

    def body(proc):
        steps.append(("start", eng.now))
        yield Timeout(2.0)
        steps.append(("mid", eng.now))
        yield Timeout(3.0)
        steps.append(("end", eng.now))
        return "done"

    proc = Process(eng, body)
    eng.run()
    assert proc.done
    assert proc.result == "done"
    assert steps == [("start", 0.0), ("mid", 2.0), ("end", 5.0)]


def test_sleep_alias():
    assert isinstance(sleep(1.5), Timeout)
    assert sleep(1.5).delay == 1.5


def test_negative_timeout_rejected():
    with pytest.raises(SimulationError):
        Timeout(-1.0)


def test_waiter_blocks_until_trigger():
    eng = Engine()
    received = []

    def body(proc):
        waiter = Waiter(eng)
        eng.schedule(4.0, lambda now: waiter.trigger("payload"))
        value = yield waiter
        received.append((value, eng.now))

    Process(eng, body)
    eng.run()
    assert received == [("payload", 4.0)]


def test_waiter_trigger_before_wait_latches_value():
    eng = Engine()
    waiter = Waiter(eng)
    waiter.trigger(99)
    got = []

    def body(proc):
        value = yield waiter
        got.append(value)

    Process(eng, body)
    eng.run()
    assert got == [99]


def test_waiter_double_trigger_rejected():
    eng = Engine()
    waiter = Waiter(eng)
    waiter.trigger()
    with pytest.raises(SimulationError):
        waiter.trigger()


def test_waiter_double_await_rejected():
    eng = Engine()
    waiter = Waiter(eng)

    def body_a(proc):
        yield waiter

    def body_b(proc):
        yield waiter

    Process(eng, body_a)
    Process(eng, body_b)
    with pytest.raises(SimulationError):
        eng.run()


def test_unsupported_yield_rejected():
    eng = Engine()

    def body(proc):
        yield 42

    Process(eng, body)
    with pytest.raises(SimulationError):
        eng.run()


def test_interrupt_cancels_timeout():
    eng = Engine()
    events = []

    def body(proc):
        value = yield Timeout(100.0)
        events.append((value, eng.now))

    proc = Process(eng, body)
    eng.schedule(1.0, lambda now: proc.interrupt("wake"))
    eng.run()
    assert proc.done
    assert events == [("wake", 1.0)]


def test_interrupt_finished_process_rejected():
    eng = Engine()

    def body(proc):
        return
        yield  # pragma: no cover

    proc = Process(eng, body)
    eng.run()
    with pytest.raises(SimulationError):
        proc.interrupt()


def test_two_processes_interleave():
    eng = Engine()
    order = []

    def make(tag, delay):
        def body(proc):
            for i in range(3):
                yield Timeout(delay)
                order.append((tag, eng.now))
        return body

    Process(eng, make("fast", 1.0))
    Process(eng, make("slow", 2.5))
    eng.run()
    assert order == [
        ("fast", 1.0), ("fast", 2.0), ("slow", 2.5),
        ("fast", 3.0), ("slow", 5.0), ("slow", 7.5),
    ]


def test_generator_object_accepted_directly():
    eng = Engine()
    out = []

    def gen():
        yield Timeout(1.0)
        out.append(eng.now)

    Process(eng, gen())
    eng.run()
    assert out == [1.0]

"""Unit tests for geometry, radio, mobility, topology, channel, messaging."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import NotConnectedError, UnknownNodeError
from repro.network.channel import ChannelModel
from repro.network.geometry import clamp_to_area, distance, heading, lerp
from repro.network.messaging import NetworkService
from repro.network.mobility import GroupMobility, RandomWaypoint, StaticPlacement
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node
from repro.sim.engine import Engine


# -- geometry ----------------------------------------------------------------


def test_distance_and_lerp():
    assert distance((0, 0), (3, 4)) == 5.0
    assert lerp((0, 0), (10, 0), 0.25) == (2.5, 0.0)


def test_clamp_to_area():
    assert clamp_to_area((-5, 300), 100, 200) == (0.0, 200.0)


def test_heading_unit_vector():
    hx, hy = heading((0, 0), (0, 7))
    assert (hx, hy) == (0.0, 1.0)
    assert heading((1, 1), (1, 1)) == (0.0, 0.0)


# -- radio ------------------------------------------------------------------


def test_disc_radio_range():
    r = DiscRadio(range_m=100.0)
    assert r.in_range((0, 0), (0, 100))
    assert not r.in_range((0, 0), (0, 100.001))


def test_disc_radio_bandwidth_profile():
    r = DiscRadio(range_m=100.0, nominal_bandwidth=1000.0, min_rate_fraction=0.2)
    assert r.bandwidth((0, 0), (0, 10)) == 1000.0   # inside half range: full
    assert r.bandwidth((0, 0), (0, 50)) == 1000.0
    edge = r.bandwidth((0, 0), (0, 100))
    assert edge == pytest.approx(200.0)             # floor at the edge
    mid = r.bandwidth((0, 0), (0, 75))
    assert 200.0 < mid < 1000.0
    assert r.bandwidth((0, 0), (0, 150)) == 0.0


def test_disc_radio_loss_profile():
    r = DiscRadio(range_m=100.0, base_loss=0.0, edge_loss=0.1)
    assert r.loss_probability((0, 0), (0, 0)) == 0.0
    assert r.loss_probability((0, 0), (0, 100)) == pytest.approx(0.1)
    assert r.loss_probability((0, 0), (0, 200)) == 1.0


def test_disc_radio_validation():
    with pytest.raises(ValueError):
        DiscRadio(range_m=0)
    with pytest.raises(ValueError):
        DiscRadio(min_rate_fraction=2.0)
    with pytest.raises(ValueError):
        DiscRadio(edge_loss=1.5)


# -- mobility ----------------------------------------------------------------


def _nodes(n):
    return [Node(f"n{i}") for i in range(n)]


def test_static_placement_in_bounds_and_explicit():
    rng = np.random.default_rng(1)
    nodes = _nodes(5)
    m = StaticPlacement(50, 60, rng, positions={"n0": (1.0, 2.0)})
    m.place(nodes)
    assert nodes[0].position == (1.0, 2.0)
    for n in nodes:
        assert 0 <= n.position[0] <= 50 and 0 <= n.position[1] <= 60
    before = [n.position for n in nodes]
    m.advance(nodes, 100.0)
    assert [n.position for n in nodes] == before


def test_random_waypoint_moves_within_bounds():
    rng = np.random.default_rng(2)
    nodes = _nodes(4)
    m = RandomWaypoint(100, 100, speed_min=1.0, speed_max=5.0, pause=0.5, rng=rng)
    m.place(nodes)
    start = [n.position for n in nodes]
    m.advance(nodes, 10.0)
    moved = sum(1 for n, s in zip(nodes, start) if n.position != s)
    assert moved == len(nodes)
    for n in nodes:
        assert 0 <= n.position[0] <= 100 and 0 <= n.position[1] <= 100


def test_random_waypoint_zero_speed_is_static():
    rng = np.random.default_rng(3)
    nodes = _nodes(3)
    m = RandomWaypoint(100, 100, speed_min=0.0, speed_max=0.0, pause=0.0, rng=rng)
    m.place(nodes)
    start = [n.position for n in nodes]
    m.advance(nodes, 50.0)
    assert [n.position for n in nodes] == start


def test_random_waypoint_speed_bounds():
    """Displacement over dt cannot exceed speed_max * dt."""
    rng = np.random.default_rng(4)
    nodes = _nodes(6)
    m = RandomWaypoint(500, 500, speed_min=2.0, speed_max=4.0, pause=0.0, rng=rng)
    m.place(nodes)
    start = {n.node_id: n.position for n in nodes}
    dt = 5.0
    m.advance(nodes, dt)
    for n in nodes:
        assert distance(start[n.node_id], n.position) <= 4.0 * dt + 1e-6


def test_random_waypoint_invalid_speeds():
    rng = np.random.default_rng(5)
    with pytest.raises(ValueError):
        RandomWaypoint(10, 10, speed_min=5.0, speed_max=1.0, pause=0, rng=rng)


def test_group_mobility_keeps_members_near_leader():
    rng = np.random.default_rng(6)
    leader = RandomWaypoint(200, 200, 1.0, 2.0, 0.0, np.random.default_rng(7))
    m = GroupMobility(leader, spread=10.0, rng=rng)
    nodes = _nodes(5)
    m.place(nodes)
    m.advance(nodes, 3.0)
    center = m._leader.position
    for n in nodes:
        assert distance(center, n.position) <= 10.0 + 1e-9


# -- topology ----------------------------------------------------------------


def _line_topology():
    nodes = [
        Node("a", position=(0, 0)),
        Node("b", position=(50, 0)),
        Node("c", position=(120, 0)),
    ]
    return Topology(nodes, DiscRadio(range_m=80.0)), nodes


def test_topology_edges_match_distances():
    topo, nodes = _line_topology()
    assert topo.connected("a", "b")
    assert topo.connected("b", "c")  # 70 m
    assert not topo.connected("a", "c")  # 120 m
    assert set(topo.neighbors("b")) == {"a", "c"}


def test_topology_symmetry():
    topo, _ = _line_topology()
    for x, y in [("a", "b"), ("b", "c")]:
        assert topo.connected(x, y) == topo.connected(y, x)
        assert topo.link_bandwidth(x, y) == topo.link_bandwidth(y, x)


def test_topology_rebuild_after_move():
    topo, nodes = _line_topology()
    nodes[2].move_to(60, 0)
    topo.rebuild()
    assert topo.connected("a", "c")


def test_topology_excludes_dead_nodes():
    topo, nodes = _line_topology()
    nodes[1].fail()
    topo.rebuild()
    assert topo.neighbors("a") == ()
    assert topo.component_count() == 2  # a alone, c alone (b dead, excluded)


def test_topology_unknown_node():
    topo, _ = _line_topology()
    with pytest.raises(UnknownNodeError):
        topo.neighbors("ghost")
    with pytest.raises(UnknownNodeError):
        topo.node("ghost")


def test_topology_link_queries_require_link():
    topo, _ = _line_topology()
    with pytest.raises(NotConnectedError):
        topo.link_bandwidth("a", "c")


def test_communication_cost_properties():
    topo, _ = _line_topology()
    assert topo.communication_cost("a", "a") == 0.0
    near = topo.communication_cost("a", "b")   # 50 m
    far = topo.communication_cost("b", "c")    # 70 m: lower bandwidth
    assert 0 < near < far


def test_topology_membership_management():
    topo, _ = _line_topology()
    assert len(topo) == 3 and "a" in topo
    topo.add_node(Node("d", position=(10, 0)))
    topo.rebuild()
    assert topo.connected("a", "d")
    topo.remove_node("d")
    assert "d" not in topo
    with pytest.raises(ValueError):
        topo.add_node(Node("a"))


def test_reachable_set_multihop():
    topo, _ = _line_topology()
    assert topo.reachable_set("a") == {"a", "b", "c"}  # a-b-c chain


def test_average_degree():
    topo, _ = _line_topology()
    assert topo.average_degree() == pytest.approx(4 / 3)


# -- channel ----------------------------------------------------------------


def test_channel_local_delivery_free():
    topo, _ = _line_topology()
    ch = ChannelModel(topo, np.random.default_rng(1))
    assert ch.transmit("a", "a", 100.0) == 0.0


def test_channel_unconnected_always_lost():
    topo, _ = _line_topology()
    ch = ChannelModel(topo, np.random.default_rng(1), reliable=True)
    assert ch.transmit("a", "c", 1.0) is None


def test_channel_latency_includes_transmission_time():
    topo, _ = _line_topology()
    ch = ChannelModel(topo, np.random.default_rng(1),
                      propagation_delay=0.01, jitter=0.0, reliable=True)
    bw = topo.link_bandwidth("a", "b")
    latency = ch.transmit("a", "b", 100.0)
    assert latency == pytest.approx(0.01 + 100.0 / bw)


def test_channel_reliable_never_loses_connected():
    topo, _ = _line_topology()
    ch = ChannelModel(topo, np.random.default_rng(1), reliable=True)
    assert all(ch.transmit("a", "b", 1.0) is not None for _ in range(50))


def test_channel_lossy_loses_sometimes():
    nodes = [Node("a", position=(0, 0)), Node("b", position=(99, 0))]
    topo = Topology(nodes, DiscRadio(range_m=100.0, edge_loss=0.5))
    ch = ChannelModel(topo, np.random.default_rng(1))
    results = [ch.transmit("a", "b", 1.0) for _ in range(200)]
    losses = sum(1 for r in results if r is None)
    assert 40 < losses < 160  # ~49.5% expected


def test_channel_validation():
    topo, _ = _line_topology()
    with pytest.raises(ValueError):
        ChannelModel(topo, np.random.default_rng(1), propagation_delay=-1.0)


# -- messaging ----------------------------------------------------------------


def _network():
    topo, nodes = _line_topology()
    eng = Engine(seed=9)
    ch = ChannelModel(topo, eng.rng.stream("chan"), reliable=True, jitter=0.0)
    return NetworkService(eng, topo, ch), eng, topo, nodes


def test_unicast_delivery():
    net, eng, topo, _ = _network()
    inbox = []
    net.register("b", lambda msg, now: inbox.append((msg.kind, msg.payload, now)))
    net.send("a", "b", "PING", {"x": 1}, size_kb=1.0)
    eng.run()
    assert len(inbox) == 1
    kind, payload, now = inbox[0]
    assert kind == "PING" and payload == {"x": 1} and now > 0
    assert net.delivered_count == 1


def test_broadcast_reaches_neighbors_only():
    net, eng, topo, _ = _network()
    got = {"a": [], "b": [], "c": []}
    for nid in got:
        net.register(nid, lambda msg, now, n=nid: got[n].append(msg))
    net.broadcast("b", "CFP", None)
    eng.run()
    assert len(got["a"]) == 1 and len(got["c"]) == 1
    assert got["b"] == []  # no self-delivery
    assert all(m.broadcast for m in got["a"] + got["c"])


def test_message_to_dead_node_lost():
    net, eng, topo, nodes = _network()
    inbox = []
    net.register("b", lambda msg, now: inbox.append(msg))
    nodes[1].fail()
    net.send("a", "b", "PING", None)
    eng.run()
    assert inbox == [] and net.lost_count >= 1


def test_message_without_handler_counts_lost():
    net, eng, topo, _ = _network()
    net.send("a", "b", "PING", None)
    eng.run()
    assert net.delivered_count == 0 and net.lost_count == 1


def test_unregister_stops_delivery():
    net, eng, topo, _ = _network()
    inbox = []
    net.register("b", lambda msg, now: inbox.append(msg))
    net.unregister("b")
    net.send("a", "b", "PING", None)
    eng.run()
    assert inbox == []


def test_send_traces_emitted():
    net, eng, topo, _ = _network()
    net.register("b", lambda msg, now: None)
    net.send("a", "b", "PING", None)
    eng.run()
    assert eng.tracer.count("net", "sent") == 1
    assert eng.tracer.count("net", "delivered") == 1


def test_register_unknown_node_rejected():
    net, eng, topo, _ = _network()
    with pytest.raises(UnknownNodeError):
        net.register("ghost", lambda m, t: None)

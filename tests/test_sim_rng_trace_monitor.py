"""Unit tests for RNG streams, tracing, and time-series monitors."""

from __future__ import annotations

import pytest

from repro.sim.engine import Engine
from repro.sim.monitor import Monitor, TimeSeries
from repro.sim.rng import RngRegistry, derive_seed
from repro.sim.trace import Tracer


# -- RNG ------------------------------------------------------------------


def test_derive_seed_deterministic_and_distinct():
    assert derive_seed(1, "a") == derive_seed(1, "a")
    assert derive_seed(1, "a") != derive_seed(1, "b")
    assert derive_seed(1, "a") != derive_seed(2, "a")


def test_streams_are_cached():
    reg = RngRegistry(7)
    assert reg.stream("x") is reg.stream("x")


def test_streams_independent_of_creation_order():
    reg1 = RngRegistry(7)
    a_first = reg1.stream("a").random(5).tolist()

    reg2 = RngRegistry(7)
    reg2.stream("b")  # create another stream first
    a_second = reg2.stream("a").random(5).tolist()
    assert a_first == a_second


def test_same_seed_same_draws():
    xs = RngRegistry(42).stream("s").random(10)
    ys = RngRegistry(42).stream("s").random(10)
    assert (xs == ys).all()


def test_fork_differs_from_parent():
    reg = RngRegistry(42)
    fork = reg.fork("child")
    assert fork.seed != reg.seed
    assert (fork.stream("s").random(4) != reg.stream("s").random(4)).any()


def test_contains():
    reg = RngRegistry(1)
    assert "m" not in reg
    reg.stream("m")
    assert "m" in reg


# -- Tracer ----------------------------------------------------------------


def test_tracer_records_and_filters():
    tracer = Tracer()
    tracer.emit(1.0, "net", "sent", mid=1)
    tracer.emit(2.0, "net", "lost", mid=2)
    tracer.emit(3.0, "negotiation", "cfp")
    assert len(tracer) == 3
    assert tracer.count("net") == 2
    assert tracer.count("net", "lost") == 1
    assert [r.time for r in tracer.filter("net")] == [1.0, 2.0]


def test_tracer_disabled_drops_everything():
    tracer = Tracer(enabled=False)
    tracer.emit(1.0, "net", "sent")
    assert len(tracer) == 0


def test_tracer_category_filter():
    tracer = Tracer(categories={"net"})
    tracer.emit(1.0, "net", "sent")
    tracer.emit(1.0, "other", "x")
    assert len(tracer) == 1


def test_tracer_sink_invoked():
    seen = []
    tracer = Tracer(sink=seen.append)
    tracer.emit(1.0, "a", "b")
    assert len(seen) == 1
    assert seen[0].category == "a"


def test_tracer_clear():
    tracer = Tracer()
    tracer.emit(1.0, "a", "b")
    tracer.clear()
    assert len(tracer) == 0


def test_trace_record_str():
    tracer = Tracer()
    tracer.emit(1.5, "net", "sent", mid=7)
    text = str(tracer.records[0])
    assert "net/sent" in text and "mid=7" in text


# -- TimeSeries --------------------------------------------------------------


def test_timeseries_append_and_last():
    ts = TimeSeries("load")
    ts.append(0.0, 1.0)
    ts.append(1.0, 3.0)
    assert ts.last() == 3.0
    assert len(ts) == 2


def test_timeseries_rejects_non_monotonic():
    ts = TimeSeries()
    ts.append(1.0, 1.0)
    with pytest.raises(ValueError):
        ts.append(0.5, 2.0)


def test_timeseries_value_at_step_semantics():
    ts = TimeSeries()
    ts.append(0.0, 10.0)
    ts.append(5.0, 20.0)
    assert ts.value_at(0.0) == 10.0
    assert ts.value_at(4.999) == 10.0
    assert ts.value_at(5.0) == 20.0
    assert ts.value_at(100.0) == 20.0
    with pytest.raises(ValueError):
        ts.value_at(-1.0)


def test_timeseries_time_average():
    ts = TimeSeries()
    ts.append(0.0, 0.0)
    ts.append(10.0, 10.0)
    # 0 held for 10 s, then 10 at the instant `until`.
    assert ts.time_average(until=10.0) == pytest.approx(0.0)
    assert ts.time_average(until=20.0) == pytest.approx(5.0)


def test_timeseries_single_sample_average():
    ts = TimeSeries()
    ts.append(2.0, 7.0)
    assert ts.time_average() == 7.0
    assert ts.time_average(until=100.0) == 7.0


def test_timeseries_empty_raises():
    ts = TimeSeries()
    with pytest.raises(ValueError):
        ts.last()
    with pytest.raises(ValueError):
        ts.time_average()


def test_timeseries_min_max():
    ts = TimeSeries()
    for t, v in [(0, 3.0), (1, -1.0), (2, 9.0)]:
        ts.append(float(t), v)
    assert ts.min() == -1.0
    assert ts.max() == 9.0


# -- Monitor ----------------------------------------------------------------


def test_monitor_samples_periodically():
    eng = Engine()
    counter = {"v": 0}

    def bump(now):
        counter["v"] += 1
        if now < 10:
            eng.schedule(1.0, bump)

    eng.schedule(1.0, bump)
    mon = Monitor(eng, lambda: float(counter["v"]), period=2.0, name="v")
    eng.run(until=6.0)
    # Samples at t=0,2,4,6.
    assert list(mon.series.times) == [0.0, 2.0, 4.0, 6.0]
    # Monitor priority samples after same-time normal events settle.
    assert mon.series.values[-1] == 6.0


def test_monitor_stop():
    eng = Engine()
    mon = Monitor(eng, lambda: 1.0, period=1.0)
    eng.run(until=2.0)
    n = len(mon.series)
    mon.stop()
    eng.run(until=10.0)
    assert len(mon.series) == n


def test_monitor_rejects_bad_period():
    eng = Engine()
    with pytest.raises(ValueError):
        Monitor(eng, lambda: 0.0, period=0.0)

"""Unit tests for the Section 5 proposal-formulation heuristic."""

from __future__ import annotations

from typing import Mapping

import pytest

from repro.core.formulation import formulate
from repro.core.reward import LinearPenalty, local_reward
from repro.errors import InfeasibleTaskError
from repro.qos import catalog
from repro.qos.catalog import CODEC, COLOR_DEPTH, FRAME_RATE
from repro.resources.capacity import Capacity
from repro.resources.mapping import LinearDemandModel
from repro.services import workload
from repro.services.task import Task


def _video_task() -> Task:
    return Task(
        task_id="video",
        request=catalog.surveillance_request(),
        demand_model=workload.video_decode_demand(),
    )


def _cpu_budget_test(budget: float, task: Task):
    """Schedulability = total CPU demand fits the budget."""
    from repro.resources.kinds import ResourceKind

    def check(assignments) -> bool:
        total = 0.0
        for tid, a in assignments.items():
            total += task.demand_at(a.values()).get(ResourceKind.CPU)
        return total <= budget

    return check


def test_no_degradation_when_preferred_fits():
    task = _video_task()
    result = formulate([task], lambda a: True)
    assert result.feasible
    assert result.degradations == 0
    assert result.assignments["video"].at_top
    assert result.rewards["video"] == 4.0


def test_degrades_until_schedulable():
    task = _video_task()
    # Preferred level: cpu = 10 + 6*10 + 4*3 = 82. Budget 75 forces work.
    result = formulate([task], _cpu_budget_test(75.0, task))
    assert result.feasible
    assert result.degradations > 0
    assert not result.assignments["video"].at_top
    from repro.resources.kinds import ResourceKind

    final = task.demand_at(result.values("video")).get(ResourceKind.CPU)
    assert final <= 75.0


def test_minimum_reward_decrease_is_chosen():
    """With the surveillance request, one frame-rate step costs 1/9 reward
    while one color-depth step costs 1/1, so frame rate degrades first."""
    task = _video_task()
    result = formulate([task], _cpu_budget_test(78.0, task))
    a = result.assignments["video"]
    assert a.index(FRAME_RATE) > 0
    assert a.index(COLOR_DEPTH) == 0


def test_reward_never_increases_along_path():
    """Each degradation step weakly decreases eq. 1 reward; the final
    reward is <= the top reward."""
    task = _video_task()
    result = formulate([task], _cpu_budget_test(40.0, task))
    ladder = task.ladder()
    assert local_reward(result.assignments["video"]) <= local_reward(ladder.top())


def test_infeasible_returns_feasible_false():
    task = _video_task()
    result = formulate([task], lambda a: False)
    assert not result.feasible
    # Fully degraded everywhere degradable.
    assert result.assignments["video"].at_bottom


def test_multi_task_degrades_cheapest_task_first():
    t1 = _video_task()
    t2 = Task(
        task_id="audio",
        request=catalog.surveillance_request(),
        demand_model=workload.audio_decode_demand(),
    )
    from repro.resources.kinds import ResourceKind

    def check(assignments) -> bool:
        total = sum(
            (t1 if tid == "video" else t2).demand_at(a.values()).get(ResourceKind.CPU)
            for tid, a in assignments.items()
        )
        return total <= 95.0

    result = formulate([t1, t2], check)
    assert result.feasible
    # Audio attributes have single-value ladders and cannot degrade, so
    # video's frame rate absorbs all degradations.
    assert result.assignments["audio"].at_top


def test_duplicate_task_ids_rejected():
    t = _video_task()
    with pytest.raises(InfeasibleTaskError):
        formulate([t, t], lambda a: True)


def test_termination_bound():
    """Degradation count never exceeds the total ladder volume."""
    task = _video_task()
    result = formulate([task], lambda a: False)
    ladder = task.ladder()
    volume = sum(ladder.depth(attr) - 1 for attr in ladder.ladders)
    assert result.degradations <= volume


def test_dependency_repair_at_start():
    """The conference spec's preferred level (wavelet @ 20fps) satisfies
    Deps, but a request preferring 30 fps would not; the formulation
    must repair it before degrading for schedulability."""
    from repro.qos.request import (
        AttributePreference,
        DimensionPreference,
        ServiceRequest,
        ValueInterval,
    )
    from repro.qos.catalog import (
        AUDIO_QUALITY, CODING, RESOLUTION, SAMPLING_RATE, VIDEO_QUALITY,
    )

    spec = catalog.video_conference_spec()
    req = ServiceRequest(
        spec,
        dimensions=(
            DimensionPreference(
                VIDEO_QUALITY,
                (
                    AttributePreference(FRAME_RATE, (ValueInterval(30, 10),)),
                    AttributePreference(RESOLUTION, ("720p", "480p")),
                ),
            ),
            DimensionPreference(
                AUDIO_QUALITY, (AttributePreference(SAMPLING_RATE, (16, 8)),)
            ),
            DimensionPreference(
                CODING, (AttributePreference(CODEC, ("wavelet", "dct")),)
            ),
        ),
    )
    task = Task(task_id="conf", request=req,
                demand_model=workload.conference_demand())
    result = formulate([task], lambda a: True)
    assert result.feasible
    values = result.values("conf")
    # Deps hold: wavelet implies fps <= 20.
    assert values[CODEC] != "wavelet" or values[FRAME_RATE] <= 20


def test_degradation_steps_never_violate_dependencies():
    task = Task(
        task_id="conf",
        request=catalog.video_conference_request(),
        demand_model=workload.conference_demand(),
    )
    from repro.resources.kinds import ResourceKind

    for budget in (400.0, 300.0, 200.0, 120.0):
        result = formulate(
            [task],
            lambda a: task.demand_at(a["conf"].values()).get(ResourceKind.CPU) <= budget,
        )
        assert task.request.spec.dependencies.satisfied(result.values("conf"))


def test_formulation_result_values_helper():
    task = _video_task()
    result = formulate([task], lambda a: True)
    values = result.values("video")
    assert values[FRAME_RATE] == 10 and values[COLOR_DEPTH] == 3

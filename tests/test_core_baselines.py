"""Unit tests for the baseline allocators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import baselines
from repro.core.negotiation import negotiate
from repro.metrics.utility import outcome_utility
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload


def test_single_node_succeeds_when_capable(surveillance_service):
    """A PDA alone can carry the degraded surveillance workload."""
    nodes = [Node("requester", NodeClass.PDA, position=(0, 0))]
    topology = Topology(nodes, DiscRadio())
    providers = {"requester": QoSProvider(nodes[0])}
    outcome = baselines.single_node(surveillance_service, topology, providers)
    assert outcome.success
    assert outcome.coalition.members == {"requester"}
    assert outcome.message_count == 0  # no cooperation, no radio


def test_single_node_fails_on_weak_device(movie_service):
    nodes = [Node("requester", NodeClass.PHONE, position=(0, 0))]
    topology = Topology(nodes, DiscRadio())
    providers = {"requester": QoSProvider(nodes[0])}
    outcome = baselines.single_node(movie_service, topology, providers)
    assert not outcome.success


def test_single_node_joint_schedulability(surveillance_service):
    """Joint formulation: both tasks must fit simultaneously, so the
    single-node quality is below what either task would get alone."""
    nodes = [Node("requester", NodeClass.PDA, position=(0, 0))]
    topology = Topology(nodes, DiscRadio())
    providers = {"requester": QoSProvider(nodes[0])}
    joint = baselines.single_node(surveillance_service, topology, providers)
    video_only = workload.surveillance_service(requester="requester", name="solo")
    # compare total demand: joint allocation fits within capacity
    total = None
    for award in joint.coalition.awards.values():
        total = award.demand if total is None else total + award.demand
    assert nodes[0].capacity.covers(total)


def test_random_admissible_allocates(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    rng = np.random.default_rng(3)
    outcome = baselines.random_admissible(movie_service, topology, providers, rng)
    assert outcome.success


def test_random_admissible_weakly_below_negotiation(small_cluster, movie_service):
    """Random picks cannot beat the distance-minimizing protocol."""
    topology, providers, nodes = small_cluster
    coal = negotiate(movie_service, topology, providers, commit=False)
    rngs = [np.random.default_rng(s) for s in range(8)]
    random_utils = [
        outcome_utility(
            baselines.random_admissible(movie_service, topology, providers, rng)
        )
        for rng in rngs
    ]
    assert outcome_utility(coal) >= max(random_utils) - 1e-9


def test_greedy_centralized_matches_distance_only(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = baselines.greedy_centralized(movie_service, topology, providers)
    assert outcome.success
    assert outcome.message_count == 0
    assert outcome_utility(outcome) == pytest.approx(1.0)


def test_exhaustive_optimal_small_instance(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    optimal = baselines.exhaustive_optimal(movie_service, topology, providers)
    assert optimal is not None
    assert optimal.success
    protocol = negotiate(movie_service, topology, providers, commit=False)
    # The protocol is greedy; optimal total distance is a lower bound.
    assert optimal.total_distance() <= protocol.total_distance() + 1e-9


def test_exhaustive_optimal_respects_blowup_guard(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    assert baselines.exhaustive_optimal(
        movie_service, topology, providers, max_combinations=1
    ) is None


def test_exhaustive_optimal_prefers_fewer_members(movie_service):
    """Among equal-distance allocations the optimal baseline minimizes
    the member count (the paper's third criterion, applied globally)."""
    nodes = [
        Node("requester", NodeClass.PHONE, position=(0, 0)),
        Node("lapA", NodeClass.LAPTOP, position=(10, 0)),
        Node("lapB", NodeClass.LAPTOP, position=(12, 0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    outcome = baselines.exhaustive_optimal(movie_service, topology, providers)
    assert outcome is not None and outcome.success
    # One laptop can host both tasks at full quality: expect size 1.
    assert outcome.coalition.size == 1


def test_baselines_leave_no_reservations(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    rng = np.random.default_rng(1)
    baselines.single_node(movie_service, topology, providers)
    baselines.random_admissible(movie_service, topology, providers, rng)
    baselines.greedy_centralized(movie_service, topology, providers)
    baselines.exhaustive_optimal(movie_service, topology, providers)
    assert all(p.node.manager.reserved.is_zero for p in providers.values())

"""Unit tests for the synchronous Section 4.2 negotiation driver."""

from __future__ import annotations

import pytest

from repro.core.coalition import CoalitionPhase
from repro.core.negotiation import (
    candidate_nodes,
    formulate_node_proposals,
    negotiate,
    release_coalition,
)
from repro.core.selection import SelectionPolicy
from repro.metrics.utility import outcome_utility
from repro.network.radio import DiscRadio
from repro.network.topology import Topology
from repro.resources.capacity import Capacity
from repro.resources.kinds import ResourceKind
from repro.resources.node import Node, NodeClass
from repro.resources.provider import QoSProvider
from repro.services import workload


def test_candidate_nodes_is_requester_plus_neighbors(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    audience = candidate_nodes(movie_service, topology)
    assert audience[0] == "requester"
    assert set(audience) == {"requester", "pda", "lap1", "lap2"}


def test_candidate_nodes_excludes_out_of_range(movie_service):
    nodes = [
        Node("requester", NodeClass.PHONE, position=(0, 0)),
        Node("near", NodeClass.LAPTOP, position=(10, 0)),
        Node("far", NodeClass.LAPTOP, position=(500, 0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    assert set(candidate_nodes(movie_service, topology)) == {"requester", "near"}


def test_formulate_node_proposals_per_task(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    proposals = formulate_node_proposals(providers["lap1"], movie_service.tasks)
    assert len(proposals) == 2  # laptop can serve both tasks
    assert {p.task_id for p in proposals} == {t.task_id for t in movie_service.tasks}
    for p in proposals:
        assert p.node_id == "lap1"
        assert not p.demand.is_zero


def test_unwilling_node_stays_silent(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    topology.node("lap1").willing = False
    assert formulate_node_proposals(providers["lap1"], movie_service.tasks) == []


def test_phone_cannot_propose_video(small_cluster, movie_service):
    """The movie video task needs >= 114 CPU even fully degraded; a phone
    (50 CPU) must stay silent for it."""
    topology, providers, nodes = small_cluster
    proposals = formulate_node_proposals(providers["requester"], movie_service.tasks)
    task_ids = {p.task_id for p in proposals}
    video = movie_service.tasks[0].task_id
    audio = movie_service.tasks[1].task_id
    assert video not in task_ids
    assert audio in task_ids


def test_negotiate_allocates_all_tasks(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=False)
    assert outcome.success
    assert outcome.coalition.complete
    assert outcome.coalition.phase is CoalitionPhase.FORMING
    assert outcome.unallocated == []
    # Full quality available from the laptops.
    assert outcome_utility(outcome) == pytest.approx(1.0)


def test_negotiate_commit_reserves_resources(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=True)
    assert outcome.success
    reserved = {
        nid: p.node.manager.reserved for nid, p in providers.items()
        if not p.node.manager.reserved.is_zero
    }
    assert set(reserved) == set(outcome.coalition.members)
    released = release_coalition(outcome.coalition, providers)
    assert released == len(outcome.coalition.awards)
    assert all(p.node.manager.reserved.is_zero for p in providers.values())


def test_negotiate_dry_run_leaves_no_state(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    batteries = {nid: p.node.battery for nid, p in providers.items()}
    negotiate(movie_service, topology, providers, commit=False)
    assert all(p.node.manager.reserved.is_zero for p in providers.values())
    assert {nid: p.node.battery for nid, p in providers.items()} == batteries


def test_negotiate_isolated_requester_fails_video(movie_service):
    nodes = [Node("requester", NodeClass.PHONE, position=(0, 0))]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {"requester": QoSProvider(nodes[0])}
    outcome = negotiate(movie_service, topology, providers, commit=False)
    assert not outcome.success
    video = movie_service.tasks[0].task_id
    assert video in outcome.unallocated


def test_award_falls_through_when_headroom_taken():
    """One laptop exactly fitting one video task: the second task must go
    elsewhere even though the laptop proposed for both."""
    # The movie video task needs >= 114 CPU even fully degraded, so a
    # 150-CPU helper cannot jointly formulate two copies (228 > 150) and
    # falls back to per-task offers; whichever node wins the first task
    # cannot admit the second at award time, forcing the fall-through.
    tight_cap = Capacity.of(
        cpu=150.0, memory=256.0, bus_bandwidth=100.0,
        net_bandwidth=4000.0, energy=50_000.0,
    )
    nodes = [
        Node("requester", NodeClass.PHONE, position=(0, 0)),
        Node("tight", capacity=tight_cap, position=(10, 0)),
        Node("backup", capacity=tight_cap, position=(20, 0)),
    ]
    topology = Topology(nodes, DiscRadio(range_m=100.0))
    providers = {n.node_id: QoSProvider(n) for n in nodes}
    service = workload.movie_playback_service(requester="requester", name="m")
    # Two video-heavy tasks: duplicate the video task.
    from repro.services.service import Service

    t0 = service.tasks[0]
    from repro.services.task import Task

    t1 = Task(task_id="video-2", request=t0.request,
              demand_model=t0.demand_model, input_kb=t0.input_kb,
              output_kb=t0.output_kb, duration=t0.duration)
    double = Service(name="double", tasks=(t0, t1), requester="requester")
    outcome = negotiate(double, topology, providers, commit=True)
    assert outcome.success
    assert outcome.coalition.size == 2  # tight cannot hold both videos
    release_coalition(outcome.coalition, providers)


def test_message_count_accounting(small_cluster, movie_service):
    """Radio messages only, counted like the agent-based protocol: CFP
    copies to remote candidates, one bundled PROPOSE per responding
    remote node, one award message per remote award. The requester's
    own copy/proposals/awards are local and cost nothing."""
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=False)
    remote_candidates = [c for c in outcome.candidates if c != "requester"]
    remote_responders = [
        c for c in remote_candidates
        if formulate_node_proposals(providers[c], movie_service.tasks)
    ]
    remote_awards = sum(
        1 for a in outcome.coalition.awards.values() if a.node_id != "requester"
    )
    assert outcome.message_count == (
        len(remote_candidates) + len(remote_responders) + remote_awards
    )


def test_message_count_skips_provider_less_candidates(small_cluster, movie_service):
    """Audience ids with no provider entry are skipped in step 2, so no
    broadcast copy may be counted for them either."""
    topology, providers, nodes = small_cluster
    baseline = negotiate(movie_service, topology, providers, commit=False)
    with_ghosts = negotiate(
        movie_service, topology, providers, commit=False,
        candidates=list(baseline.candidates) + ["ghost-1", "ghost-2"],
    )
    assert with_ghosts.message_count == baseline.message_count
    assert with_ghosts.proposals_received == baseline.proposals_received


def test_dead_requester_has_no_audience(small_cluster, movie_service):
    """A dead requester cannot broadcast a CFP: empty audience, every
    task unallocated, zero messages — even while the topology still
    holds its (stale) neighbor list."""
    topology, providers, nodes = small_cluster
    topology.node("requester").fail()
    assert candidate_nodes(movie_service, topology) == ()
    assert candidate_nodes(movie_service, topology, max_hops=3) == ()
    outcome = negotiate(movie_service, topology, providers, commit=False)
    assert not outcome.success
    assert outcome.candidates == ()
    assert sorted(outcome.unallocated) == sorted(
        t.task_id for t in movie_service.tasks
    )
    assert outcome.message_count == 0
    assert outcome.proposals_received == 0
    assert outcome.coalition.size == 0


def test_explicit_candidates_override(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(
        movie_service, topology, providers, commit=False,
        candidates=["lap1"],
    )
    assert outcome.candidates == ("lap1",)
    assert outcome.coalition.members <= {"lap1"}


def test_summary_format(small_cluster, movie_service):
    topology, providers, nodes = small_cluster
    outcome = negotiate(movie_service, topology, providers, commit=False)
    text = outcome.summary()
    assert movie_service.name in text and "OK" in text
